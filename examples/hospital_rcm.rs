//! The §3.1 hospital case study, run live: revenue-cycle management.
//!
//! Insurance-eligibility verification on the simulated payer portal, with
//! the two dynamics the hospital reported:
//!
//! * **payer-website churn** — the portal ships a redesign (drift theme);
//!   the RPA bot's selectors break, ECLAIR re-grounds visually and keeps
//!   working;
//! * **human-in-the-loop** — ineligible results trigger the sensitive-
//!   action policy so a human reviews before any downstream claim action.
//!
//! Run with: `cargo run --release --example hospital_rcm`

use eclair::gui::{DriftOp, Theme};
use eclair::hitl_run::run_with_gate;
use eclair::rpa::script::{compile, AuthoringConfig};
use eclair::rpa::RpaBot;
use eclair::sites::tasks::payer_eligibility_task;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = eclair::sites::fixtures::MEMBERS.len();
    println!("Eligibility queue: {n} members\n");

    // The payer's quarterly redesign: the submit button is relabeled and a
    // banner shifts the page (paper: "constant changes to payers' websites
    // would break the bot").
    let redesign = Theme::with_ops(vec![
        DriftOp::Relabel {
            from: "Check eligibility".into(),
            to: "Verify coverage".into(),
        },
        DriftOp::InsertBanner {
            text: "Planned maintenance this weekend. Portal may be briefly unavailable.".into(),
        },
    ]);

    // --- RPA bot, authored before the redesign.
    let mut rng = StdRng::seed_from_u64(3);
    let author_task = payer_eligibility_task(0);
    let mut author = author_task.launch();
    let script = compile(
        &author_task.id,
        &mut author,
        &author_task.gold_trace.actions,
        AuthoringConfig {
            point_anchor_fraction: 0.0,
            label_anchor_fraction: 1.0, // anchored on visible labels
            authoring_error_rate: 0.0,
        },
        &mut rng,
    );
    let mut rpa_ok = 0;
    let mut eclair_ok = 0;
    let mut gated = 0;
    for i in 0..n {
        let task = payer_eligibility_task(i);
        // RPA against the redesigned portal.
        let mut session = task.site.launch_with_theme(redesign.clone());
        let run = RpaBot.run(&mut session, &script);
        if run.completed() && task.success.evaluate(&session) {
            rpa_ok += 1;
        }
        // ECLAIR against the same redesigned portal, with a human gate on
        // ineligible outcomes.
        let (report, interrupted) = run_with_gate(&task, &redesign, 70 + i as u64);
        if report.success {
            eclair_ok += 1;
        }
        if interrupted {
            gated += 1;
        }
        println!(
            "member {}: RPA {} · ECLAIR {}{}",
            eclair::sites::fixtures::MEMBERS[i].0,
            if run.completed() {
                "ok"
            } else {
                "selector broke"
            },
            if report.success { "verified" } else { "failed" },
            if interrupted {
                " (escalated to human)"
            } else {
                ""
            }
        );
    }
    println!(
        "\nAfter the payer redesign: RPA {rpa_ok}/{n} · ECLAIR {eclair_ok}/{n} \
         ({gated} escalations to staff)"
    );
}

//! Run the full 30-workflow evaluation suite (the paper's §4 sample from
//! the GitLab and Magento environments) with and without SOP guidance, and
//! print a per-task completion table — the data behind Table 2's headline
//! (SOPs roughly double end-to-end completion).
//!
//! Run with: `cargo run --release --example webarena_agent`

use eclair::metrics::Table;
use eclair::prelude::*;
use eclair_core::execute::executor::run_task;

fn main() {
    let tasks = eclair::sites::all_tasks();
    let mut table = Table::new(vec!["task", "site", "gold steps", "no SOP", "with SOP"]).numeric();
    let mut with_total = 0usize;
    let mut without_total = 0usize;
    for (i, task) in tasks.iter().enumerate() {
        let mut m1 = FmModel::new(ModelProfile::gpt4v(), 900 + i as u64);
        let without = run_task(
            &mut m1,
            task,
            &ExecConfig::without_sop().budgeted(task.gold_trace.len()),
        );
        let mut m2 = FmModel::new(ModelProfile::gpt4v(), 1900 + i as u64);
        let with = run_task(
            &mut m2,
            task,
            &ExecConfig::with_sop(task.gold_sop.clone()).budgeted(task.gold_trace.len()),
        );
        with_total += usize::from(with.success);
        without_total += usize::from(without.success);
        table.row(vec![
            task.id.clone(),
            task.site.name().to_string(),
            task.gold_trace.len().to_string(),
            if without.success { "pass" } else { "fail" }.to_string(),
            if with.success { "pass" } else { "fail" }.to_string(),
        ]);
    }
    println!("{}", table.to_ascii());
    println!(
        "\ncompletion: without SOP {without_total}/30 ({:.0}%) · with SOP {with_total}/30 ({:.0}%)",
        without_total as f64 / 0.30,
        with_total as f64 / 0.30
    );
    println!("paper (Table 2): without 17% · with 40%");
}

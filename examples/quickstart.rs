//! Quickstart: automate one enterprise workflow end to end with ECLAIR.
//!
//! The full Demonstrate → Execute → Validate loop from the paper's
//! Figure 1 on a single GitLab workflow:
//!
//! 1. a human demonstration is recorded (here: the gold trace replayed
//!    against the simulated GitLab);
//! 2. the agent watches the key frames + action log and writes an SOP;
//! 3. a fresh session is opened and the agent executes the SOP purely
//!    through pixels (screenshots in, clicks/keystrokes out);
//! 4. the self-validators audit the result.
//!
//! Run with: `cargo run --release --example quickstart`

use eclair::prelude::*;

fn main() {
    // A task from the 30-workflow evaluation suite: "Close the issue
    // 'Checkout page times out' in the WebApp project".
    let task = eclair::sites::all_tasks()
        .into_iter()
        .find(|t| t.id == "gitlab-03")
        .expect("task exists");

    println!("Workflow: {}\n", task.intent);

    let mut agent = Eclair::new(EclairConfig {
        profile: ModelProfile::gpt4v(),
        evidence: EvidenceLevel::WdKfAct,
        strategy: GroundingStrategy::SomHtml,
        seed: 7,
    });

    let report = agent.automate(&task);

    println!("— Demonstrate: the SOP ECLAIR learned from the demo —");
    println!("{}", report.sop_text);
    println!("— Execute —");
    for line in &report.log {
        println!("  {line}");
    }
    println!();
    println!("functional success: {}", report.success);
    println!("self-reported complete: {}", report.self_reported_complete);
    println!("trajectory faithful:    {}", report.trajectory_faithful);
    println!(
        "actions attempted: {} (gold trace: {})",
        report.actions_attempted,
        task.gold_trace.len()
    );
}

//! The §3.2 B2B case study, run live: invoice processing.
//!
//! A contract document arrives in the ERP inbox; the analyst (here:
//! ECLAIR) opens it, reads customer / amount / date / PO off the screen,
//! and keys them into the invoice-entry form. We run the whole inbox,
//! compare against the RPA baseline (whose hard-coded script cannot adapt
//! to different documents), and print the §3 economics.
//!
//! Run with: `cargo run --release --example invoice_processing`

use eclair::fm::tokens::Pricing;
use eclair::prelude::*;
use eclair::rpa::economics::CostModel;
use eclair::rpa::script::{compile, AuthoringConfig};
use eclair::rpa::RpaBot;
use eclair::sites::tasks::erp_invoice_task;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n_docs = eclair::sites::fixtures::CONTRACTS.len();
    println!("ERP inbox: {n_docs} contracts to ingest\n");

    // --- ECLAIR: agents learn the SOP from a demonstration and execute it.
    //     Per the paper's §5, a small ensemble retries a failed workflow
    //     with an independently-seeded agent before escalating to a human.
    let mut eclair_ok = 0;
    for i in 0..n_docs {
        let task = erp_invoice_task(i);
        let mut outcome = None;
        for attempt in 0..3u64 {
            let mut agent = Eclair::new(EclairConfig {
                seed: 40 + i as u64 + attempt * 1013,
                ..EclairConfig::default()
            });
            let report = agent.automate(&task);
            if report.success {
                outcome = Some(attempt + 1);
                break;
            }
        }
        match outcome {
            Some(n) => {
                println!("ECLAIR  {}: ingested (attempt {n})", task.id);
                eclair_ok += 1;
            }
            None => println!("ECLAIR  {}: needs human fallback", task.id),
        }
    }

    // --- RPA: a script recorded for contract #1, replayed on the others
    //     (the "hard-coded rules" failure: it re-enters document #1's data).
    let mut rng = StdRng::seed_from_u64(9);
    let author_task = erp_invoice_task(0);
    let mut author_session = author_task.launch();
    let script = compile(
        &author_task.id,
        &mut author_session,
        &author_task.gold_trace.actions,
        AuthoringConfig::careful(),
        &mut rng,
    );
    let mut rpa_ok = 0;
    for i in 0..n_docs {
        let task = erp_invoice_task(i);
        let mut session = task.launch();
        let run = RpaBot.run(&mut session, &script);
        let ok = run.completed() && task.success.evaluate(&session);
        println!(
            "RPA     {}: {}",
            task.id,
            if ok {
                "ingested"
            } else {
                "wrong/duplicate data — failed"
            }
        );
        if ok {
            rpa_ok += 1;
        }
    }

    println!(
        "\nECLAIR (3-agent ensemble): {eclair_ok}/{n_docs} · RPA (single recorded script): {rpa_ok}/{n_docs}"
    );

    // --- Economics (paper §3.2 figures vs the agent).
    let items_per_month = 1000.0;
    let manual_cost = 36.0; // ~40 analyst-minutes per contract
    let rpa_model = CostModel::rpa_b2b_case_study();
    let eclair_model = CostModel::eclair_measured(0.10);
    println!("\nCumulative cost at {items_per_month} items/month (USD):");
    println!("{:>8} {:>14} {:>14}", "month", "RPA", "ECLAIR");
    for month in [1.0, 6.0, 12.0, 24.0] {
        println!(
            "{month:>8} {:>14.0} {:>14.0}",
            rpa_model.cumulative_cost(month, items_per_month, manual_cost),
            eclair_model.cumulative_cost(month, items_per_month, manual_cost),
        );
    }
    let meter = {
        let mut m = eclair::fm::TokenMeter::default();
        m.record(20_000, 1_200); // a representative per-document run
        m
    };
    println!(
        "\nFM cost per ingested contract (GPT-4 Turbo pricing): ${:.3}",
        meter.cost_usd(Pricing::gpt4_turbo())
    );
}

//! EHR-sim: an electronic-health-record workstation for the paper's
//! hospital deployment (§3.1): the clinical workflows the revenue-cycle
//! pilot sat next to — patient lookup, medication reconciliation, and
//! prior-authorization documentation.
//!
//! Three workflow families, matching what hospital staff actually click
//! through:
//!
//! * **Patient lookup** — find a chart by MRN or name from the census;
//! * **Medication reconciliation** — walk the active med list, marking
//!   each entry reviewed (or discontinuing it), then attest the
//!   reconciliation complete — a gated attestation the app refuses while
//!   unreviewed entries remain;
//! * **Prior-auth documentation** — file an authorization request
//!   (procedure, payer, diagnosis code, justification, priority) with a
//!   payer, with duplicate submissions rejected.

use eclair_gui::{GuiApp, Page, PageBuilder, SemanticEvent};
use serde::{Deserialize, Serialize};

use crate::fixtures;

/// Lifecycle of one entry on the active medication list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MedStatus {
    Active,
    Reviewed,
    Discontinued,
}

impl MedStatus {
    fn as_str(&self) -> &'static str {
        match self {
            MedStatus::Active => "active",
            MedStatus::Reviewed => "reviewed",
            MedStatus::Discontinued => "discontinued",
        }
    }
}

/// One medication on a patient's list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Medication {
    pub drug: String,
    pub dose: String,
    pub status: MedStatus,
}

/// A patient chart.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Patient {
    pub mrn: String,
    pub name: String,
    pub dob: String,
    pub payer: String,
    pub allergy: String,
    pub meds: Vec<Medication>,
    pub recon_complete: bool,
}

/// A filed prior-authorization request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuthRequest {
    pub mrn: String,
    pub procedure: String,
    pub payer: String,
    pub dx_code: String,
    pub justification: String,
    pub urgent: bool,
}

/// Current screen.
#[derive(Debug, Clone, PartialEq)]
enum Route {
    Census,
    Chart(usize),
    Meds(usize),
    PriorAuth(usize),
    Authorizations,
}

/// The running EHR workstation.
pub struct EhrApp {
    patients: Vec<Patient>,
    auths: Vec<AuthRequest>,
    route: Route,
    /// MRNs of successfully opened charts, in order (audit trail).
    lookups: Vec<String>,
    toast: Option<String>,
}

impl EhrApp {
    /// Fresh instance on the standard census.
    pub fn new() -> Self {
        Self {
            patients: fixtures::PATIENTS
                .iter()
                .map(|&(mrn, name, dob, payer, allergy)| Patient {
                    mrn: mrn.into(),
                    name: name.into(),
                    dob: dob.into(),
                    payer: payer.into(),
                    allergy: allergy.into(),
                    meds: fixtures::PATIENT_MEDS
                        .iter()
                        .filter(|m| m.0 == mrn)
                        .map(|&(_, drug, dose)| Medication {
                            drug: drug.into(),
                            dose: dose.into(),
                            status: MedStatus::Active,
                        })
                        .collect(),
                    recon_complete: false,
                })
                .collect(),
            auths: Vec::new(),
            route: Route::Census,
            lookups: Vec::new(),
            toast: None,
        }
    }

    /// The census (oracle access).
    pub fn patients(&self) -> &[Patient] {
        &self.patients
    }

    /// Authorizations filed so far (oracle access).
    pub fn auths(&self) -> &[AuthRequest] {
        &self.auths
    }

    fn field<'a>(fields: &'a [(String, String)], name: &str) -> &'a str {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    }

    fn patient_by_mrn(&self, mrn: &str) -> Option<usize> {
        self.patients.iter().position(|p| p.mrn == mrn)
    }

    fn current_patient(&self) -> Option<usize> {
        match self.route {
            Route::Chart(i) | Route::Meds(i) | Route::PriorAuth(i) => Some(i),
            _ => None,
        }
    }

    fn med_slug(drug: &str) -> String {
        drug.to_lowercase()
    }

    fn procedures() -> Vec<&'static str> {
        let mut v = vec![""];
        v.extend(fixtures::PROCEDURES.iter().map(|p| p.0));
        v
    }

    fn handle_activation(&mut self, name: &str, fields: &[(String, String)]) -> bool {
        self.toast = None;
        match name {
            "nav-census" => {
                self.route = Route::Census;
                return true;
            }
            "nav-authorizations" => {
                self.route = Route::Authorizations;
                return true;
            }
            "open-chart" => {
                let query = Self::field(fields, "patient-search").trim().to_string();
                if query.is_empty() {
                    self.toast = Some("Enter an MRN or patient name".into());
                    return true;
                }
                let found = self.patients.iter().position(|p| {
                    p.mrn == query || p.name.to_lowercase().contains(&query.to_lowercase())
                });
                match found {
                    Some(i) => {
                        self.lookups.push(self.patients[i].mrn.clone());
                        self.route = Route::Chart(i);
                    }
                    None => self.toast = Some(format!("No patient matches '{query}'")),
                }
                return true;
            }
            _ => {}
        }
        if let Some(mrn) = name.strip_prefix("open-patient-") {
            if let Some(i) = self.patient_by_mrn(mrn) {
                self.lookups.push(mrn.to_string());
                self.route = Route::Chart(i);
                return true;
            }
        }
        let Some(i) = self.current_patient() else {
            return false;
        };
        match name {
            "tab-chart" => {
                self.route = Route::Chart(i);
                true
            }
            "tab-meds" => {
                self.route = Route::Meds(i);
                true
            }
            "tab-prior-auth" => {
                self.route = Route::PriorAuth(i);
                true
            }
            "complete-recon" => {
                let unreviewed = self.patients[i]
                    .meds
                    .iter()
                    .filter(|m| m.status == MedStatus::Active)
                    .count();
                if unreviewed > 0 {
                    self.toast = Some(format!(
                        "{unreviewed} unreviewed medication(s) remain — review each entry first"
                    ));
                } else {
                    self.patients[i].recon_complete = true;
                    self.toast = Some("Medication reconciliation attested".into());
                }
                true
            }
            "submit-auth" => self.submit_auth(i, fields),
            _ => {
                if let Some(slug) = name.strip_prefix("review-med-") {
                    return self.set_med_status(i, slug, MedStatus::Reviewed);
                }
                if let Some(slug) = name.strip_prefix("stop-med-") {
                    return self.set_med_status(i, slug, MedStatus::Discontinued);
                }
                false
            }
        }
    }

    fn set_med_status(&mut self, i: usize, slug: &str, status: MedStatus) -> bool {
        let patient = &mut self.patients[i];
        if let Some(m) = patient
            .meds
            .iter_mut()
            .find(|m| Self::med_slug(&m.drug) == slug)
        {
            m.status = status;
            // Any change after attestation re-opens the reconciliation.
            patient.recon_complete = false;
            self.toast = Some(match status {
                MedStatus::Reviewed => format!("{} marked reviewed", m.drug),
                MedStatus::Discontinued => format!("{} discontinued", m.drug),
                MedStatus::Active => unreachable!("buttons never re-activate"),
            });
            return true;
        }
        false
    }

    fn submit_auth(&mut self, i: usize, fields: &[(String, String)]) -> bool {
        let procedure = Self::field(fields, "procedure").trim().to_string();
        let dx = Self::field(fields, "dx-code").trim().to_string();
        if procedure.is_empty() || dx.is_empty() {
            self.toast = Some("Procedure and diagnosis code are required".into());
            return true;
        }
        let mrn = self.patients[i].mrn.clone();
        if self
            .auths
            .iter()
            .any(|a| a.mrn == mrn && a.procedure == procedure)
        {
            self.toast = Some(format!(
                "An authorization for {procedure} is already on file"
            ));
            return true;
        }
        let payer = match Self::field(fields, "auth-payer") {
            "" => self.patients[i].payer.clone(),
            p => p.to_string(),
        };
        self.auths.push(AuthRequest {
            mrn,
            procedure,
            payer,
            dx_code: dx,
            justification: Self::field(fields, "justification").trim().to_string(),
            urgent: Self::field(fields, "urgent") == "true",
        });
        self.toast = Some("Authorization submitted".into());
        self.route = Route::Authorizations;
        true
    }
}

impl Default for EhrApp {
    fn default() -> Self {
        Self::new()
    }
}

impl GuiApp for EhrApp {
    fn name(&self) -> &str {
        "ehr"
    }

    fn url(&self) -> String {
        match &self.route {
            Route::Census => "/ehr/patients".into(),
            Route::Chart(i) => format!("/ehr/patients/{}", self.patients[*i].mrn),
            Route::Meds(i) => format!("/ehr/patients/{}/meds", self.patients[*i].mrn),
            Route::PriorAuth(i) => format!("/ehr/patients/{}/prior-auth", self.patients[*i].mrn),
            Route::Authorizations => "/ehr/authorizations".into(),
        }
    }

    fn build(&self) -> Page {
        let nav = |b: &mut PageBuilder| {
            b.row(|b| {
                b.link("nav-census", "Patients");
                b.link("nav-authorizations", "Authorizations");
            });
            b.divider();
        };
        let tabs = |b: &mut PageBuilder| {
            b.row(|b| {
                b.tab("tab-chart", "Chart");
                b.tab("tab-meds", "Medications");
                b.tab("tab-prior-auth", "Prior auth");
            });
        };
        match &self.route {
            Route::Census => {
                let mut b = PageBuilder::new("Patients · EHR", "/ehr/patients");
                if let Some(t) = &self.toast {
                    b.toast(t.clone());
                }
                nav(&mut b);
                b.heading(1, "Patient census");
                b.form("lookup-form", |b| {
                    b.row(|b| {
                        b.text_input("patient-search", "Patient search", "MRN or name");
                        b.button("open-chart", "Open chart");
                    });
                });
                let rows: Vec<Vec<(String, Option<String>)>> = self
                    .patients
                    .iter()
                    .map(|p| {
                        vec![
                            (p.mrn.clone(), Some(format!("open-patient-{}", p.mrn))),
                            (p.name.clone(), None),
                            (p.dob.clone(), None),
                            (p.payer.clone(), None),
                        ]
                    })
                    .collect();
                b.table(&["MRN", "Name", "DOB", "Payer"], &rows);
                b.finish()
            }
            Route::Chart(i) => {
                let p = &self.patients[*i];
                let mut b = PageBuilder::new(
                    format!("{} · EHR", p.name),
                    format!("/ehr/patients/{}", p.mrn),
                );
                if let Some(t) = &self.toast {
                    b.toast(t.clone());
                }
                nav(&mut b);
                b.heading(1, format!("{} ({})", p.name, p.mrn));
                tabs(&mut b);
                b.text(format!("Date of birth: {}", p.dob));
                b.text(format!("Payer: {}", p.payer));
                b.text(format!("Allergies: {}", p.allergy));
                if p.allergy != "none" {
                    b.badge("ALLERGY ALERT");
                }
                b.text(format!(
                    "Active medications: {}",
                    p.meds
                        .iter()
                        .filter(|m| m.status != MedStatus::Discontinued)
                        .count()
                ));
                b.finish()
            }
            Route::Meds(i) => {
                let p = &self.patients[*i];
                let mut b = PageBuilder::new(
                    format!("Medications · {} · EHR", p.name),
                    format!("/ehr/patients/{}/meds", p.mrn),
                );
                if let Some(t) = &self.toast {
                    b.toast(t.clone());
                }
                nav(&mut b);
                b.heading(1, format!("Medication reconciliation — {}", p.name));
                tabs(&mut b);
                for m in &p.meds {
                    let slug = Self::med_slug(&m.drug);
                    b.row(|b| {
                        b.text(format!("{} — {} [{}]", m.drug, m.dose, m.status.as_str()));
                        if m.status != MedStatus::Discontinued {
                            b.button(format!("review-med-{slug}"), format!("Review {}", m.drug));
                            b.button(format!("stop-med-{slug}"), format!("Stop {}", m.drug));
                        }
                    });
                }
                b.divider();
                if p.recon_complete {
                    b.badge("RECONCILIATION COMPLETE");
                }
                b.button("complete-recon", "Attest reconciliation complete");
                b.finish()
            }
            Route::PriorAuth(i) => {
                let p = &self.patients[*i];
                let mut b = PageBuilder::new(
                    format!("Prior auth · {} · EHR", p.name),
                    format!("/ehr/patients/{}/prior-auth", p.mrn),
                );
                if let Some(t) = &self.toast {
                    b.toast(t.clone());
                }
                nav(&mut b);
                b.heading(1, format!("Prior authorization — {}", p.name));
                tabs(&mut b);
                b.form("auth-form", |b| {
                    b.select("procedure", "Procedure", &Self::procedures(), None);
                    b.select(
                        "auth-payer",
                        "Payer",
                        fixtures::EHR_PAYERS,
                        Some(p.payer.as_str()),
                    );
                    b.text_input("dx-code", "Diagnosis code", "ICD-10");
                    b.textarea(
                        "justification",
                        "Clinical justification",
                        "Why is this needed?",
                    );
                    b.checkbox("urgent", "Expedite (clinically urgent)", false);
                    b.button("submit-auth", "Submit authorization");
                });
                b.finish()
            }
            Route::Authorizations => {
                let mut b = PageBuilder::new("Authorizations · EHR", "/ehr/authorizations");
                if let Some(t) = &self.toast {
                    b.toast(t.clone());
                }
                nav(&mut b);
                b.heading(1, "Authorization queue");
                let rows: Vec<Vec<(String, Option<String>)>> = self
                    .auths
                    .iter()
                    .map(|a| {
                        vec![
                            (a.mrn.clone(), None),
                            (a.procedure.clone(), None),
                            (a.payer.clone(), None),
                            (a.dx_code.clone(), None),
                            (
                                if a.urgent { "urgent" } else { "routine" }.to_string(),
                                None,
                            ),
                        ]
                    })
                    .collect();
                b.table(&["MRN", "Procedure", "Payer", "Dx", "Priority"], &rows);
                b.finish()
            }
        }
    }

    fn on_event(&mut self, ev: SemanticEvent) -> bool {
        match ev {
            SemanticEvent::Activated { name, fields, .. } => self.handle_activation(&name, &fields),
            SemanticEvent::Dismissed { .. } => {
                if self.toast.take().is_some() {
                    return true;
                }
                false
            }
            SemanticEvent::Toggled { .. } => false,
        }
    }

    fn probe(&self, key: &str) -> Option<String> {
        let mut parts = key.splitn(3, ':');
        let kind = parts.next()?;
        match kind {
            "patient_count" => Some(self.patients.len().to_string()),
            "lookup_count" => Some(self.lookups.len().to_string()),
            "last_lookup" => Some(self.lookups.last().cloned().unwrap_or_default()),
            "patient_payer" | "patient_allergy" | "recon_complete" => {
                let mrn = parts.next()?;
                let p = &self.patients[self.patient_by_mrn(mrn)?];
                Some(match kind {
                    "patient_payer" => p.payer.clone(),
                    "patient_allergy" => p.allergy.clone(),
                    "recon_complete" => p.recon_complete.to_string(),
                    _ => unreachable!(),
                })
            }
            "med_status" => {
                let mrn = parts.next()?;
                let drug = parts.next()?;
                let p = &self.patients[self.patient_by_mrn(mrn)?];
                p.meds
                    .iter()
                    .find(|m| m.drug == drug)
                    .map(|m| m.status.as_str().to_string())
            }
            "auth_count" => Some(self.auths.len().to_string()),
            "auth_exists" | "auth_payer" | "auth_dx" | "auth_priority" => {
                let mrn = parts.next()?;
                let code = parts.next()?;
                let auth = self
                    .auths
                    .iter()
                    .find(|a| a.mrn == mrn && a.procedure == code);
                Some(match kind {
                    "auth_exists" => auth.is_some().to_string(),
                    _ => {
                        let a = auth?;
                        match kind {
                            "auth_payer" => a.payer.clone(),
                            "auth_dx" => a.dx_code.clone(),
                            "auth_priority" => {
                                if a.urgent { "urgent" } else { "routine" }.to_string()
                            }
                            _ => unreachable!(),
                        }
                    }
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::Session;
    use eclair_workflow::replay::execute_trace;
    use eclair_workflow::{Action, TargetRef};

    fn session() -> Session {
        Session::new(Box::new(EhrApp::new()))
    }

    fn name(n: &str) -> TargetRef {
        TargetRef::Name(n.into())
    }

    #[test]
    fn lookup_by_mrn_opens_chart() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Type {
                    target: Some(name("patient-search")),
                    text: "MRN-2003".into(),
                },
                Action::Click(name("open-chart")),
            ],
        )
        .unwrap();
        assert_eq!(s.url(), "/ehr/patients/MRN-2003");
        assert_eq!(s.app().probe("last_lookup"), Some("MRN-2003".into()));
        let shot = s.screenshot();
        assert!(shot.contains_text("Selma Ruiz"));
        assert!(shot.contains_text("ALLERGY ALERT"));
    }

    #[test]
    fn lookup_by_name_fragment_matches() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Type {
                    target: Some(name("patient-search")),
                    text: "okafor".into(),
                },
                Action::Click(name("open-chart")),
            ],
        )
        .unwrap();
        assert_eq!(s.app().probe("last_lookup"), Some("MRN-2002".into()));
    }

    #[test]
    fn unknown_patient_reports_no_match() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Type {
                    target: Some(name("patient-search")),
                    text: "MRN-9999".into(),
                },
                Action::Click(name("open-chart")),
            ],
        )
        .unwrap();
        assert_eq!(s.url(), "/ehr/patients");
        assert!(s.screenshot().contains_text("No patient matches"));
        assert_eq!(s.app().probe("lookup_count"), Some("0".into()));
    }

    #[test]
    fn census_row_link_opens_chart() {
        let mut s = session();
        execute_trace(&mut s, &[Action::Click(name("open-patient-MRN-2008"))]).unwrap();
        assert_eq!(s.url(), "/ehr/patients/MRN-2008");
    }

    #[test]
    fn med_review_and_discontinue() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-patient-MRN-2001")),
                Action::Click(name("tab-meds")),
                Action::Click(name("review-med-lisinopril")),
                Action::Click(name("stop-med-metformin")),
            ],
        )
        .unwrap();
        let app = s.app();
        assert_eq!(
            app.probe("med_status:MRN-2001:Lisinopril"),
            Some("reviewed".into())
        );
        assert_eq!(
            app.probe("med_status:MRN-2001:Metformin"),
            Some("discontinued".into())
        );
        assert_eq!(
            app.probe("med_status:MRN-2001:Atorvastatin"),
            Some("active".into())
        );
    }

    #[test]
    fn attestation_gated_on_full_review() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-patient-MRN-2002")),
                Action::Click(name("tab-meds")),
                Action::Click(name("complete-recon")),
            ],
        )
        .unwrap();
        assert!(s.screenshot().contains_text("unreviewed medication"));
        assert_eq!(
            s.app().probe("recon_complete:MRN-2002"),
            Some("false".into())
        );
        execute_trace(
            &mut s,
            &[
                Action::Click(name("review-med-levothyroxine")),
                Action::Click(name("review-med-sertraline")),
                Action::Click(name("complete-recon")),
            ],
        )
        .unwrap();
        assert_eq!(
            s.app().probe("recon_complete:MRN-2002"),
            Some("true".into())
        );
        assert!(s.screenshot().contains_text("RECONCILIATION COMPLETE"));
    }

    #[test]
    fn prior_auth_end_to_end() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-patient-MRN-2004")),
                Action::Click(name("tab-prior-auth")),
                Action::Type {
                    target: Some(name("procedure")),
                    text: "MRI-70551".into(),
                },
                Action::Type {
                    target: Some(name("dx-code")),
                    text: "G43.909".into(),
                },
                Action::Type {
                    target: Some(name("justification")),
                    text: "Chronic migraine unresponsive to therapy".into(),
                },
                Action::Click(name("submit-auth")),
            ],
        )
        .unwrap();
        assert_eq!(s.url(), "/ehr/authorizations");
        let app = s.app();
        assert_eq!(
            app.probe("auth_exists:MRN-2004:MRI-70551"),
            Some("true".into())
        );
        // Payer defaulted from the patient's plan.
        assert_eq!(
            app.probe("auth_payer:MRN-2004:MRI-70551"),
            Some("Cigna".into())
        );
        assert_eq!(
            app.probe("auth_priority:MRN-2004:MRI-70551"),
            Some("routine".into())
        );
    }

    #[test]
    fn duplicate_auth_rejected() {
        let mut s = session();
        let file_auth = |s: &mut Session| {
            execute_trace(
                s,
                &[
                    Action::Click(name("nav-census")),
                    Action::Click(name("open-patient-MRN-2005")),
                    Action::Click(name("tab-prior-auth")),
                    Action::Type {
                        target: Some(name("procedure")),
                        text: "PT-97110".into(),
                    },
                    Action::Type {
                        target: Some(name("dx-code")),
                        text: "M54.50".into(),
                    },
                    Action::Click(name("submit-auth")),
                ],
            )
            .unwrap();
        };
        file_auth(&mut s);
        file_auth(&mut s);
        assert_eq!(s.app().probe("auth_count"), Some("1".into()));
        assert!(s.screenshot().contains_text("already on file"));
    }

    #[test]
    fn missing_dx_rejected() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-patient-MRN-2006")),
                Action::Click(name("tab-prior-auth")),
                Action::Type {
                    target: Some(name("procedure")),
                    text: "ECHO-93306".into(),
                },
                Action::Click(name("submit-auth")),
            ],
        )
        .unwrap();
        assert!(s.screenshot().contains_text("required"));
        assert_eq!(s.app().probe("auth_count"), Some("0".into()));
    }

    #[test]
    fn urgent_flag_reaches_the_queue() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-patient-MRN-2007")),
                Action::Click(name("tab-prior-auth")),
                Action::Type {
                    target: Some(name("procedure")),
                    text: "CT-74177".into(),
                },
                Action::Type {
                    target: Some(name("dx-code")),
                    text: "R10.9".into(),
                },
                Action::Click(name("urgent")),
                Action::Click(name("submit-auth")),
            ],
        )
        .unwrap();
        assert_eq!(
            s.app().probe("auth_priority:MRN-2007:CT-74177"),
            Some("urgent".into())
        );
        assert!(s.screenshot().contains_text("urgent"));
    }

    #[test]
    fn discontinued_meds_lose_their_buttons() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-patient-MRN-2003")),
                Action::Click(name("tab-meds")),
                Action::Click(name("stop-med-gabapentin")),
            ],
        )
        .unwrap();
        assert!(s.page().find_by_name("review-med-gabapentin").is_none());
        assert!(s.page().find_by_name("stop-med-gabapentin").is_none());
        assert!(s.page().find_by_name("review-med-albuterol").is_some());
    }
}

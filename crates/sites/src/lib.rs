//! # eclair-sites
//!
//! Simulated enterprise web applications plus the 30-workflow evaluation
//! suite, standing in for the live WebArena environments the paper samples
//! from (§4: "30 workflows from the Gitlab and Adobe Magento environments")
//! and for the case-study systems of §3.
//!
//! * [`gitlab`] — a project-management app (projects, issues, merge
//!   requests, members, settings);
//! * [`magento`] — an e-commerce admin (catalog, orders, customers);
//! * [`erp`] — a NetSuite-like invoice-entry system (the §3.2 B2B
//!   invoice-processing case study);
//! * [`payer`] — an insurance payer portal (the §3.1 hospital
//!   revenue-cycle-management case study);
//! * [`ehr`] — an EHR workstation (patient lookup, medication
//!   reconciliation, prior-auth documentation — the §3.1 clinical
//!   workflows the revenue-cycle pilot sat next to);
//! * [`task`] / [`tasks`] — WebArena-style task specs: natural-language
//!   intent, gold semantic action trace, human-written reference SOP, and a
//!   programmatic success predicate over app state.
//!
//! Every app implements `eclair_gui::GuiApp`: pure page render from state,
//! semantic-event state transitions, and `probe()` keys for auditing. All
//! fixture data is deterministic.

pub mod ehr;
pub mod erp;
pub mod fixtures;
pub mod gitlab;
pub mod magento;
pub mod payer;
pub mod task;
pub mod tasks;

pub use task::{Site, SuccessCheck, TaskSpec};
pub use tasks::all_tasks;

//! WebArena-style task specifications.
//!
//! A [`TaskSpec`] bundles what the paper's evaluation needs per workflow:
//! the natural-language intent (the "workflow description" / WD), the gold
//! semantic action trace a human demonstrator performs, a human-written
//! reference SOP, and a programmatic success predicate over final
//! application state (WebArena's functional correctness checks).

use eclair_gui::Session;
use eclair_workflow::{Action, ActionTrace, Sop};
use serde::{Deserialize, Serialize};

use crate::{ehr::EhrApp, erp::ErpApp, gitlab::GitlabApp, magento::MagentoApp, payer::PayerApp};

/// Which simulated application a task runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Site {
    Gitlab,
    Magento,
    Erp,
    Payer,
    Ehr,
}

impl Site {
    /// A fresh instance of this site's application on its standard
    /// fixture. Harnesses that need to wrap the app before building a
    /// session (fault injection, instrumentation) start here.
    pub fn app(&self) -> Box<dyn eclair_gui::GuiApp> {
        match self {
            Site::Gitlab => Box::new(GitlabApp::new()),
            Site::Magento => Box::new(MagentoApp::new()),
            Site::Erp => Box::new(ErpApp::new()),
            Site::Payer => Box::new(PayerApp::new()),
            Site::Ehr => Box::new(EhrApp::new()),
        }
    }

    /// Launch a fresh session on this site's standard fixture.
    pub fn launch(&self) -> Session {
        Session::new(self.app())
    }

    /// Launch with a theme (for drift studies).
    pub fn launch_with_theme(&self, theme: eclair_gui::Theme) -> Session {
        Session::with_theme(self.app(), theme)
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Site::Gitlab => "gitlab",
            Site::Magento => "magento",
            Site::Erp => "erp",
            Site::Payer => "payer",
            Site::Ehr => "ehr",
        }
    }

    /// Every site, in stable order.
    pub const ALL: &'static [Site] = &[
        Site::Gitlab,
        Site::Magento,
        Site::Erp,
        Site::Payer,
        Site::Ehr,
    ];
}

/// The functional success predicate for a task.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuccessCheck {
    /// Each `(probe_key, expected_value)` must hold on the final app state.
    pub probes: Vec<(String, String)>,
    /// The final URL must contain this substring, when set.
    pub url_contains: Option<String>,
}

impl SuccessCheck {
    /// Build from probe pairs.
    pub fn probes(pairs: &[(&str, &str)]) -> Self {
        Self {
            probes: pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            url_contains: None,
        }
    }

    /// Additionally require the final URL to contain a substring.
    pub fn with_url(mut self, fragment: &str) -> Self {
        self.url_contains = Some(fragment.to_string());
        self
    }

    /// Evaluate against a (finished) session.
    pub fn evaluate(&self, session: &Session) -> bool {
        if let Some(frag) = &self.url_contains {
            if !session.url().contains(frag.as_str()) {
                return false;
            }
        }
        self.probes
            .iter()
            .all(|(k, v)| session.app().probe(k).as_deref() == Some(v.as_str()))
    }
}

/// One evaluation workflow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Stable identifier, e.g. `"gitlab-03"`.
    pub id: String,
    /// The site it runs on.
    pub site: Site,
    /// Natural-language workflow description (WD).
    pub intent: String,
    /// Gold semantic action trace (what the human demonstrator does).
    pub gold_trace: ActionTrace,
    /// Human-written reference SOP (labels, not programmatic names).
    pub gold_sop: Sop,
    /// Functional success predicate.
    pub success: SuccessCheck,
}

impl TaskSpec {
    /// Construct a task.
    pub fn new(
        id: &str,
        site: Site,
        intent: &str,
        gold_actions: Vec<Action>,
        sop_steps: &[&str],
        success: SuccessCheck,
    ) -> Self {
        Self {
            id: id.into(),
            site,
            intent: intent.into(),
            gold_trace: ActionTrace::from_actions(gold_actions),
            gold_sop: Sop::from_texts(intent, sop_steps),
            success,
        }
    }

    /// Launch a fresh session for this task.
    pub fn launch(&self) -> Session {
        self.site.launch()
    }

    /// Run the gold trace on a fresh session and verify the success
    /// predicate — the self-check every task must pass (used by tests).
    pub fn verify_gold(&self) -> Result<(), String> {
        let mut session = self.launch();
        eclair_workflow::replay::execute_trace(&mut session, &self.gold_trace.actions)
            .map_err(|(i, e)| format!("{}: gold action {} failed: {e}", self.id, i + 1))?;
        if !self.success.evaluate(&session) {
            return Err(format!(
                "{}: gold trace did not satisfy the success check (url={})",
                self.id,
                session.url()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_workflow::TargetRef;

    #[test]
    fn success_check_evaluates_probes_and_url() {
        let task = TaskSpec::new(
            "erp-smoke",
            Site::Erp,
            "Enter the Acme Corp invoice",
            vec![
                Action::Click(TargetRef::Name("nav-new-invoice".into())),
                Action::Type {
                    target: Some(TargetRef::Name("customer".into())),
                    text: "Acme Corp".into(),
                },
                Action::Type {
                    target: Some(TargetRef::Name("amount".into())),
                    text: "48000".into(),
                },
                Action::Type {
                    target: Some(TargetRef::Name("po".into())),
                    text: "PO-7741".into(),
                },
                Action::Click(TargetRef::Name("save-invoice".into())),
            ],
            &["Open the invoice form", "Fill the fields", "Save"],
            SuccessCheck::probes(&[("invoice_customer:PO-7741", "Acme Corp")])
                .with_url("/erp/invoices"),
        );
        task.verify_gold().expect("gold trace satisfies its check");
    }

    #[test]
    fn failing_check_reports_error() {
        let task = TaskSpec::new(
            "erp-bad",
            Site::Erp,
            "impossible",
            vec![Action::Click(TargetRef::Name("nav-invoices".into()))],
            &["Go to invoices"],
            SuccessCheck::probes(&[("invoice_count", "999")]),
        );
        assert!(task.verify_gold().is_err());
    }

    #[test]
    fn sites_launch() {
        for site in Site::ALL {
            let s = site.launch();
            assert!(!s.page().is_empty(), "{} renders", site.name());
        }
    }

    #[test]
    fn sites_launch_with_theme() {
        // Themed launch must render every site and keep the same
        // *interactive* widget census as the pristine theme — banners and
        // input resizes restyle the page without restructuring it.
        use eclair_gui::{DriftOp, Theme};
        let drifted = Theme::with_ops(vec![
            DriftOp::InsertBanner {
                text: "Scheduled maintenance tonight".into(),
            },
            DriftOp::ResizeInputs { width: 340 },
        ]);
        for site in Site::ALL {
            for theme in [Theme::pristine(), drifted.clone()] {
                let s = site.launch_with_theme(theme);
                assert!(!s.page().is_empty(), "{} renders themed", site.name());
                assert_eq!(
                    s.page().interactive_widgets().len(),
                    site.launch().page().interactive_widgets().len(),
                    "{} theme changes widget census",
                    site.name()
                );
            }
        }
    }

    #[test]
    fn task_spec_json_round_trips() {
        let task = TaskSpec::new(
            "ehr-smoke",
            Site::Ehr,
            "Open Harold Voss's chart",
            vec![Action::Click(TargetRef::Name(
                "open-patient-MRN-2001".into(),
            ))],
            &["Click the 'MRN-2001' link"],
            SuccessCheck::probes(&[("last_lookup", "MRN-2001")]).with_url("/ehr/patients/MRN-2001"),
        );
        let json = serde_json::to_string(&task).expect("serialize");
        let back: TaskSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(task, back);
    }
}

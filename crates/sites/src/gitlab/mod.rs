//! GitLab-sim: a project-management application mirroring the WebArena
//! GitLab environment the paper samples 15 of its 30 workflows from.

pub mod pages;
pub mod state;

use eclair_gui::{GuiApp, Page, SemanticEvent};

pub use state::{GitlabState, Issue, IssueState, MergeRequest, MrState, Project};

/// Current screen.
#[derive(Debug, Clone, PartialEq)]
pub enum Route {
    Dashboard,
    Project(usize),
    /// Issues list with an applied filter string.
    Issues(usize, String),
    NewIssue(usize),
    Issue(usize, u32),
    Mrs(usize),
    Mr(usize, u32),
    Members(usize),
    Settings(usize),
    Profile,
}

/// The running application.
pub struct GitlabApp {
    state: GitlabState,
    route: Route,
    toast: Option<String>,
    modal: Option<String>,
}

impl GitlabApp {
    /// Fresh instance on the standard fixture.
    pub fn new() -> Self {
        Self {
            state: GitlabState::fixture(),
            route: Route::Dashboard,
            toast: None,
            modal: None,
        }
    }

    /// Access the domain state (tests/oracles).
    pub fn state(&self) -> &GitlabState {
        &self.state
    }

    fn field<'a>(fields: &'a [(String, String)], name: &str) -> &'a str {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    }

    fn current_project(&self) -> Option<usize> {
        match &self.route {
            Route::Project(p)
            | Route::Issues(p, _)
            | Route::NewIssue(p)
            | Route::Issue(p, _)
            | Route::Mrs(p)
            | Route::Mr(p, _)
            | Route::Members(p)
            | Route::Settings(p) => Some(*p),
            _ => None,
        }
    }

    fn handle_activation(&mut self, name: &str, fields: &[(String, String)]) -> bool {
        self.toast = None;
        // Global navigation.
        match name {
            "nav-dashboard" => {
                self.route = Route::Dashboard;
                return true;
            }
            "nav-profile" => {
                self.route = Route::Profile;
                return true;
            }
            _ => {}
        }
        if let Some(slug) = name.strip_prefix("open-project-") {
            if let Some(p) = self.state.project_by_slug(slug) {
                self.route = Route::Project(p);
                return true;
            }
        }
        let Some(p) = self.current_project() else {
            return self.handle_profile(name, fields);
        };
        // Project tab bar.
        match name {
            "tab-overview" => {
                self.route = Route::Project(p);
                return true;
            }
            "tab-issues" => {
                self.route = Route::Issues(p, String::new());
                return true;
            }
            "tab-mrs" => {
                self.route = Route::Mrs(p);
                return true;
            }
            "tab-members" => {
                self.route = Route::Members(p);
                return true;
            }
            "tab-settings" => {
                self.route = Route::Settings(p);
                return true;
            }
            _ => {}
        }
        match name {
            "new-issue" => {
                self.route = Route::NewIssue(p);
                true
            }
            "apply-filter" => {
                let filter = Self::field(fields, "issue-filter").to_string();
                self.route = Route::Issues(p, filter);
                true
            }
            "create-issue" => {
                let title = Self::field(fields, "title").trim().to_string();
                if title.is_empty() {
                    self.toast = Some("Title can't be blank".into());
                    return true;
                }
                let label = match Self::field(fields, "label") {
                    "" => None,
                    l => Some(l.to_string()),
                };
                let assignee = match Self::field(fields, "assignee") {
                    "" => None,
                    a => Some(a.to_string()),
                };
                let id = self.state.projects[p].add_issue(
                    title,
                    Self::field(fields, "description").to_string(),
                    label,
                    assignee,
                    Self::field(fields, "confidential") == "true",
                );
                self.toast = Some("Issue created".into());
                self.route = Route::Issue(p, id);
                true
            }
            "cancel-issue" => {
                self.route = Route::Issues(p, String::new());
                true
            }
            "close-issue" => {
                if let Route::Issue(_, id) = self.route {
                    if let Some(i) = self.state.projects[p].issue_mut(id) {
                        i.state = IssueState::Closed;
                    }
                    self.toast = Some("Issue closed".into());
                }
                true
            }
            "reopen-issue" => {
                if let Route::Issue(_, id) = self.route {
                    if let Some(i) = self.state.projects[p].issue_mut(id) {
                        i.state = IssueState::Open;
                    }
                    self.toast = Some("Issue reopened".into());
                }
                true
            }
            "add-label" => {
                if let Route::Issue(_, id) = self.route {
                    let label = Self::field(fields, "add-label-select").to_string();
                    if !label.is_empty() {
                        if let Some(i) = self.state.projects[p].issue_mut(id) {
                            if !i.labels.contains(&label) {
                                i.labels.push(label);
                            }
                        }
                        self.toast = Some("Label added".into());
                    }
                }
                true
            }
            "save-title" => {
                if let Route::Issue(_, id) = self.route {
                    let t = Self::field(fields, "new-title").trim().to_string();
                    if !t.is_empty() {
                        if let Some(i) = self.state.projects[p].issue_mut(id) {
                            i.title = t;
                        }
                        self.toast = Some("Title updated".into());
                    }
                }
                true
            }
            "add-comment" => {
                if let Route::Issue(_, id) = self.route {
                    let c = Self::field(fields, "comment").trim().to_string();
                    if !c.is_empty() {
                        if let Some(i) = self.state.projects[p].issue_mut(id) {
                            i.comments.push(c);
                        }
                        self.toast = Some("Comment added".into());
                    }
                }
                true
            }
            "merge-mr" => {
                if let Route::Mr(_, id) = self.route {
                    if let Some(m) = self.state.projects[p].mr_mut(id) {
                        m.state = MrState::Merged;
                    }
                    self.toast = Some("Merge request merged".into());
                }
                true
            }
            "close-mr" => {
                if let Route::Mr(_, id) = self.route {
                    if let Some(m) = self.state.projects[p].mr_mut(id) {
                        m.state = MrState::Closed;
                    }
                    self.toast = Some("Merge request closed".into());
                }
                true
            }
            "invite-member" => {
                let user = Self::field(fields, "invite-username").trim().to_string();
                let role = Self::field(fields, "invite-role").to_string();
                if !self.state.user_exists(&user) {
                    self.toast = Some(format!("User '{user}' not found"));
                } else if self.state.projects[p]
                    .members
                    .iter()
                    .any(|(u, _)| *u == user)
                {
                    self.toast = Some(format!("{user} is already a member"));
                } else {
                    self.state.projects[p].members.push((user.clone(), role));
                    self.toast = Some(format!("{user} invited"));
                }
                true
            }
            "save-settings" => {
                let new_name = Self::field(fields, "project-name").trim().to_string();
                if !new_name.is_empty() {
                    self.state.projects[p].name = new_name;
                }
                self.state.projects[p].visibility = Self::field(fields, "visibility").to_string();
                self.toast = Some("Settings saved".into());
                true
            }
            "archive-project" => {
                self.modal = Some("archive".into());
                true
            }
            "confirm-archive" => {
                self.state.projects[p].archived = true;
                self.modal = None;
                self.route = Route::Dashboard;
                self.toast = Some("Project archived".into());
                true
            }
            "cancel-archive" => {
                self.modal = None;
                true
            }
            _ => self.open_row_link(name, p),
        }
    }

    fn open_row_link(&mut self, name: &str, p: usize) -> bool {
        if let Some(id) = name
            .strip_prefix("open-issue-")
            .and_then(|s| s.parse().ok())
        {
            self.route = Route::Issue(p, id);
            return true;
        }
        if let Some(id) = name.strip_prefix("open-mr-").and_then(|s| s.parse().ok()) {
            self.route = Route::Mr(p, id);
            return true;
        }
        if let Some(user) = name.strip_prefix("remove-member-") {
            self.state.projects[p].members.retain(|(u, _)| u != user);
            self.toast = Some("Member removed".into());
            return true;
        }
        false
    }

    fn handle_profile(&mut self, name: &str, fields: &[(String, String)]) -> bool {
        if name == "update-profile" {
            self.state.profile_name = Self::field(fields, "display-name").to_string();
            self.state.profile_status = Self::field(fields, "status-message").to_string();
            self.toast = Some("Profile updated".into());
            return true;
        }
        false
    }
}

impl Default for GitlabApp {
    fn default() -> Self {
        Self::new()
    }
}

impl GuiApp for GitlabApp {
    fn name(&self) -> &str {
        "gitlab"
    }

    fn url(&self) -> String {
        self.build_page_url()
    }

    fn build(&self) -> Page {
        pages::build(&self.state, &self.route, &self.toast, &self.modal)
    }

    fn on_event(&mut self, ev: SemanticEvent) -> bool {
        match ev {
            SemanticEvent::Activated { name, fields, .. } => self.handle_activation(&name, &fields),
            SemanticEvent::Dismissed { name } => {
                if name == "archive-confirm" {
                    self.modal = None;
                    return true;
                }
                if self.toast.take().is_some() {
                    return true;
                }
                false
            }
            SemanticEvent::Toggled { .. } => false,
        }
    }

    fn probe(&self, key: &str) -> Option<String> {
        let mut parts = key.splitn(3, ':');
        let kind = parts.next()?;
        match kind {
            "issue_exists" | "issue_state" | "issue_labels" | "issue_assignee"
            | "issue_confidential" | "issue_comments" => {
                let slug = parts.next()?;
                let title = parts.next()?;
                let p = &self.state.projects[self.state.project_by_slug(slug)?];
                let issue = p.issue_by_title(title);
                Some(match kind {
                    "issue_exists" => issue.is_some().to_string(),
                    _ => {
                        let i = issue?;
                        match kind {
                            "issue_state" => match i.state {
                                IssueState::Open => "open".into(),
                                IssueState::Closed => "closed".into(),
                            },
                            "issue_labels" => i.labels.join(","),
                            "issue_assignee" => i.assignee.clone().unwrap_or_default(),
                            "issue_confidential" => i.confidential.to_string(),
                            "issue_comments" => i.comments.join(" | "),
                            _ => unreachable!(),
                        }
                    }
                })
            }
            "mr_state" => {
                let slug = parts.next()?;
                let title = parts.next()?;
                let p = &self.state.projects[self.state.project_by_slug(slug)?];
                let m = p.mrs.iter().find(|m| m.title == title)?;
                Some(
                    match m.state {
                        MrState::Open => "open",
                        MrState::Merged => "merged",
                        MrState::Closed => "closed",
                    }
                    .into(),
                )
            }
            "member_role" => {
                let slug = parts.next()?;
                let user = parts.next()?;
                let p = &self.state.projects[self.state.project_by_slug(slug)?];
                p.members
                    .iter()
                    .find(|(u, _)| u == user)
                    .map(|(_, r)| r.clone())
            }
            "is_member" => {
                let slug = parts.next()?;
                let user = parts.next()?;
                let p = &self.state.projects[self.state.project_by_slug(slug)?];
                Some(p.members.iter().any(|(u, _)| u == user).to_string())
            }
            "project_visibility" => {
                let slug = parts.next()?;
                let p = &self.state.projects[self.state.project_by_slug(slug)?];
                Some(p.visibility.clone())
            }
            "project_archived" => {
                let slug = parts.next()?;
                let p = &self.state.projects[self.state.project_by_slug(slug)?];
                Some(p.archived.to_string())
            }
            "project_exists" => {
                let slug = parts.next()?;
                Some(self.state.project_by_slug(slug).is_some().to_string())
            }
            "profile_name" => Some(self.state.profile_name.clone()),
            "profile_status" => Some(self.state.profile_status.clone()),
            _ => None,
        }
    }
}

impl GitlabApp {
    fn build_page_url(&self) -> String {
        let slug = |p: usize| self.state.projects[p].slug();
        match &self.route {
            Route::Dashboard => "/gitlab".into(),
            Route::Project(p) => format!("/gitlab/p/{}", slug(*p)),
            Route::Issues(p, _) => format!("/gitlab/p/{}/issues", slug(*p)),
            Route::NewIssue(p) => format!("/gitlab/p/{}/issues/new", slug(*p)),
            Route::Issue(p, id) => format!("/gitlab/p/{}/issues/{id}", slug(*p)),
            Route::Mrs(p) => format!("/gitlab/p/{}/merge_requests", slug(*p)),
            Route::Mr(p, id) => format!("/gitlab/p/{}/merge_requests/{id}", slug(*p)),
            Route::Members(p) => format!("/gitlab/p/{}/members", slug(*p)),
            Route::Settings(p) => format!("/gitlab/p/{}/settings", slug(*p)),
            Route::Profile => "/gitlab/profile".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::Session;
    use eclair_workflow::replay::execute_trace;
    use eclair_workflow::{Action, TargetRef};

    fn session() -> Session {
        Session::new(Box::new(GitlabApp::new()))
    }

    fn name(n: &str) -> TargetRef {
        TargetRef::Name(n.into())
    }

    #[test]
    fn create_issue_end_to_end() {
        let mut s = session();
        let trace = vec![
            Action::Click(name("open-project-webapp")),
            Action::Click(name("tab-issues")),
            Action::Click(name("new-issue")),
            Action::Type {
                target: Some(name("title")),
                text: "Login broken on Safari".into(),
            },
            Action::Type {
                target: Some(name("description")),
                text: "Repro: open login in Safari 17".into(),
            },
            Action::Type {
                target: Some(name("label")),
                text: "bug".into(),
            },
            Action::Click(name("create-issue")),
        ];
        execute_trace(&mut s, &trace).expect("trace runs");
        assert_eq!(
            s.app().probe("issue_exists:webapp:Login broken on Safari"),
            Some("true".into())
        );
        assert_eq!(
            s.app().probe("issue_labels:webapp:Login broken on Safari"),
            Some("bug".into())
        );
        assert!(s.url().contains("/issues/"));
        assert!(s.screenshot().contains_text("Issue created"));
    }

    #[test]
    fn close_and_reopen_issue() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-project-webapp")),
                Action::Click(name("tab-issues")),
                Action::Click(name("open-issue-1")),
                Action::Click(name("close-issue")),
            ],
        )
        .unwrap();
        assert_eq!(
            s.app().probe("issue_state:webapp:Checkout page times out"),
            Some("closed".into())
        );
        execute_trace(&mut s, &[Action::Click(name("reopen-issue"))]).unwrap();
        assert_eq!(
            s.app().probe("issue_state:webapp:Checkout page times out"),
            Some("open".into())
        );
    }

    #[test]
    fn invite_member_validates_directory() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-project-webapp")),
                Action::Click(name("tab-members")),
                Action::Type {
                    target: Some(name("invite-username")),
                    text: "nobody.real".into(),
                },
                Action::Click(name("invite-member")),
            ],
        )
        .unwrap();
        assert!(s.screenshot().contains_text("not found"));
        assert_eq!(
            s.app().probe("is_member:webapp:nobody.real"),
            Some("false".into())
        );
        execute_trace(
            &mut s,
            &[
                Action::Replace {
                    target: name("invite-username"),
                    text: "jill.woo".into(),
                },
                Action::Click(name("invite-member")),
            ],
        )
        .unwrap();
        assert_eq!(
            s.app().probe("is_member:webapp:jill.woo"),
            Some("true".into())
        );
        assert_eq!(
            s.app().probe("member_role:webapp:jill.woo"),
            Some("Developer".into())
        );
    }

    #[test]
    fn archive_requires_modal_confirmation() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-project-docs")),
                Action::Click(name("tab-settings")),
                Action::Click(name("archive-project")),
            ],
        )
        .unwrap();
        assert!(s.page().active_modal().is_some());
        assert_eq!(s.app().probe("project_archived:docs"), Some("false".into()));
        execute_trace(&mut s, &[Action::Click(name("confirm-archive"))]).unwrap();
        assert_eq!(s.app().probe("project_archived:docs"), Some("true".into()));
        assert_eq!(s.url(), "/gitlab");
    }

    #[test]
    fn merge_request_flow() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-project-webapp")),
                Action::Click(name("tab-mrs")),
                Action::Click(name("open-mr-1")),
                Action::Click(name("merge-mr")),
            ],
        )
        .unwrap();
        assert_eq!(
            s.app().probe("mr_state:webapp:Fix flaky login test"),
            Some("merged".into())
        );
    }

    #[test]
    fn filter_issues_narrows_table() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-project-webapp")),
                Action::Click(name("tab-issues")),
                Action::Type {
                    target: Some(name("issue-filter")),
                    text: "dark".into(),
                },
                Action::Click(name("apply-filter")),
            ],
        )
        .unwrap();
        let shot = s.screenshot();
        assert!(shot.contains_text("Add dark mode"));
        assert!(!shot.contains_text("Checkout page times out"));
    }

    #[test]
    fn profile_update() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("nav-profile")),
                Action::Type {
                    target: Some(name("status-message")),
                    text: "Out of office".into(),
                },
                Action::Click(name("update-profile")),
            ],
        )
        .unwrap();
        assert_eq!(
            s.app().probe("profile_status"),
            Some("Out of office".into())
        );
        assert_eq!(s.app().probe("profile_name"), Some("Byte Blaze".into()));
    }

    #[test]
    fn blank_title_is_rejected_with_toast() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-project-webapp")),
                Action::Click(name("tab-issues")),
                Action::Click(name("new-issue")),
                Action::Click(name("create-issue")),
            ],
        )
        .unwrap();
        assert!(s.screenshot().contains_text("Title can't be blank"));
        assert!(s.url().ends_with("/issues/new"), "stays on the form");
    }
}

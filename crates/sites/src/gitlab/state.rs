//! GitLab-sim domain state: projects, issues, merge requests, members.

use serde::{Deserialize, Serialize};

use crate::fixtures;

/// Issue lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IssueState {
    Open,
    Closed,
}

/// Merge-request lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MrState {
    Open,
    Merged,
    Closed,
}

/// A tracked issue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Issue {
    pub id: u32,
    pub title: String,
    pub description: String,
    pub labels: Vec<String>,
    pub assignee: Option<String>,
    pub state: IssueState,
    pub confidential: bool,
    pub comments: Vec<String>,
}

/// A merge request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MergeRequest {
    pub id: u32,
    pub title: String,
    pub source_branch: String,
    pub state: MrState,
}

/// A project with its collections.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Project {
    pub name: String,
    pub description: String,
    pub visibility: String,
    /// `(username, role)` pairs.
    pub members: Vec<(String, String)>,
    pub issues: Vec<Issue>,
    pub mrs: Vec<MergeRequest>,
    pub archived: bool,
    next_issue_id: u32,
}

impl Project {
    /// URL slug for the project.
    pub fn slug(&self) -> String {
        self.name.to_lowercase().replace(' ', "-")
    }

    /// Append a new issue, assigning the next id.
    pub fn add_issue(
        &mut self,
        title: String,
        description: String,
        label: Option<String>,
        assignee: Option<String>,
        confidential: bool,
    ) -> u32 {
        let id = self.next_issue_id;
        self.next_issue_id += 1;
        self.issues.push(Issue {
            id,
            title,
            description,
            labels: label.into_iter().collect(),
            assignee,
            state: IssueState::Open,
            confidential,
            comments: Vec::new(),
        });
        id
    }

    /// Find an issue by id.
    pub fn issue(&self, id: u32) -> Option<&Issue> {
        self.issues.iter().find(|i| i.id == id)
    }

    /// Find an issue by id, mutably.
    pub fn issue_mut(&mut self, id: u32) -> Option<&mut Issue> {
        self.issues.iter_mut().find(|i| i.id == id)
    }

    /// Find an issue by exact title.
    pub fn issue_by_title(&self, title: &str) -> Option<&Issue> {
        self.issues.iter().find(|i| i.title == title)
    }

    /// Find a merge request by id.
    pub fn mr(&self, id: u32) -> Option<&MergeRequest> {
        self.mrs.iter().find(|m| m.id == id)
    }

    /// Find a merge request by id, mutably.
    pub fn mr_mut(&mut self, id: u32) -> Option<&mut MergeRequest> {
        self.mrs.iter_mut().find(|m| m.id == id)
    }
}

/// The whole GitLab instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GitlabState {
    pub projects: Vec<Project>,
    pub profile_name: String,
    pub profile_status: String,
}

impl GitlabState {
    /// The standard evaluation fixture: three projects with seeded issues,
    /// merge requests and members.
    pub fn fixture() -> Self {
        let mut webapp = Project {
            name: "WebApp".into(),
            description: "Customer-facing web application".into(),
            visibility: "private".into(),
            members: vec![
                ("byteblaze".into(), "Maintainer".into()),
                ("emma.lopez".into(), "Developer".into()),
            ],
            issues: Vec::new(),
            mrs: Vec::new(),
            archived: false,
            next_issue_id: 1,
        };
        webapp.add_issue(
            "Checkout page times out".into(),
            "Checkout requests exceed 30s under load".into(),
            Some("bug".into()),
            Some("emma.lopez".into()),
            false,
        );
        webapp.add_issue(
            "Add dark mode".into(),
            "Users have requested a dark theme".into(),
            Some("feature".into()),
            None,
            false,
        );
        webapp.mrs.push(MergeRequest {
            id: 1,
            title: "Fix flaky login test".into(),
            source_branch: "fix/login-test".into(),
            state: MrState::Open,
        });
        webapp.mrs.push(MergeRequest {
            id: 2,
            title: "Bump dependencies".into(),
            source_branch: "chore/deps".into(),
            state: MrState::Open,
        });

        let mut docs = Project {
            name: "Docs".into(),
            description: "Product documentation".into(),
            visibility: "public".into(),
            members: vec![("carol.chen".into(), "Maintainer".into())],
            issues: Vec::new(),
            mrs: Vec::new(),
            archived: false,
            next_issue_id: 1,
        };
        docs.add_issue(
            "Broken link on install page".into(),
            "The curl command 404s".into(),
            Some("docs".into()),
            None,
            false,
        );

        let pipeline = Project {
            name: "Data Pipeline".into(),
            description: "Nightly ETL jobs".into(),
            visibility: "private".into(),
            members: vec![("frank.ops".into(), "Maintainer".into())],
            issues: Vec::new(),
            mrs: Vec::new(),
            archived: false,
            next_issue_id: 1,
        };
        Self {
            projects: vec![webapp, docs, pipeline],
            profile_name: "Byte Blaze".into(),
            profile_status: String::new(),
        }
    }

    /// Find a project index by slug.
    pub fn project_by_slug(&self, slug: &str) -> Option<usize> {
        self.projects.iter().position(|p| p.slug() == slug)
    }

    /// Whether a username exists in the directory.
    pub fn user_exists(&self, user: &str) -> bool {
        fixtures::USERS.contains(&user)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shape() {
        let s = GitlabState::fixture();
        assert_eq!(s.projects.len(), 3);
        assert_eq!(s.projects[0].issues.len(), 2);
        assert_eq!(s.projects[0].mrs.len(), 2);
        assert_eq!(s.projects[0].slug(), "webapp");
        assert_eq!(s.projects[2].slug(), "data-pipeline");
    }

    #[test]
    fn add_issue_assigns_sequential_ids() {
        let mut s = GitlabState::fixture();
        let p = &mut s.projects[2];
        let a = p.add_issue("A".into(), "".into(), None, None, false);
        let b = p.add_issue("B".into(), "".into(), None, None, false);
        assert_eq!(b, a + 1);
        assert_eq!(p.issue(b).unwrap().title, "B");
        assert!(p.issue_by_title("A").is_some());
    }

    #[test]
    fn user_directory() {
        let s = GitlabState::fixture();
        assert!(s.user_exists("jill.woo"));
        assert!(!s.user_exists("nobody.here"));
    }
}

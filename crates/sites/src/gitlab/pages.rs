//! GitLab-sim page builders: pure functions from state to widget trees.

use eclair_gui::{Page, PageBuilder};

use super::state::{GitlabState, IssueState, MrState};
use super::Route;
use crate::fixtures;

fn nav(b: &mut PageBuilder) {
    b.row(|b| {
        b.link("nav-dashboard", "Projects");
        b.link("nav-profile", "Profile");
        b.icon_button("nav-search", "Search GitLab");
        b.icon_button("nav-notifications", "Notifications");
    });
    b.divider();
}

fn project_tabs(b: &mut PageBuilder) {
    b.row(|b| {
        b.tab("tab-overview", "Overview");
        b.tab("tab-issues", "Issues");
        b.tab("tab-mrs", "Merge requests");
        b.tab("tab-members", "Members");
        b.tab("tab-settings", "Settings");
    });
}

fn toast_if(b: &mut PageBuilder, toast: &Option<String>) {
    if let Some(t) = toast {
        b.toast(t.clone());
    }
}

/// Render the page for a route.
pub fn build(
    state: &GitlabState,
    route: &Route,
    toast: &Option<String>,
    modal: &Option<String>,
) -> Page {
    match route {
        Route::Dashboard => dashboard(state, toast),
        Route::Project(p) => project_home(state, *p, toast),
        Route::Issues(p, filter) => issues(state, *p, filter, toast),
        Route::NewIssue(p) => new_issue(state, *p, toast),
        Route::Issue(p, id) => issue_detail(state, *p, *id, toast),
        Route::Mrs(p) => mrs(state, *p, toast),
        Route::Mr(p, id) => mr_detail(state, *p, *id, toast),
        Route::Members(p) => members(state, *p, toast),
        Route::Settings(p) => settings(state, *p, toast, modal),
        Route::Profile => profile(state, toast),
    }
}

fn dashboard(state: &GitlabState, toast: &Option<String>) -> Page {
    let mut b = PageBuilder::new("Projects · GitLab", "/gitlab");
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "Projects");
    let rows: Vec<Vec<(String, Option<String>)>> = state
        .projects
        .iter()
        .filter(|p| !p.archived)
        .map(|p| {
            vec![
                (p.name.clone(), Some(format!("open-project-{}", p.slug()))),
                (p.description.clone(), None),
                (format!("{} issues", p.issues.len()), None),
                (p.visibility.clone(), None),
            ]
        })
        .collect();
    b.table(&["Name", "Description", "Issues", "Visibility"], &rows);
    b.finish()
}

fn project_home(state: &GitlabState, p: usize, toast: &Option<String>) -> Page {
    let proj = &state.projects[p];
    let mut b = PageBuilder::new(
        format!("{} · GitLab", proj.name),
        format!("/gitlab/p/{}", proj.slug()),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, proj.name.clone());
    project_tabs(&mut b);
    b.text(proj.description.clone());
    b.text(format!(
        "{} open issues · {} merge requests · {} members",
        proj.issues
            .iter()
            .filter(|i| i.state == IssueState::Open)
            .count(),
        proj.mrs.len(),
        proj.members.len()
    ));
    b.finish()
}

fn issues(state: &GitlabState, p: usize, filter: &str, toast: &Option<String>) -> Page {
    let proj = &state.projects[p];
    let mut b = PageBuilder::new(
        format!("Issues · {}", proj.name),
        format!("/gitlab/p/{}/issues", proj.slug()),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "Issues");
    project_tabs(&mut b);
    b.form("filter-form", |b| {
        b.row(|b| {
            b.text_input("issue-filter", "", "Search or filter results...");
            b.button("apply-filter", "Search");
            b.button("new-issue", "New issue");
        });
    });
    let needle = filter.to_lowercase();
    let rows: Vec<Vec<(String, Option<String>)>> = proj
        .issues
        .iter()
        .filter(|i| needle.is_empty() || i.title.to_lowercase().contains(&needle))
        .map(|i| {
            vec![
                (i.title.clone(), Some(format!("open-issue-{}", i.id))),
                (
                    match i.state {
                        IssueState::Open => "open".to_string(),
                        IssueState::Closed => "closed".to_string(),
                    },
                    None,
                ),
                (i.labels.join(", "), None),
                (i.assignee.clone().unwrap_or_default(), None),
            ]
        })
        .collect();
    b.table(&["Title", "State", "Labels", "Assignee"], &rows);
    b.finish()
}

fn new_issue(state: &GitlabState, p: usize, toast: &Option<String>) -> Page {
    let proj = &state.projects[p];
    let mut b = PageBuilder::new(
        format!("New issue · {}", proj.name),
        format!("/gitlab/p/{}/issues/new", proj.slug()),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "New issue");
    b.form("issue-form", |b| {
        b.text_input("title", "Title", "Add a title");
        b.textarea("description", "Description", "Write a description...");
        let mut labels: Vec<&str> = vec![""];
        labels.extend(fixtures::LABELS);
        b.select("label", "Label", &labels, None);
        let mut assignees: Vec<&str> = vec![""];
        assignees.extend(fixtures::USERS);
        b.select("assignee", "Assignee", &assignees, None);
        b.checkbox("confidential", "This issue is confidential", false);
        b.row(|b| {
            b.button("create-issue", "Create issue");
            b.link("cancel-issue", "Cancel");
        });
    });
    b.finish()
}

fn issue_detail(state: &GitlabState, p: usize, id: u32, toast: &Option<String>) -> Page {
    let proj = &state.projects[p];
    let issue = proj.issue(id).expect("route points at an existing issue");
    let mut b = PageBuilder::new(
        format!("{} · Issues", issue.title),
        format!("/gitlab/p/{}/issues/{}", proj.slug(), id),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, issue.title.clone());
    b.row(|b| {
        b.badge(match issue.state {
            IssueState::Open => "Open",
            IssueState::Closed => "Closed",
        });
        for l in &issue.labels {
            b.badge(l.clone());
        }
        if issue.confidential {
            b.badge("Confidential");
        }
    });
    b.text(issue.description.clone());
    b.text(format!(
        "Assignee: {}",
        issue.assignee.clone().unwrap_or_else(|| "none".into())
    ));
    b.row(|b| {
        match issue.state {
            IssueState::Open => b.button("close-issue", "Close issue"),
            IssueState::Closed => b.button("reopen-issue", "Reopen issue"),
        };
    });
    b.divider();
    b.form("label-form", |b| {
        b.row(|b| {
            let mut labels: Vec<&str> = vec![""];
            labels.extend(fixtures::LABELS);
            b.select("add-label-select", "Label", &labels, None);
            b.button("add-label", "Add label");
        });
    });
    b.form("title-form", |b| {
        b.row(|b| {
            b.text_input("new-title", "", "New title");
            b.button("save-title", "Save title");
        });
    });
    b.divider();
    for c in &issue.comments {
        b.text(format!("💬 {c}"));
    }
    b.form("comment-form", |b| {
        b.textarea("comment", "Comment", "Write a comment...");
        b.button("add-comment", "Comment");
    });
    b.finish()
}

fn mrs(state: &GitlabState, p: usize, toast: &Option<String>) -> Page {
    let proj = &state.projects[p];
    let mut b = PageBuilder::new(
        format!("Merge requests · {}", proj.name),
        format!("/gitlab/p/{}/merge_requests", proj.slug()),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "Merge requests");
    project_tabs(&mut b);
    let rows: Vec<Vec<(String, Option<String>)>> = proj
        .mrs
        .iter()
        .map(|m| {
            vec![
                (m.title.clone(), Some(format!("open-mr-{}", m.id))),
                (
                    match m.state {
                        MrState::Open => "open".to_string(),
                        MrState::Merged => "merged".to_string(),
                        MrState::Closed => "closed".to_string(),
                    },
                    None,
                ),
                (m.source_branch.clone(), None),
            ]
        })
        .collect();
    b.table(&["Title", "State", "Source branch"], &rows);
    b.finish()
}

fn mr_detail(state: &GitlabState, p: usize, id: u32, toast: &Option<String>) -> Page {
    let proj = &state.projects[p];
    let mr = proj.mr(id).expect("route points at an existing MR");
    let mut b = PageBuilder::new(
        format!("{} · Merge requests", mr.title),
        format!("/gitlab/p/{}/merge_requests/{}", proj.slug(), id),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, mr.title.clone());
    b.badge(match mr.state {
        MrState::Open => "Open",
        MrState::Merged => "Merged",
        MrState::Closed => "Closed",
    });
    b.text(format!("Source branch: {}", mr.source_branch));
    if mr.state == MrState::Open {
        b.row(|b| {
            b.button("merge-mr", "Merge");
            b.button("close-mr", "Close merge request");
        });
    }
    b.finish()
}

fn members(state: &GitlabState, p: usize, toast: &Option<String>) -> Page {
    let proj = &state.projects[p];
    let mut b = PageBuilder::new(
        format!("Members · {}", proj.name),
        format!("/gitlab/p/{}/members", proj.slug()),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "Project members");
    project_tabs(&mut b);
    b.form("invite-form", |b| {
        b.row(|b| {
            b.text_input("invite-username", "", "Username");
            b.select(
                "invite-role",
                "Role",
                &["Guest", "Reporter", "Developer", "Maintainer"],
                Some("Developer"),
            );
            b.button("invite-member", "Invite member");
        });
    });
    let rows: Vec<Vec<(String, Option<String>)>> = proj
        .members
        .iter()
        .map(|(u, r)| {
            vec![
                (u.clone(), None),
                (r.clone(), None),
                ("Remove".to_string(), Some(format!("remove-member-{u}"))),
            ]
        })
        .collect();
    b.table(&["User", "Role", ""], &rows);
    b.finish()
}

fn settings(state: &GitlabState, p: usize, toast: &Option<String>, modal: &Option<String>) -> Page {
    let proj = &state.projects[p];
    let mut b = PageBuilder::new(
        format!("Settings · {}", proj.name),
        format!("/gitlab/p/{}/settings", proj.slug()),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "Project settings");
    project_tabs(&mut b);
    b.form("settings-form", |b| {
        let pname = b.text_input("project-name", "Project name", "");
        let _ = pname;
        b.select(
            "visibility",
            "Visibility",
            &["private", "internal", "public"],
            Some(&proj.visibility),
        );
        b.button("save-settings", "Save changes");
    });
    b.divider();
    b.heading(2, "Danger zone");
    b.button("archive-project", "Archive project");
    let mut page = {
        if modal.as_deref() == Some("archive") {
            b.modal("archive-confirm", |b| {
                b.text("Archiving will hide this project from the dashboard. Continue?");
                b.row(|b| {
                    b.button("confirm-archive", "Archive");
                    b.button("cancel-archive", "Cancel");
                });
            });
        }
        b.finish()
    };
    // Pre-fill the project name into the settings field.
    if let Some(id) = page.find_by_name("project-name") {
        page.get_mut(id).value = proj.name.as_str().into();
    }
    page
}

fn profile(state: &GitlabState, toast: &Option<String>) -> Page {
    let mut b = PageBuilder::new("Profile · GitLab", "/gitlab/profile");
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "User profile");
    b.form("profile-form", |b| {
        b.text_input("display-name", "Display name", "");
        b.text_input("status-message", "Status message", "Set a status");
        b.button("update-profile", "Update profile");
    });
    let mut page = b.finish();
    if let Some(id) = page.find_by_name("display-name") {
        page.get_mut(id).value = state.profile_name.as_str().into();
    }
    if let Some(id) = page.find_by_name("status-message") {
        page.get_mut(id).value = state.profile_status.as_str().into();
    }
    page
}

//! Payer-portal-sim: an insurance eligibility-verification portal for the
//! §3.1 hospital revenue-cycle-management case study.
//!
//! Hospital staff (or a bot) look up whether a patient's coverage is active
//! before a visit — one of the two workflows the hospital's RPA pilot
//! automated, and the one "constant changes to payers' websites would
//! break".

use eclair_gui::{GuiApp, Page, PageBuilder, SemanticEvent};
use serde::{Deserialize, Serialize};

use crate::fixtures;

/// Result of the last eligibility check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CheckResult {
    Eligible { member: String },
    Ineligible { member: String },
    NotFound { member: String },
}

#[derive(Debug, Clone, PartialEq)]
enum Route {
    Search,
    Result,
}

/// The running payer portal.
pub struct PayerApp {
    route: Route,
    last_result: Option<CheckResult>,
    /// Audit log of all checks performed: `(member_id, outcome)`.
    checks: Vec<(String, String)>,
    toast: Option<String>,
}

impl PayerApp {
    /// Fresh instance on the standard member database.
    pub fn new() -> Self {
        Self {
            route: Route::Search,
            last_result: None,
            checks: Vec::new(),
            toast: None,
        }
    }

    /// All checks performed this session (oracle access).
    pub fn checks(&self) -> &[(String, String)] {
        &self.checks
    }

    fn field<'a>(fields: &'a [(String, String)], name: &str) -> &'a str {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    }

    fn payers() -> Vec<&'static str> {
        vec!["", "BlueCross", "Aetna", "Cigna"]
    }
}

impl Default for PayerApp {
    fn default() -> Self {
        Self::new()
    }
}

impl GuiApp for PayerApp {
    fn name(&self) -> &str {
        "payer"
    }

    fn url(&self) -> String {
        match self.route {
            Route::Search => "/payer/eligibility".into(),
            Route::Result => "/payer/eligibility/result".into(),
        }
    }

    fn build(&self) -> Page {
        match self.route {
            Route::Search => {
                let mut b = PageBuilder::new("Eligibility · Payer Portal", "/payer/eligibility");
                if let Some(t) = &self.toast {
                    b.toast(t.clone());
                }
                b.heading(1, "Verify patient eligibility");
                b.text("Enter the member details exactly as they appear on the insurance card.");
                b.form("eligibility-form", |b| {
                    b.text_input("member-id", "Member ID", "M00000");
                    b.text_input("dob", "Date of birth", "YYYY-MM-DD");
                    b.select("payer", "Payer", &Self::payers(), None);
                    b.button("check-eligibility", "Check eligibility");
                });
                b.finish()
            }
            Route::Result => {
                let mut b = PageBuilder::new("Result · Payer Portal", "/payer/eligibility/result");
                b.heading(1, "Eligibility result");
                match &self.last_result {
                    Some(CheckResult::Eligible { member }) => {
                        b.badge("ACTIVE COVERAGE");
                        b.text(format!(
                            "Member {member}: coverage is active for this plan year."
                        ));
                    }
                    Some(CheckResult::Ineligible { member }) => {
                        b.badge("NOT COVERED");
                        b.text(format!(
                            "Member {member}: coverage lapsed or plan terminated."
                        ));
                    }
                    Some(CheckResult::NotFound { member }) => {
                        b.badge("NO MATCH");
                        b.text(format!(
                            "No member found matching {member}. Verify the ID and date of birth."
                        ));
                    }
                    None => {
                        b.text("No check performed yet.");
                    }
                }
                b.link("new-check", "New check");
                b.finish()
            }
        }
    }

    fn on_event(&mut self, ev: SemanticEvent) -> bool {
        let SemanticEvent::Activated { name, fields, .. } = ev else {
            return false;
        };
        self.toast = None;
        match name.as_str() {
            "check-eligibility" => {
                let member = Self::field(&fields, "member-id").trim().to_string();
                let dob = Self::field(&fields, "dob").trim().to_string();
                if member.is_empty() {
                    self.toast = Some("Member ID is required".into());
                    return true;
                }
                let found = fixtures::MEMBERS
                    .iter()
                    .find(|&&(id, _, mdob, _, _)| id == member && (dob.is_empty() || mdob == dob));
                let result = match found {
                    Some(&(_, _, _, _, true)) => CheckResult::Eligible {
                        member: member.clone(),
                    },
                    Some(&(_, _, _, _, false)) => CheckResult::Ineligible {
                        member: member.clone(),
                    },
                    None => CheckResult::NotFound {
                        member: member.clone(),
                    },
                };
                let outcome = match &result {
                    CheckResult::Eligible { .. } => "eligible",
                    CheckResult::Ineligible { .. } => "ineligible",
                    CheckResult::NotFound { .. } => "not_found",
                };
                self.checks.push((member, outcome.into()));
                self.last_result = Some(result);
                self.route = Route::Result;
                true
            }
            "new-check" => {
                self.route = Route::Search;
                true
            }
            _ => false,
        }
    }

    fn probe(&self, key: &str) -> Option<String> {
        let mut parts = key.splitn(2, ':');
        match parts.next()? {
            "check_count" => Some(self.checks.len().to_string()),
            "last_check" => {
                let member = parts.next()?;
                self.checks
                    .iter()
                    .rev()
                    .find(|(m, _)| m == member)
                    .map(|(_, o)| o.clone())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::Session;
    use eclair_workflow::replay::execute_trace;
    use eclair_workflow::{Action, TargetRef};

    fn name(n: &str) -> TargetRef {
        TargetRef::Name(n.into())
    }

    fn check(s: &mut Session, member: &str, dob: &str) {
        execute_trace(
            s,
            &[
                Action::Type {
                    target: Some(name("member-id")),
                    text: member.into(),
                },
                Action::Type {
                    target: Some(name("dob")),
                    text: dob.into(),
                },
                Action::Click(name("check-eligibility")),
            ],
        )
        .unwrap();
    }

    #[test]
    fn eligible_member_reports_active() {
        let mut s = Session::new(Box::new(PayerApp::new()));
        check(&mut s, "M10001", "1984-03-12");
        assert!(s.screenshot().contains_text("ACTIVE COVERAGE"));
        assert_eq!(s.app().probe("last_check:M10001"), Some("eligible".into()));
    }

    #[test]
    fn lapsed_member_reports_not_covered() {
        let mut s = Session::new(Box::new(PayerApp::new()));
        check(&mut s, "M10003", "1990-07-23");
        assert!(s.screenshot().contains_text("NOT COVERED"));
        assert_eq!(
            s.app().probe("last_check:M10003"),
            Some("ineligible".into())
        );
    }

    #[test]
    fn wrong_dob_is_no_match() {
        let mut s = Session::new(Box::new(PayerApp::new()));
        check(&mut s, "M10001", "1999-01-01");
        assert!(s.screenshot().contains_text("NO MATCH"));
        assert_eq!(s.app().probe("last_check:M10001"), Some("not_found".into()));
    }

    #[test]
    fn new_check_returns_to_form() {
        let mut s = Session::new(Box::new(PayerApp::new()));
        check(&mut s, "M10004", "");
        execute_trace(&mut s, &[Action::Click(name("new-check"))]).unwrap();
        assert_eq!(s.url(), "/payer/eligibility");
        assert_eq!(s.app().probe("check_count"), Some("1".into()));
    }
}

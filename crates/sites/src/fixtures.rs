//! Deterministic fixture data shared by the simulated sites.

/// Users known to the GitLab directory (for member invites / assignees).
pub const USERS: &[&str] = &[
    "abishek",
    "byteblaze",
    "carol.chen",
    "dferrante",
    "emma.lopez",
    "frank.ops",
    "grace.hall",
    "hazy.r",
    "ivan.petrov",
    "jill.woo",
];

/// Project-label vocabulary.
pub const LABELS: &[&str] = &["bug", "feature", "docs", "help wanted", "urgent", "backend"];

/// Product names seeding the Magento catalog.
pub const PRODUCT_NAMES: &[(&str, &str, f64, u32)] = &[
    ("Sprite Stasis Ball 65 cm", "24-WG082-blue", 27.25, 24),
    ("Quest Lumaflex Band", "PG004", 19.00, 100),
    ("Harmony Lumaflex Strength Kit", "PG005", 22.00, 56),
    ("Affirm Water Bottle", "24-UG06", 7.00, 146),
    ("Dual Handle Cardio Ball", "24-UG07", 12.00, 12),
    ("Zing Jump Rope", "24-UG04", 9.00, 80),
    ("Gauge Yoga Mat", "24-WG088", 29.50, 33),
    ("Pursuit Backpack", "24-MB01", 34.00, 18),
];

/// Customers seeding Magento.
pub const CUSTOMERS: &[(&str, &str)] = &[
    ("Emma Lopez", "emma.lopez@example.com"),
    ("John Smith", "john.smith@example.com"),
    ("Ava Brown", "ava.brown@example.com"),
    ("Liam Wilson", "liam.wilson@example.com"),
    ("Sophia Garcia", "sophia.garcia@example.com"),
];

/// Open orders seeding Magento: (id, customer index, total, status).
pub const ORDERS: &[(u32, usize, f64, &str)] = &[
    (1001, 0, 54.50, "Pending"),
    (1002, 1, 19.00, "Pending"),
    (1003, 2, 122.75, "Processing"),
    (1004, 3, 7.00, "Pending"),
    (1005, 4, 63.00, "Complete"),
];

/// Contracts arriving in the ERP inbox: (doc id, customer, product,
/// amount, date, PO number).
pub const CONTRACTS: &[(&str, &str, &str, f64, &str, &str)] = &[
    (
        "DOC-301",
        "Acme Corp",
        "Platform license (annual)",
        48_000.0,
        "2024-02-01",
        "PO-7741",
    ),
    (
        "DOC-302",
        "Globex LLC",
        "Support contract (gold)",
        12_500.0,
        "2024-02-03",
        "PO-7742",
    ),
    (
        "DOC-303",
        "Initech",
        "Seat expansion x25",
        6_250.0,
        "2024-02-07",
        "PO-7743",
    ),
    (
        "DOC-304",
        "Umbrella Health",
        "Data pipeline add-on",
        18_900.0,
        "2024-02-11",
        "PO-7744",
    ),
    (
        "DOC-305",
        "Stark Industries",
        "Platform license (annual)",
        96_000.0,
        "2024-02-12",
        "PO-7745",
    ),
    (
        "DOC-306",
        "Wayne Enterprises",
        "Analytics module",
        22_400.0,
        "2024-02-15",
        "PO-7746",
    ),
];

/// Insurance members known to the payer portal: (member id, name, dob,
/// payer, eligible).
pub const MEMBERS: &[(&str, &str, &str, &str, bool)] = &[
    ("M10001", "Alice Nguyen", "1984-03-12", "BlueCross", true),
    ("M10002", "Robert King", "1951-11-02", "BlueCross", true),
    ("M10003", "Jorge Ramos", "1990-07-23", "Aetna", false),
    ("M10004", "Mei Tanaka", "1978-01-30", "Cigna", true),
    ("M10005", "Dana Cole", "2001-05-17", "Aetna", true),
    ("M10006", "Peter Fox", "1969-09-09", "Cigna", false),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_invariants() {
        assert!(USERS.len() >= 8);
        assert!(PRODUCT_NAMES.len() >= 6);
        // SKUs unique.
        let mut skus: Vec<&str> = PRODUCT_NAMES.iter().map(|p| p.1).collect();
        skus.sort();
        skus.dedup();
        assert_eq!(skus.len(), PRODUCT_NAMES.len());
        // Order ids unique and reference valid customers.
        for &(_, cust, _, _) in ORDERS {
            assert!(cust < CUSTOMERS.len());
        }
        // Contract POs unique.
        let mut pos: Vec<&str> = CONTRACTS.iter().map(|c| c.5).collect();
        pos.sort();
        pos.dedup();
        assert_eq!(pos.len(), CONTRACTS.len());
    }
}

//! Deterministic fixture data shared by the simulated sites.

/// Users known to the GitLab directory (for member invites / assignees).
pub const USERS: &[&str] = &[
    "abishek",
    "byteblaze",
    "carol.chen",
    "dferrante",
    "emma.lopez",
    "frank.ops",
    "grace.hall",
    "hazy.r",
    "ivan.petrov",
    "jill.woo",
];

/// Project-label vocabulary.
pub const LABELS: &[&str] = &["bug", "feature", "docs", "help wanted", "urgent", "backend"];

/// Product names seeding the Magento catalog.
pub const PRODUCT_NAMES: &[(&str, &str, f64, u32)] = &[
    ("Sprite Stasis Ball 65 cm", "24-WG082-blue", 27.25, 24),
    ("Quest Lumaflex Band", "PG004", 19.00, 100),
    ("Harmony Lumaflex Strength Kit", "PG005", 22.00, 56),
    ("Affirm Water Bottle", "24-UG06", 7.00, 146),
    ("Dual Handle Cardio Ball", "24-UG07", 12.00, 12),
    ("Zing Jump Rope", "24-UG04", 9.00, 80),
    ("Gauge Yoga Mat", "24-WG088", 29.50, 33),
    ("Pursuit Backpack", "24-MB01", 34.00, 18),
];

/// Customers seeding Magento.
pub const CUSTOMERS: &[(&str, &str)] = &[
    ("Emma Lopez", "emma.lopez@example.com"),
    ("John Smith", "john.smith@example.com"),
    ("Ava Brown", "ava.brown@example.com"),
    ("Liam Wilson", "liam.wilson@example.com"),
    ("Sophia Garcia", "sophia.garcia@example.com"),
];

/// Open orders seeding Magento: (id, customer index, total, status).
pub const ORDERS: &[(u32, usize, f64, &str)] = &[
    (1001, 0, 54.50, "Pending"),
    (1002, 1, 19.00, "Pending"),
    (1003, 2, 122.75, "Processing"),
    (1004, 3, 7.00, "Pending"),
    (1005, 4, 63.00, "Complete"),
];

/// Contracts arriving in the ERP inbox: (doc id, customer, product,
/// amount, date, PO number).
pub const CONTRACTS: &[(&str, &str, &str, f64, &str, &str)] = &[
    (
        "DOC-301",
        "Acme Corp",
        "Platform license (annual)",
        48_000.0,
        "2024-02-01",
        "PO-7741",
    ),
    (
        "DOC-302",
        "Globex LLC",
        "Support contract (gold)",
        12_500.0,
        "2024-02-03",
        "PO-7742",
    ),
    (
        "DOC-303",
        "Initech",
        "Seat expansion x25",
        6_250.0,
        "2024-02-07",
        "PO-7743",
    ),
    (
        "DOC-304",
        "Umbrella Health",
        "Data pipeline add-on",
        18_900.0,
        "2024-02-11",
        "PO-7744",
    ),
    (
        "DOC-305",
        "Stark Industries",
        "Platform license (annual)",
        96_000.0,
        "2024-02-12",
        "PO-7745",
    ),
    (
        "DOC-306",
        "Wayne Enterprises",
        "Analytics module",
        22_400.0,
        "2024-02-15",
        "PO-7746",
    ),
];

/// Insurance members known to the payer portal: (member id, name, dob,
/// payer, eligible).
pub const MEMBERS: &[(&str, &str, &str, &str, bool)] = &[
    ("M10001", "Alice Nguyen", "1984-03-12", "BlueCross", true),
    ("M10002", "Robert King", "1951-11-02", "BlueCross", true),
    ("M10003", "Jorge Ramos", "1990-07-23", "Aetna", false),
    ("M10004", "Mei Tanaka", "1978-01-30", "Cigna", true),
    ("M10005", "Dana Cole", "2001-05-17", "Aetna", true),
    ("M10006", "Peter Fox", "1969-09-09", "Cigna", false),
];

/// Patients on the EHR census: (MRN, name, dob, payer, allergy).
///
/// Payers match the payer-portal vocabulary plus Medicare, so the §3.1
/// prior-auth workflows route to plans the rest of the simulation knows.
pub const PATIENTS: &[(&str, &str, &str, &str, &str)] = &[
    (
        "MRN-2001",
        "Harold Voss",
        "1957-02-08",
        "Medicare",
        "penicillin",
    ),
    (
        "MRN-2002",
        "Grace Okafor",
        "1979-06-14",
        "BlueCross",
        "none",
    ),
    ("MRN-2003", "Selma Ruiz", "1986-11-29", "Aetna", "sulfa"),
    ("MRN-2004", "Jonah Pryce", "1971-09-03", "Cigna", "none"),
    (
        "MRN-2005",
        "Imani Carter",
        "1976-04-21",
        "BlueCross",
        "latex",
    ),
    ("MRN-2006", "Leo Fuscaldo", "1968-12-30", "Aetna", "none"),
    ("MRN-2007", "Zita Morgan", "1981-03-17", "Cigna", "aspirin"),
    ("MRN-2008", "Tobias Lindh", "1984-07-05", "Medicare", "none"),
];

/// Active medication list: (patient MRN, drug, dose). Drug names are
/// single lowercase-safe words so widget names can embed them directly
/// (`review-med-lisinopril`).
pub const PATIENT_MEDS: &[(&str, &str, &str)] = &[
    ("MRN-2001", "Lisinopril", "10 mg daily"),
    ("MRN-2001", "Metformin", "500 mg twice daily"),
    ("MRN-2001", "Atorvastatin", "20 mg nightly"),
    ("MRN-2002", "Levothyroxine", "75 mcg daily"),
    ("MRN-2002", "Sertraline", "50 mg daily"),
    ("MRN-2003", "Albuterol", "2 puffs as needed"),
    ("MRN-2003", "Omeprazole", "20 mg daily"),
    ("MRN-2003", "Gabapentin", "300 mg three times daily"),
    ("MRN-2004", "Warfarin", "5 mg daily"),
    ("MRN-2004", "Amlodipine", "5 mg daily"),
    ("MRN-2005", "Ibuprofen", "400 mg as needed"),
    ("MRN-2005", "Prednisone", "10 mg daily taper"),
    ("MRN-2005", "Montelukast", "10 mg nightly"),
    ("MRN-2006", "Losartan", "50 mg daily"),
    ("MRN-2006", "Glipizide", "5 mg daily"),
    ("MRN-2007", "Clopidogrel", "75 mg daily"),
    ("MRN-2007", "Metoprolol", "25 mg twice daily"),
    ("MRN-2007", "Rosuvastatin", "10 mg nightly"),
    ("MRN-2008", "Tamsulosin", "0.4 mg nightly"),
    ("MRN-2008", "Finasteride", "5 mg daily"),
    ("MRN-2008", "Citalopram", "20 mg daily"),
];

/// Procedures requiring prior authorization: (code, description).
pub const PROCEDURES: &[(&str, &str)] = &[
    ("MRI-70551", "MRI brain without contrast"),
    ("CT-74177", "CT abdomen/pelvis with contrast"),
    ("PT-97110", "Physical therapy, therapeutic exercise"),
    ("ECHO-93306", "Transthoracic echocardiogram"),
    ("SLP-92507", "Speech-language treatment"),
    ("DME-E0601", "CPAP device"),
];

/// Payers accepted on the EHR prior-auth form.
pub const EHR_PAYERS: &[&str] = &["BlueCross", "Aetna", "Cigna", "Medicare"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_invariants() {
        assert!(USERS.len() >= 8);
        assert!(PRODUCT_NAMES.len() >= 6);
        // SKUs unique.
        let mut skus: Vec<&str> = PRODUCT_NAMES.iter().map(|p| p.1).collect();
        skus.sort();
        skus.dedup();
        assert_eq!(skus.len(), PRODUCT_NAMES.len());
        // Order ids unique and reference valid customers.
        for &(_, cust, _, _) in ORDERS {
            assert!(cust < CUSTOMERS.len());
        }
        // Contract POs unique.
        let mut pos: Vec<&str> = CONTRACTS.iter().map(|c| c.5).collect();
        pos.sort();
        pos.dedup();
        assert_eq!(pos.len(), CONTRACTS.len());
    }

    #[test]
    fn ehr_fixture_invariants() {
        // MRNs unique; every med row references a real patient; every
        // patient carries at least one medication (the reconciliation
        // templates sweep per-patient med lists).
        let mut mrns: Vec<&str> = PATIENTS.iter().map(|p| p.0).collect();
        mrns.sort();
        mrns.dedup();
        assert_eq!(mrns.len(), PATIENTS.len());
        for &(mrn, drug, _) in PATIENT_MEDS {
            assert!(PATIENTS.iter().any(|p| p.0 == mrn), "{drug} orphaned");
        }
        for &(mrn, ..) in PATIENTS {
            assert!(PATIENT_MEDS.iter().any(|m| m.0 == mrn), "{mrn} has no meds");
        }
        // (mrn, drug) pairs unique — widget names embed the drug.
        let mut pairs: Vec<(&str, &str)> = PATIENT_MEDS.iter().map(|m| (m.0, m.1)).collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), PATIENT_MEDS.len());
        // Procedure codes unique; payers cover every patient's plan.
        let mut codes: Vec<&str> = PROCEDURES.iter().map(|p| p.0).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), PROCEDURES.len());
        for &(_, _, _, payer, _) in PATIENTS {
            assert!(EHR_PAYERS.contains(&payer), "{payer} not on auth form");
        }
    }
}

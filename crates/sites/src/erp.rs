//! ERP-sim: a NetSuite-like system of record for the §3.2 B2B
//! invoice-processing case study.
//!
//! The workflow the case study describes: a contract document arrives in an
//! inbox; an analyst opens it, reads the customer / amount / date / PO
//! fields, and keys them into an invoice-entry form. The RPA bot and
//! ECLAIR both automate exactly this loop in `eclair-rpa` and the
//! case-study bench.

use eclair_gui::{GuiApp, Page, PageBuilder, SemanticEvent};
use serde::{Deserialize, Serialize};

use crate::fixtures;

/// A contract document sitting in the inbox.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContractDoc {
    pub id: String,
    pub customer: String,
    pub product: String,
    pub amount: f64,
    pub date: String,
    pub po_number: String,
    pub processed: bool,
}

/// An invoice keyed into the system of record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvoiceRecord {
    pub customer: String,
    pub amount: f64,
    pub date: String,
    pub po_number: String,
}

/// Current screen.
#[derive(Debug, Clone, PartialEq)]
enum Route {
    Inbox,
    Doc(usize),
    NewInvoice,
    Invoices,
}

/// The running ERP application.
pub struct ErpApp {
    docs: Vec<ContractDoc>,
    invoices: Vec<InvoiceRecord>,
    route: Route,
    toast: Option<String>,
}

impl ErpApp {
    /// Fresh instance with the standard contract inbox.
    pub fn new() -> Self {
        Self {
            docs: fixtures::CONTRACTS
                .iter()
                .map(|&(id, customer, product, amount, date, po)| ContractDoc {
                    id: id.into(),
                    customer: customer.into(),
                    product: product.into(),
                    amount,
                    date: date.into(),
                    po_number: po.into(),
                    processed: false,
                })
                .collect(),
            invoices: Vec::new(),
            route: Route::Inbox,
            toast: None,
        }
    }

    /// The contract inbox (oracle access).
    pub fn docs(&self) -> &[ContractDoc] {
        &self.docs
    }

    /// Invoices entered so far (oracle access).
    pub fn invoices(&self) -> &[InvoiceRecord] {
        &self.invoices
    }

    fn field<'a>(fields: &'a [(String, String)], name: &str) -> &'a str {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    }

    fn customers() -> Vec<&'static str> {
        let mut v = vec![""];
        v.extend(fixtures::CONTRACTS.iter().map(|c| c.1));
        v.dedup();
        v
    }
}

impl Default for ErpApp {
    fn default() -> Self {
        Self::new()
    }
}

impl GuiApp for ErpApp {
    fn name(&self) -> &str {
        "erp"
    }

    fn url(&self) -> String {
        match &self.route {
            Route::Inbox => "/erp/inbox".into(),
            Route::Doc(i) => format!("/erp/doc/{}", self.docs[*i].id),
            Route::NewInvoice => "/erp/invoices/new".into(),
            Route::Invoices => "/erp/invoices".into(),
        }
    }

    fn build(&self) -> Page {
        match &self.route {
            Route::Inbox => {
                let mut b = PageBuilder::new("Inbox · ERP", "/erp/inbox");
                if let Some(t) = &self.toast {
                    b.toast(t.clone());
                }
                b.row(|b| {
                    b.link("nav-inbox", "Inbox");
                    b.link("nav-invoices", "Invoices");
                    b.link("nav-new-invoice", "Enter invoice");
                });
                b.divider();
                b.heading(1, "Contract inbox");
                let rows: Vec<Vec<(String, Option<String>)>> = self
                    .docs
                    .iter()
                    .map(|d| {
                        vec![
                            (d.id.clone(), Some(format!("open-doc-{}", d.id))),
                            (d.customer.clone(), None),
                            (
                                if d.processed { "processed" } else { "new" }.to_string(),
                                None,
                            ),
                        ]
                    })
                    .collect();
                b.table(&["Document", "Customer", "Status"], &rows);
                b.finish()
            }
            Route::Doc(i) => {
                let d = &self.docs[*i];
                let mut b =
                    PageBuilder::new(format!("{} · ERP", d.id), format!("/erp/doc/{}", d.id));
                b.row(|b| {
                    b.link("nav-inbox", "Inbox");
                    b.link("nav-invoices", "Invoices");
                    b.link("nav-new-invoice", "Enter invoice");
                });
                b.divider();
                b.heading(1, format!("Contract {}", d.id));
                // The "scanned document": fields rendered as plain text the
                // agent must read off the screen.
                b.text(format!("Customer: {}", d.customer));
                b.text(format!("Product: {}", d.product));
                b.text(format!("Contract amount (USD): {:.2}", d.amount));
                b.text(format!("Effective date: {}", d.date));
                b.text(format!("Purchase order: {}", d.po_number));
                b.row(|b| {
                    b.button("mark-processed", "Mark processed");
                    b.button("enter-invoice", "Enter invoice");
                });
                b.finish()
            }
            Route::NewInvoice => {
                let mut b = PageBuilder::new("Enter invoice · ERP", "/erp/invoices/new");
                if let Some(t) = &self.toast {
                    b.toast(t.clone());
                }
                b.row(|b| {
                    b.link("nav-inbox", "Inbox");
                    b.link("nav-invoices", "Invoices");
                });
                b.divider();
                b.heading(1, "Enter invoice");
                b.form("invoice-form", |b| {
                    b.select("customer", "Customer", &Self::customers(), None);
                    b.text_input("amount", "Amount (USD)", "0.00");
                    b.text_input("date", "Invoice date", "YYYY-MM-DD");
                    b.text_input("po", "PO number", "PO-0000");
                    b.row(|b| {
                        b.button("save-invoice", "Save invoice");
                        b.link("cancel-invoice", "Cancel");
                    });
                });
                b.finish()
            }
            Route::Invoices => {
                let mut b = PageBuilder::new("Invoices · ERP", "/erp/invoices");
                if let Some(t) = &self.toast {
                    b.toast(t.clone());
                }
                b.row(|b| {
                    b.link("nav-inbox", "Inbox");
                    b.link("nav-new-invoice", "Enter invoice");
                });
                b.divider();
                b.heading(1, "Invoices");
                let rows: Vec<Vec<(String, Option<String>)>> = self
                    .invoices
                    .iter()
                    .map(|i| {
                        vec![
                            (i.po_number.clone(), None),
                            (i.customer.clone(), None),
                            (format!("${:.2}", i.amount), None),
                            (i.date.clone(), None),
                        ]
                    })
                    .collect();
                b.table(&["PO", "Customer", "Amount", "Date"], &rows);
                b.finish()
            }
        }
    }

    fn on_event(&mut self, ev: SemanticEvent) -> bool {
        let SemanticEvent::Activated { name, fields, .. } = ev else {
            if let SemanticEvent::Dismissed { .. } = ev {
                if self.toast.take().is_some() {
                    return true;
                }
            }
            return false;
        };
        self.toast = None;
        match name.as_str() {
            "nav-inbox" => {
                self.route = Route::Inbox;
                true
            }
            "nav-invoices" => {
                self.route = Route::Invoices;
                true
            }
            "nav-new-invoice" | "enter-invoice" => {
                self.route = Route::NewInvoice;
                true
            }
            "cancel-invoice" => {
                self.route = Route::Invoices;
                true
            }
            "mark-processed" => {
                if let Route::Doc(i) = self.route {
                    self.docs[i].processed = true;
                    self.toast = Some("Document marked processed".into());
                }
                true
            }
            "save-invoice" => {
                let customer = Self::field(&fields, "customer").trim().to_string();
                let po = Self::field(&fields, "po").trim().to_string();
                let amount: Option<f64> = Self::field(&fields, "amount").parse().ok();
                if customer.is_empty() || po.is_empty() || amount.is_none() {
                    self.toast = Some("Customer, amount, and PO number are required".into());
                    return true;
                }
                if self.invoices.iter().any(|i| i.po_number == po) {
                    self.toast = Some(format!("PO {po} already entered"));
                    return true;
                }
                self.invoices.push(InvoiceRecord {
                    customer,
                    amount: amount.expect("checked above"),
                    date: Self::field(&fields, "date").trim().to_string(),
                    po_number: po,
                });
                self.toast = Some("Invoice saved".into());
                self.route = Route::Invoices;
                true
            }
            _ => {
                if let Some(id) = name.strip_prefix("open-doc-") {
                    if let Some(i) = self.docs.iter().position(|d| d.id == id) {
                        self.route = Route::Doc(i);
                        return true;
                    }
                }
                false
            }
        }
    }

    fn probe(&self, key: &str) -> Option<String> {
        let mut parts = key.splitn(2, ':');
        match parts.next()? {
            "invoice_count" => Some(self.invoices.len().to_string()),
            "invoice_amount" => {
                let po = parts.next()?;
                self.invoices
                    .iter()
                    .find(|i| i.po_number == po)
                    .map(|i| format!("{:.2}", i.amount))
            }
            "invoice_customer" => {
                let po = parts.next()?;
                self.invoices
                    .iter()
                    .find(|i| i.po_number == po)
                    .map(|i| i.customer.clone())
            }
            "invoice_date" => {
                let po = parts.next()?;
                self.invoices
                    .iter()
                    .find(|i| i.po_number == po)
                    .map(|i| i.date.clone())
            }
            "doc_processed" => {
                let id = parts.next()?;
                self.docs
                    .iter()
                    .find(|d| d.id == id)
                    .map(|d| d.processed.to_string())
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::Session;
    use eclair_workflow::replay::execute_trace;
    use eclair_workflow::{Action, TargetRef};

    fn name(n: &str) -> TargetRef {
        TargetRef::Name(n.into())
    }

    #[test]
    fn invoice_entry_end_to_end() {
        let mut s = Session::new(Box::new(ErpApp::new()));
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-doc-DOC-301")),
                Action::Click(name("enter-invoice")),
                Action::Type {
                    target: Some(name("customer")),
                    text: "Acme".into(), // combo box snaps to "Acme Corp"
                },
                Action::Type {
                    target: Some(name("amount")),
                    text: "48000".into(),
                },
                Action::Type {
                    target: Some(name("date")),
                    text: "2024-02-01".into(),
                },
                Action::Type {
                    target: Some(name("po")),
                    text: "PO-7741".into(),
                },
                Action::Click(name("save-invoice")),
            ],
        )
        .unwrap();
        assert_eq!(s.app().probe("invoice_count"), Some("1".into()));
        assert_eq!(
            s.app().probe("invoice_customer:PO-7741"),
            Some("Acme Corp".into())
        );
        assert_eq!(
            s.app().probe("invoice_amount:PO-7741"),
            Some("48000.00".into())
        );
        assert_eq!(s.url(), "/erp/invoices");
    }

    #[test]
    fn duplicate_po_rejected() {
        let mut s = Session::new(Box::new(ErpApp::new()));
        for _ in 0..2 {
            execute_trace(
                &mut s,
                &[
                    Action::Click(name("nav-new-invoice")),
                    Action::Type {
                        target: Some(name("customer")),
                        text: "Initech".into(),
                    },
                    Action::Type {
                        target: Some(name("amount")),
                        text: "6250".into(),
                    },
                    Action::Type {
                        target: Some(name("po")),
                        text: "PO-7743".into(),
                    },
                    Action::Click(name("save-invoice")),
                ],
            )
            .unwrap();
        }
        assert_eq!(s.app().probe("invoice_count"), Some("1".into()));
        assert!(s.screenshot().contains_text("already entered"));
    }

    #[test]
    fn document_view_shows_fields_as_text() {
        let mut s = Session::new(Box::new(ErpApp::new()));
        execute_trace(&mut s, &[Action::Click(name("open-doc-DOC-305"))]).unwrap();
        let shot = s.screenshot();
        assert!(shot.contains_text("Stark Industries"));
        assert!(shot.contains_text("96000.00"));
        assert!(shot.contains_text("PO-7745"));
    }

    #[test]
    fn mark_processed() {
        let mut s = Session::new(Box::new(ErpApp::new()));
        execute_trace(
            &mut s,
            &[
                Action::Click(name("open-doc-DOC-302")),
                Action::Click(name("mark-processed")),
            ],
        )
        .unwrap();
        assert_eq!(s.app().probe("doc_processed:DOC-302"), Some("true".into()));
        assert_eq!(s.app().probe("doc_processed:DOC-301"), Some("false".into()));
    }

    #[test]
    fn missing_fields_rejected() {
        let mut s = Session::new(Box::new(ErpApp::new()));
        execute_trace(
            &mut s,
            &[
                Action::Click(name("nav-new-invoice")),
                Action::Click(name("save-invoice")),
            ],
        )
        .unwrap();
        assert_eq!(s.app().probe("invoice_count"), Some("0".into()));
        assert!(s.screenshot().contains_text("required"));
    }
}

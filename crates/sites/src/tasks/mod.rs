//! The 30-workflow evaluation suite (15 GitLab + 15 Magento), mirroring the
//! paper's sample "from the Gitlab and Adobe Magento environments", plus
//! the case-study workflows used by the §3 reproductions.
//!
//! Every task's gold trace is verified against its success predicate by the
//! test suite (`verify_gold`), so the evaluation set is known-solvable —
//! the same property WebArena guarantees via its functional checks.

pub mod gitlab_tasks;
pub mod magento_tasks;

use eclair_workflow::{Action, TargetRef};

use crate::task::{Site, SuccessCheck, TaskSpec};

/// Shorthand: click the widget with programmatic name `n`.
pub(crate) fn click(n: &str) -> Action {
    Action::Click(TargetRef::Name(n.into()))
}

/// Shorthand: focus the named widget and type.
pub(crate) fn type_into(n: &str, text: &str) -> Action {
    Action::Type {
        target: Some(TargetRef::Name(n.into())),
        text: text.into(),
    }
}

/// Shorthand: clear the named widget and type a fresh value.
pub(crate) fn replace(n: &str, text: &str) -> Action {
    Action::Replace {
        target: TargetRef::Name(n.into()),
        text: text.into(),
    }
}

/// All 30 evaluation tasks, GitLab first.
///
/// ```
/// let tasks = eclair_sites::all_tasks();
/// assert_eq!(tasks.len(), 30);
/// // Every task's gold trace satisfies its own success predicate.
/// tasks[0].verify_gold().unwrap();
/// ```
pub fn all_tasks() -> Vec<TaskSpec> {
    let mut tasks = gitlab_tasks::tasks();
    tasks.extend(magento_tasks::tasks());
    tasks
}

/// The §3.2 case-study workflow: ingest contract `doc_index` from the ERP
/// inbox into the invoice system of record.
pub fn erp_invoice_task(doc_index: usize) -> TaskSpec {
    let (id, customer, _product, amount, date, po) = crate::fixtures::CONTRACTS[doc_index];
    TaskSpec::new(
        &format!("erp-invoice-{}", doc_index + 1),
        Site::Erp,
        &format!("Ingest contract {id} into the invoice system of record"),
        vec![
            click(&format!("open-doc-{id}")),
            click("enter-invoice"),
            type_into("customer", customer),
            type_into("amount", &format!("{amount}")),
            type_into("date", date),
            type_into("po", po),
            click("save-invoice"),
        ],
        &[
            &format!("Open document '{id}' from the contract inbox"),
            "Click the 'Enter invoice' button",
            &format!("Select '{customer}' from the Customer dropdown"),
            &format!("Type \"{amount}\" into the Amount field"),
            &format!("Type \"{date}\" into the Invoice date field"),
            &format!("Type \"{po}\" into the PO number field"),
            "Click the 'Save invoice' button",
        ],
        SuccessCheck::probes(&[
            (&format!("invoice_customer:{po}") as &str, customer),
            (
                &format!("invoice_amount:{po}") as &str,
                &format!("{amount:.2}"),
            ),
        ])
        .with_url("/erp/invoices"),
    )
}

/// The §3.1 case-study workflow: verify a member's insurance eligibility.
pub fn payer_eligibility_task(member_index: usize) -> TaskSpec {
    let (member, _name, dob, payer, eligible) = crate::fixtures::MEMBERS[member_index];
    TaskSpec::new(
        &format!("payer-elig-{}", member_index + 1),
        Site::Payer,
        &format!("Verify insurance eligibility for member {member}"),
        vec![
            type_into("member-id", member),
            type_into("dob", dob),
            type_into("payer", payer),
            click("check-eligibility"),
        ],
        &[
            &format!("Type \"{member}\" into the Member ID field"),
            &format!("Type \"{dob}\" into the Date of birth field"),
            &format!("Select '{payer}' from the Payer dropdown"),
            "Click the 'Check eligibility' button",
        ],
        SuccessCheck::probes(&[(
            &format!("last_check:{member}") as &str,
            if eligible { "eligible" } else { "ineligible" },
        )])
        .with_url("/payer/eligibility/result"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_thirty_tasks() {
        let tasks = all_tasks();
        assert_eq!(tasks.len(), 30);
        let gitlab = tasks.iter().filter(|t| t.site == Site::Gitlab).count();
        let magento = tasks.iter().filter(|t| t.site == Site::Magento).count();
        assert_eq!(gitlab, 15);
        assert_eq!(magento, 15);
    }

    #[test]
    fn task_ids_are_unique() {
        let tasks = all_tasks();
        let mut ids: Vec<&str> = tasks.iter().map(|t| t.id.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len());
    }

    #[test]
    fn every_gold_trace_satisfies_its_success_check() {
        for task in all_tasks() {
            task.verify_gold().unwrap();
        }
    }

    #[test]
    fn gold_sops_average_near_paper_ground_truth() {
        // Paper Table 1 ground truth: 8.70 steps per SOP on average.
        let tasks = all_tasks();
        let avg: f64 =
            tasks.iter().map(|t| t.gold_sop.len() as f64).sum::<f64>() / tasks.len() as f64;
        assert!(
            (4.0..=11.0).contains(&avg),
            "average SOP length {avg:.2} should be broadly comparable to the paper's 8.70"
        );
    }

    #[test]
    fn case_study_tasks_verify() {
        for i in 0..crate::fixtures::CONTRACTS.len() {
            erp_invoice_task(i).verify_gold().unwrap();
        }
        for i in 0..crate::fixtures::MEMBERS.len() {
            payer_eligibility_task(i).verify_gold().unwrap();
        }
    }

    #[test]
    fn intents_are_nonempty_and_descriptive() {
        for t in all_tasks() {
            assert!(t.intent.split_whitespace().count() >= 4, "{}", t.id);
            assert!(!t.gold_sop.is_empty(), "{}", t.id);
            assert!(t.gold_trace.len() >= 2, "{}", t.id);
        }
    }
}

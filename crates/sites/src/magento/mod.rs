//! Magento-admin-sim: the e-commerce back office mirroring WebArena's
//! Adobe Magento admin environment (the other half of the paper's 30
//! sampled workflows).

pub mod pages;
pub mod state;

use eclair_gui::{GuiApp, Page, SemanticEvent};

pub use state::{Customer, MagentoState, Order, Product};

/// Current screen.
#[derive(Debug, Clone, PartialEq)]
pub enum Route {
    Dashboard,
    /// Product grid with an applied search filter.
    Products(String),
    NewProduct,
    EditProduct(String),
    Orders,
    Order(u32),
    Customers(String),
}

/// The running admin application.
pub struct MagentoApp {
    state: MagentoState,
    route: Route,
    toast: Option<String>,
    modal: Option<String>,
}

impl MagentoApp {
    /// Fresh instance on the standard fixture.
    pub fn new() -> Self {
        Self {
            state: MagentoState::fixture(),
            route: Route::Dashboard,
            toast: None,
            modal: None,
        }
    }

    /// Access the domain state (tests/oracles).
    pub fn state(&self) -> &MagentoState {
        &self.state
    }

    fn field<'a>(fields: &'a [(String, String)], name: &str) -> &'a str {
        fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or("")
    }

    fn handle_activation(&mut self, name: &str, fields: &[(String, String)]) -> bool {
        self.toast = None;
        match name {
            "nav-dashboard" => {
                self.route = Route::Dashboard;
                return true;
            }
            "nav-products" | "back-to-products" => {
                self.route = Route::Products(String::new());
                return true;
            }
            "nav-orders" => {
                self.route = Route::Orders;
                return true;
            }
            "nav-customers" => {
                self.route = Route::Customers(String::new());
                return true;
            }
            "apply-search" => {
                self.route = Route::Products(Self::field(fields, "product-search").into());
                return true;
            }
            "apply-customer-search" => {
                self.route = Route::Customers(Self::field(fields, "customer-search").into());
                return true;
            }
            "add-product" => {
                self.route = Route::NewProduct;
                return true;
            }
            "save-product" => return self.save_new_product(fields),
            "update-product" => return self.update_product(fields),
            "ship-order" => {
                if let Route::Order(id) = self.route {
                    if let Some(o) = self.state.order_mut(id) {
                        o.status = "Shipped".into();
                    }
                    self.toast = Some("Shipment created".into());
                }
                return true;
            }
            "cancel-order" => {
                self.modal = Some("cancel".into());
                return true;
            }
            "confirm-cancel" => {
                if let Route::Order(id) = self.route {
                    if let Some(o) = self.state.order_mut(id) {
                        o.status = "Canceled".into();
                    }
                }
                self.modal = None;
                self.toast = Some("Order canceled".into());
                return true;
            }
            "abort-cancel" => {
                self.modal = None;
                return true;
            }
            "submit-comment" => {
                if let Route::Order(id) = self.route {
                    let c = Self::field(fields, "order-comment").trim().to_string();
                    if c.is_empty() {
                        self.toast = Some("Comment cannot be empty".into());
                    } else if let Some(o) = self.state.order_mut(id) {
                        o.comments.push(c);
                        self.toast = Some("Comment added".into());
                    }
                }
                return true;
            }
            _ => {}
        }
        if let Some(sku) = name.strip_prefix("edit-product-") {
            if self.state.product(sku).is_some() {
                self.route = Route::EditProduct(sku.to_string());
                return true;
            }
        }
        if let Some(id) = name
            .strip_prefix("open-order-")
            .and_then(|s| s.parse().ok())
        {
            if self.state.order(id).is_some() {
                self.route = Route::Order(id);
                return true;
            }
        }
        false
    }

    fn save_new_product(&mut self, fields: &[(String, String)]) -> bool {
        let name = Self::field(fields, "name").trim().to_string();
        let sku = Self::field(fields, "sku").trim().to_string();
        if name.is_empty() || sku.is_empty() {
            self.toast = Some("Name and SKU are required".into());
            return true;
        }
        if self.state.product(&sku).is_some() {
            self.toast = Some(format!("SKU {sku} already exists"));
            return true;
        }
        let price: f64 = Self::field(fields, "price").parse().unwrap_or(0.0);
        let quantity: u32 = Self::field(fields, "quantity").parse().unwrap_or(0);
        let status = match Self::field(fields, "status") {
            "" => "Enabled".to_string(),
            s => s.to_string(),
        };
        self.state.products.push(Product {
            name,
            sku: sku.clone(),
            price,
            quantity,
            status,
        });
        self.toast = Some("You saved the product".into());
        self.route = Route::EditProduct(sku);
        true
    }

    fn update_product(&mut self, fields: &[(String, String)]) -> bool {
        let Route::EditProduct(sku) = &self.route else {
            return false;
        };
        let sku = sku.clone();
        let new_price: Option<f64> = Self::field(fields, "price").parse().ok();
        let new_qty: Option<u32> = Self::field(fields, "quantity").parse().ok();
        let new_name = Self::field(fields, "name").trim().to_string();
        let new_status = Self::field(fields, "status").to_string();
        if let Some(p) = self.state.product_mut(&sku) {
            if let Some(v) = new_price {
                p.price = v;
            }
            if let Some(v) = new_qty {
                p.quantity = v;
            }
            if !new_name.is_empty() {
                p.name = new_name;
            }
            if !new_status.is_empty() {
                p.status = new_status;
            }
        }
        self.toast = Some("You saved the product".into());
        true
    }
}

impl Default for MagentoApp {
    fn default() -> Self {
        Self::new()
    }
}

impl GuiApp for MagentoApp {
    fn name(&self) -> &str {
        "magento"
    }

    fn url(&self) -> String {
        match &self.route {
            Route::Dashboard => "/magento".into(),
            Route::Products(_) => "/magento/catalog/products".into(),
            Route::NewProduct => "/magento/catalog/products/new".into(),
            Route::EditProduct(sku) => format!("/magento/catalog/products/{sku}/edit"),
            Route::Orders => "/magento/sales/orders".into(),
            Route::Order(id) => format!("/magento/sales/orders/{id}"),
            Route::Customers(_) => "/magento/customers".into(),
        }
    }

    fn build(&self) -> Page {
        pages::build(&self.state, &self.route, &self.toast, &self.modal)
    }

    fn on_event(&mut self, ev: SemanticEvent) -> bool {
        match ev {
            SemanticEvent::Activated { name, fields, .. } => self.handle_activation(&name, &fields),
            SemanticEvent::Dismissed { name } => {
                if name == "cancel-confirm" {
                    self.modal = None;
                    return true;
                }
                if self.toast.take().is_some() {
                    return true;
                }
                false
            }
            SemanticEvent::Toggled { .. } => false,
        }
    }

    fn probe(&self, key: &str) -> Option<String> {
        let mut parts = key.splitn(2, ':');
        let kind = parts.next()?;
        let arg = parts.next().unwrap_or("");
        match kind {
            "product_exists" => Some(
                self.state
                    .products
                    .iter()
                    .any(|p| p.name == arg || p.sku == arg)
                    .to_string(),
            ),
            "product_price" => self.state.product(arg).map(|p| format!("{:.2}", p.price)),
            "product_qty" => self.state.product(arg).map(|p| p.quantity.to_string()),
            "product_status" => self.state.product(arg).map(|p| p.status.clone()),
            "product_name" => self.state.product(arg).map(|p| p.name.clone()),
            "order_status" => arg
                .parse()
                .ok()
                .and_then(|id| self.state.order(id))
                .map(|o| o.status.clone()),
            "order_comments" => arg
                .parse()
                .ok()
                .and_then(|id| self.state.order(id))
                .map(|o| o.comments.join(" | ")),
            "customer_exists" => Some(
                self.state
                    .customers
                    .iter()
                    .any(|c| c.email == arg || c.name == arg)
                    .to_string(),
            ),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::Session;
    use eclair_workflow::replay::execute_trace;
    use eclair_workflow::{Action, TargetRef};

    fn session() -> Session {
        Session::new(Box::new(MagentoApp::new()))
    }

    fn name(n: &str) -> TargetRef {
        TargetRef::Name(n.into())
    }

    #[test]
    fn add_product_end_to_end() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("nav-products")),
                Action::Click(name("add-product")),
                Action::Type {
                    target: Some(name("name")),
                    text: "Trail Running Socks".into(),
                },
                Action::Type {
                    target: Some(name("sku")),
                    text: "24-SO01".into(),
                },
                Action::Type {
                    target: Some(name("price")),
                    text: "11.50".into(),
                },
                Action::Type {
                    target: Some(name("quantity")),
                    text: "40".into(),
                },
                Action::Click(name("save-product")),
            ],
        )
        .unwrap();
        assert_eq!(s.app().probe("product_exists:24-SO01"), Some("true".into()));
        assert_eq!(s.app().probe("product_price:24-SO01"), Some("11.50".into()));
        assert!(s.url().ends_with("/edit"));
        assert!(s.screenshot().contains_text("You saved the product"));
    }

    #[test]
    fn duplicate_sku_rejected() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("nav-products")),
                Action::Click(name("add-product")),
                Action::Type {
                    target: Some(name("name")),
                    text: "Dup".into(),
                },
                Action::Type {
                    target: Some(name("sku")),
                    text: "PG004".into(),
                },
                Action::Click(name("save-product")),
            ],
        )
        .unwrap();
        assert!(s.screenshot().contains_text("already exists"));
        assert_eq!(
            s.app().probe("product_name:PG004"),
            Some("Quest Lumaflex Band".into())
        );
    }

    #[test]
    fn update_price_via_edit_form() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("nav-products")),
                Action::Click(name("edit-product-PG004")),
            ],
        )
        .unwrap();
        // The form is prefilled; clear price by backspacing then type anew.
        let price_field = s.page().find_by_name("price").unwrap();
        let pt = s
            .page()
            .get(price_field)
            .bounds
            .center()
            .offset(0, -s.scroll_y());
        s.dispatch(eclair_gui::UserEvent::Click(pt));
        for _ in 0..10 {
            s.dispatch(eclair_gui::UserEvent::Press(eclair_gui::Key::Backspace));
        }
        s.dispatch(eclair_gui::UserEvent::Type("17.25".into()));
        execute_trace(&mut s, &[Action::Click(name("update-product"))]).unwrap();
        assert_eq!(s.app().probe("product_price:PG004"), Some("17.25".into()));
    }

    #[test]
    fn cancel_order_requires_confirmation() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("nav-orders")),
                Action::Click(name("open-order-1002")),
                Action::Click(name("cancel-order")),
            ],
        )
        .unwrap();
        assert!(s.page().active_modal().is_some());
        assert_eq!(s.app().probe("order_status:1002"), Some("Pending".into()));
        execute_trace(&mut s, &[Action::Click(name("confirm-cancel"))]).unwrap();
        assert_eq!(s.app().probe("order_status:1002"), Some("Canceled".into()));
    }

    #[test]
    fn ship_order_and_comment() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("nav-orders")),
                Action::Click(name("open-order-1001")),
                Action::Type {
                    target: Some(name("order-comment")),
                    text: "Called customer to confirm address".into(),
                },
                Action::Click(name("submit-comment")),
                Action::Click(name("ship-order")),
            ],
        )
        .unwrap();
        assert_eq!(s.app().probe("order_status:1001"), Some("Shipped".into()));
        assert_eq!(
            s.app().probe("order_comments:1001"),
            Some("Called customer to confirm address".into())
        );
    }

    #[test]
    fn search_filters_grid() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("nav-products")),
                Action::Type {
                    target: Some(name("product-search")),
                    text: "Lumaflex".into(),
                },
                Action::Click(name("apply-search")),
            ],
        )
        .unwrap();
        let shot = s.screenshot();
        assert!(shot.contains_text("Quest Lumaflex Band"));
        assert!(!shot.contains_text("Zing Jump Rope"));
    }

    #[test]
    fn escape_dismisses_cancel_modal() {
        let mut s = session();
        execute_trace(
            &mut s,
            &[
                Action::Click(name("nav-orders")),
                Action::Click(name("open-order-1004")),
                Action::Click(name("cancel-order")),
            ],
        )
        .unwrap();
        s.dispatch(eclair_gui::UserEvent::Press(eclair_gui::Key::Escape));
        assert!(s.page().active_modal().is_none());
        assert_eq!(s.app().probe("order_status:1004"), Some("Pending".into()));
    }
}

//! Magento-admin-sim page builders.

use eclair_gui::{Page, PageBuilder};

use super::state::MagentoState;
use super::Route;

fn nav(b: &mut PageBuilder) {
    b.row(|b| {
        b.link("nav-dashboard", "Dashboard");
        b.link("nav-products", "Catalog");
        b.link("nav-orders", "Orders");
        b.link("nav-customers", "Customers");
        b.icon_button("nav-admin", "Admin account");
    });
    b.divider();
}

fn toast_if(b: &mut PageBuilder, toast: &Option<String>) {
    if let Some(t) = toast {
        b.toast(t.clone());
    }
}

/// Render the page for a route.
pub fn build(
    state: &MagentoState,
    route: &Route,
    toast: &Option<String>,
    modal: &Option<String>,
) -> Page {
    match route {
        Route::Dashboard => dashboard(state, toast),
        Route::Products(filter) => products(state, filter, toast),
        Route::NewProduct => new_product(toast),
        Route::EditProduct(sku) => edit_product(state, sku, toast),
        Route::Orders => orders(state, toast),
        Route::Order(id) => order_detail(state, *id, toast, modal),
        Route::Customers(filter) => customers(state, filter, toast),
    }
}

fn dashboard(state: &MagentoState, toast: &Option<String>) -> Page {
    let mut b = PageBuilder::new("Dashboard · Magento Admin", "/magento");
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "Dashboard");
    let revenue: f64 = state
        .orders
        .iter()
        .filter(|o| o.status == "Complete")
        .map(|o| o.total)
        .sum();
    b.text(format!("Lifetime sales: ${revenue:.2}"));
    b.text(format!(
        "{} products · {} orders · {} customers",
        state.products.len(),
        state.orders.len(),
        state.customers.len()
    ));
    b.finish()
}

fn products(state: &MagentoState, filter: &str, toast: &Option<String>) -> Page {
    let mut b = PageBuilder::new("Products · Magento Admin", "/magento/catalog/products");
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "Products");
    b.form("search-form", |b| {
        b.row(|b| {
            b.text_input("product-search", "", "Search by keyword");
            b.button("apply-search", "Search");
            b.button("add-product", "Add product");
        });
    });
    let needle = filter.to_lowercase();
    let rows: Vec<Vec<(String, Option<String>)>> = state
        .products
        .iter()
        .filter(|p| {
            needle.is_empty()
                || p.name.to_lowercase().contains(&needle)
                || p.sku.to_lowercase().contains(&needle)
        })
        .map(|p| {
            vec![
                (p.name.clone(), Some(format!("edit-product-{}", p.sku))),
                (p.sku.clone(), None),
                (format!("${:.2}", p.price), None),
                (p.quantity.to_string(), None),
                (p.status.clone(), None),
            ]
        })
        .collect();
    b.table(&["Name", "SKU", "Price", "Qty", "Status"], &rows);
    b.finish()
}

fn product_form(b: &mut PageBuilder, submit_name: &str, submit_label: &str) {
    b.form("product-form", |b| {
        b.text_input("name", "Product name", "");
        b.text_input("sku", "SKU", "");
        b.text_input("price", "Price", "0.00");
        b.text_input("quantity", "Quantity", "0");
        b.select(
            "status",
            "Enable product",
            &["Enabled", "Disabled"],
            Some("Enabled"),
        );
        b.row(|b| {
            b.button(submit_name, submit_label);
            b.link("back-to-products", "Back");
        });
    });
}

fn new_product(toast: &Option<String>) -> Page {
    let mut b = PageBuilder::new(
        "New product · Magento Admin",
        "/magento/catalog/products/new",
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "New product");
    product_form(&mut b, "save-product", "Save");
    b.finish()
}

fn edit_product(state: &MagentoState, sku: &str, toast: &Option<String>) -> Page {
    let p = state
        .product(sku)
        .expect("route points at existing product");
    let mut b = PageBuilder::new(
        format!("{} · Magento Admin", p.name),
        format!("/magento/catalog/products/{}/edit", p.sku),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, p.name.clone());
    product_form(&mut b, "update-product", "Save");
    let mut page = b.finish();
    for (field, value) in [
        ("name", p.name.clone()),
        ("sku", p.sku.clone()),
        ("price", format!("{:.2}", p.price)),
        ("quantity", p.quantity.to_string()),
        ("status", p.status.clone()),
    ] {
        if let Some(id) = page.find_by_name(field) {
            page.get_mut(id).value = value.into();
        }
    }
    page
}

fn orders(state: &MagentoState, toast: &Option<String>) -> Page {
    let mut b = PageBuilder::new("Orders · Magento Admin", "/magento/sales/orders");
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "Orders");
    let rows: Vec<Vec<(String, Option<String>)>> = state
        .orders
        .iter()
        .map(|o| {
            vec![
                (format!("#{}", o.id), Some(format!("open-order-{}", o.id))),
                (o.customer.clone(), None),
                (format!("${:.2}", o.total), None),
                (o.status.clone(), None),
            ]
        })
        .collect();
    b.table(&["Order", "Customer", "Total", "Status"], &rows);
    b.finish()
}

fn order_detail(
    state: &MagentoState,
    id: u32,
    toast: &Option<String>,
    modal: &Option<String>,
) -> Page {
    let o = state.order(id).expect("route points at existing order");
    let mut b = PageBuilder::new(
        format!("Order #{id} · Magento Admin"),
        format!("/magento/sales/orders/{id}"),
    );
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, format!("Order #{id}"));
    b.row(|b| {
        b.badge(o.status.clone());
    });
    b.text(format!("Customer: {}", o.customer));
    b.text(format!("Grand total: ${:.2}", o.total));
    if o.status == "Pending" || o.status == "Processing" {
        b.row(|b| {
            b.button("ship-order", "Ship");
            b.button("cancel-order", "Cancel order");
        });
    }
    b.divider();
    b.heading(2, "Order comments");
    for c in &o.comments {
        b.text(format!("💬 {c}"));
    }
    b.form("comment-form", |b| {
        b.textarea("order-comment", "Comment", "Add a note for this order");
        b.button("submit-comment", "Submit comment");
    });
    if modal.as_deref() == Some("cancel") {
        b.modal("cancel-confirm", |b| {
            b.text("Are you sure you want to cancel this order?");
            b.row(|b| {
                b.button("confirm-cancel", "OK");
                b.button("abort-cancel", "Go back");
            });
        });
    }
    b.finish()
}

fn customers(state: &MagentoState, filter: &str, toast: &Option<String>) -> Page {
    let mut b = PageBuilder::new("Customers · Magento Admin", "/magento/customers");
    toast_if(&mut b, toast);
    nav(&mut b);
    b.heading(1, "Customers");
    b.form("customer-search-form", |b| {
        b.row(|b| {
            b.text_input("customer-search", "", "Search by name or email");
            b.button("apply-customer-search", "Search");
        });
    });
    let needle = filter.to_lowercase();
    let rows: Vec<Vec<(String, Option<String>)>> = state
        .customers
        .iter()
        .filter(|c| {
            needle.is_empty()
                || c.name.to_lowercase().contains(&needle)
                || c.email.to_lowercase().contains(&needle)
        })
        .map(|c| vec![(c.name.clone(), None), (c.email.clone(), None)])
        .collect();
    b.table(&["Name", "Email"], &rows);
    b.finish()
}

//! Magento-admin-sim domain state: catalog, orders, customers.

use serde::{Deserialize, Serialize};

use crate::fixtures;

/// Catalog entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Product {
    pub name: String,
    pub sku: String,
    pub price: f64,
    pub quantity: u32,
    /// "Enabled" / "Disabled".
    pub status: String,
}

/// A customer order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Order {
    pub id: u32,
    pub customer: String,
    pub total: f64,
    /// "Pending" / "Processing" / "Complete" / "Canceled" / "Shipped".
    pub status: String,
    pub comments: Vec<String>,
}

/// A registered customer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Customer {
    pub name: String,
    pub email: String,
}

/// The whole admin instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MagentoState {
    pub products: Vec<Product>,
    pub orders: Vec<Order>,
    pub customers: Vec<Customer>,
}

impl MagentoState {
    /// Standard evaluation fixture seeded from [`crate::fixtures`].
    pub fn fixture() -> Self {
        let products = fixtures::PRODUCT_NAMES
            .iter()
            .map(|&(name, sku, price, qty)| Product {
                name: name.into(),
                sku: sku.into(),
                price,
                quantity: qty,
                status: "Enabled".into(),
            })
            .collect();
        let customers: Vec<Customer> = fixtures::CUSTOMERS
            .iter()
            .map(|&(name, email)| Customer {
                name: name.into(),
                email: email.into(),
            })
            .collect();
        let orders = fixtures::ORDERS
            .iter()
            .map(|&(id, cust, total, status)| Order {
                id,
                customer: customers[cust].name.clone(),
                total,
                status: status.into(),
                comments: Vec::new(),
            })
            .collect();
        Self {
            products,
            orders,
            customers,
        }
    }

    /// Find a product by SKU.
    pub fn product(&self, sku: &str) -> Option<&Product> {
        self.products.iter().find(|p| p.sku == sku)
    }

    /// Find a product by SKU, mutably.
    pub fn product_mut(&mut self, sku: &str) -> Option<&mut Product> {
        self.products.iter_mut().find(|p| p.sku == sku)
    }

    /// Find an order by id.
    pub fn order(&self, id: u32) -> Option<&Order> {
        self.orders.iter().find(|o| o.id == id)
    }

    /// Find an order by id, mutably.
    pub fn order_mut(&mut self, id: u32) -> Option<&mut Order> {
        self.orders.iter_mut().find(|o| o.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shape() {
        let s = MagentoState::fixture();
        assert_eq!(s.products.len(), fixtures::PRODUCT_NAMES.len());
        assert_eq!(s.orders.len(), fixtures::ORDERS.len());
        assert!(s.product("PG004").is_some());
        assert_eq!(s.order(1001).unwrap().customer, "Emma Lopez");
    }

    #[test]
    fn lookups_mutate() {
        let mut s = MagentoState::fixture();
        s.product_mut("PG004").unwrap().price = 21.0;
        assert_eq!(s.product("PG004").unwrap().price, 21.0);
        s.order_mut(1002).unwrap().status = "Canceled".into();
        assert_eq!(s.order(1002).unwrap().status, "Canceled");
    }
}

//! # eclair-vision
//!
//! The vision substrate of the ECLAIR reproduction: everything between raw
//! screenshots (from `eclair-gui`) and the simulated foundation model's
//! perception.
//!
//! * [`frame`] — recordings of demonstrations: aligned frame/action-log
//!   sequences, captured by driving a live session (the "video
//!   demonstrations" of paper §4.1);
//! * [`keyframes`] — the paper's *imperfect* key-frame extraction heuristic
//!   ("alignment with clicks and keystrokes"), including its real failure
//!   modes (typing bursts collapse, low-diff frames drop);
//! * [`ocr`] — simulated optical character recognition with size-dependent
//!   character noise;
//! * [`detector`] — a YOLO-NAS-like object detector over screenshots with
//!   size-dependent recall, box jitter, and false positives (Table 3's
//!   "YOLO" bounding-box source);
//! * [`marks`] — set-of-marks overlays (Yang et al. 2023): numeric labels on
//!   candidate boxes from either the detector or ground-truth HTML;
//! * [`diff`] — perceptual screen diffing used by the Validate experiments.

pub mod detector;
pub mod diff;
pub mod frame;
pub mod keyframes;
pub mod marks;
pub mod ocr;

pub use detector::{Detection, YoloNasSim};
pub use frame::{ActionLogEntry, Frame, Recording};
pub use keyframes::{extract_key_frames, KeyFrame};
pub use marks::{Mark, MarkedScreenshot};

//! Demonstration recordings: what the paper's human annotators produced by
//! "recording themselves completing each workflow".
//!
//! A [`Recording`] pairs a sequence of frames (screenshots) with an aligned
//! action log: `frames[i]` is the screen state *before* `log[i]`, and
//! `frames[i+1]` the state after it. The final frame has no following
//! action. This is exactly the (s, a, s′, a′, ...) alternation of the
//! paper's §2.2 problem formulation.

use eclair_gui::event::Dispatch;
use eclair_gui::{Screenshot, Session, UserEvent};
use serde::{Deserialize, Serialize};

/// One captured frame of a demonstration video.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Frame {
    /// Position in the recording (0-based).
    pub index: usize,
    /// The captured screen.
    pub shot: Screenshot,
}

/// One entry of the OS-level action log: the raw event plus whatever a
/// recording tool could attach from accessibility metadata (the clicked
/// element's visible/accessible text). The paper's WD+KF+ACT condition
/// feeds these to the model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActionLogEntry {
    /// Index of the frame this action was taken *from*.
    pub frame_index: usize,
    /// The raw event.
    pub event: UserEvent,
    /// Accessible text of the hit element, when the logger could resolve
    /// one (button caption, field label, icon aria-label).
    pub target_text: Option<String>,
    /// URL after the event settled.
    pub url_after: String,
}

impl ActionLogEntry {
    /// Render the entry as a log line ("click 'New issue'").
    pub fn describe(&self) -> String {
        match (&self.event, &self.target_text) {
            (UserEvent::Click(_), Some(t)) if !t.is_empty() => format!("click '{t}'"),
            (UserEvent::Type(s), Some(t)) if !t.is_empty() => format!("type {s:?} into '{t}'"),
            _ => self.event.describe(),
        }
    }
}

/// A complete demonstration: workflow description, frames, action log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recording {
    /// The natural-language workflow description ("WD").
    pub workflow_description: String,
    /// Captured frames; `frames.len() == log.len() + 1` for a non-empty
    /// recording.
    pub frames: Vec<Frame>,
    /// Aligned action log.
    pub log: Vec<ActionLogEntry>,
}

impl Recording {
    /// Number of actions performed.
    pub fn num_actions(&self) -> usize {
        self.log.len()
    }

    /// The (s, a, s′) triple around action `i`, if in range.
    pub fn transition(&self, i: usize) -> Option<(&Screenshot, &ActionLogEntry, &Screenshot)> {
        if i + 1 < self.frames.len() && i < self.log.len() {
            Some((&self.frames[i].shot, &self.log[i], &self.frames[i + 1].shot))
        } else {
            None
        }
    }

    /// The final screen state.
    pub fn final_frame(&self) -> Option<&Screenshot> {
        self.frames.last().map(|f| &f.shot)
    }

    /// Drop the last `n` transitions — the paper's negative-example
    /// construction for the workflow-completion validator ("truncate some
    /// by a random number of frames").
    pub fn truncated(&self, n: usize) -> Recording {
        let keep_actions = self.log.len().saturating_sub(n);
        Recording {
            workflow_description: self.workflow_description.clone(),
            frames: self.frames[..=keep_actions.min(self.frames.len() - 1)].to_vec(),
            log: self.log[..keep_actions].to_vec(),
        }
    }

    /// Swap two transitions (paper's "randomly shuffle" trajectory
    /// corruption). Frame `i+1` and `j+1` plus log entries `i`/`j` swap, so
    /// the trace stays aligned but the order of evidence is wrong.
    pub fn with_swapped(&self, i: usize, j: usize) -> Recording {
        let mut r = self.clone();
        if i < r.log.len() && j < r.log.len() && i != j {
            r.log.swap(i, j);
            r.frames.swap(i + 1, j + 1);
        }
        r
    }

    /// Delete transition `i` entirely (frame `i+1` and log entry `i`) —
    /// the paper's "randomly delete frames" corruption.
    pub fn with_deleted(&self, i: usize) -> Recording {
        let mut r = self.clone();
        if i < r.log.len() {
            r.log.remove(i);
            r.frames.remove(i + 1);
            for (idx, f) in r.frames.iter_mut().enumerate() {
                f.index = idx;
            }
            for (idx, l) in r.log.iter_mut().enumerate() {
                l.frame_index = idx;
            }
        }
        r
    }
}

/// Drive a live session through `events`, capturing a frame before the
/// first event and after every event — the recorder the paper's annotators
/// ran while demonstrating workflows.
pub fn record(session: &mut Session, wd: &str, events: Vec<UserEvent>) -> Recording {
    // Frames are archived (serialized, mutated by corruption studies), so
    // the recording deep-copies out of the session's shared frame cache.
    let mut frames = vec![Frame {
        index: 0,
        shot: (*session.screenshot()).clone(),
    }];
    let mut log = Vec::with_capacity(events.len());
    for (i, event) in events.into_iter().enumerate() {
        let d: Dispatch = session.dispatch(event.clone());
        log.push(ActionLogEntry {
            frame_index: i,
            event,
            target_text: d.hit.and_then(
                |(_, label)| {
                    if label.is_empty() {
                        None
                    } else {
                        Some(label)
                    }
                },
            ),
            url_after: d.url_after,
        });
        frames.push(Frame {
            index: i + 1,
            shot: (*session.screenshot()).clone(),
        });
    }
    Recording {
        workflow_description: wd.to_string(),
        frames,
        log,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::{GuiApp, Page, PageBuilder, Point, SemanticEvent};

    struct TwoStep {
        route: String,
    }
    impl GuiApp for TwoStep {
        fn name(&self) -> &str {
            "two"
        }
        fn url(&self) -> String {
            self.route.clone()
        }
        fn build(&self) -> Page {
            let mut b = PageBuilder::new("Two", self.route.clone());
            if self.route == "/a" {
                b.button("go", "Go to B");
            } else {
                b.heading(1, "Page B");
            }
            b.finish()
        }
        fn on_event(&mut self, ev: SemanticEvent) -> bool {
            if let SemanticEvent::Activated { name, .. } = ev {
                if name == "go" {
                    self.route = "/b".into();
                    return true;
                }
            }
            false
        }
    }

    fn make_recording() -> Recording {
        let mut s = Session::new(Box::new(TwoStep { route: "/a".into() }));
        let go = s.page().find_by_name("go").unwrap();
        let pt = s.page().get(go).bounds.center();
        record(
            &mut s,
            "Navigate from A to B",
            vec![
                UserEvent::Click(pt),
                UserEvent::Scroll(10), // no-op on a short page
            ],
        )
    }

    #[test]
    fn recording_aligns_frames_and_log() {
        let r = make_recording();
        assert_eq!(r.frames.len(), r.log.len() + 1);
        assert_eq!(r.num_actions(), 2);
        let (s, a, s2) = r.transition(0).unwrap();
        assert_eq!(s.url, "/a");
        assert_eq!(a.target_text.as_deref(), Some("Go to B"));
        assert_eq!(s2.url, "/b");
    }

    #[test]
    fn describe_uses_target_text() {
        let r = make_recording();
        assert_eq!(r.log[0].describe(), "click 'Go to B'");
    }

    #[test]
    fn truncation_drops_tail() {
        let r = make_recording();
        let t = r.truncated(1);
        assert_eq!(t.num_actions(), 1);
        assert_eq!(t.frames.len(), 2);
        assert_eq!(t.final_frame().unwrap().url, "/b");
        let t2 = r.truncated(10);
        assert_eq!(t2.num_actions(), 0);
        assert_eq!(t2.frames.len(), 1);
    }

    #[test]
    fn swap_and_delete_keep_alignment() {
        let r = make_recording();
        let sw = r.with_swapped(0, 1);
        assert_eq!(sw.frames.len(), sw.log.len() + 1);
        assert_ne!(sw.log[0].event, r.log[0].event, "order changed after swap");
        let del = r.with_deleted(0);
        assert_eq!(del.num_actions(), 1);
        assert_eq!(del.frames.len(), 2);
        assert_eq!(del.log[0].frame_index, 0, "indices rewritten");
    }

    #[test]
    fn click_point_type_has_describe_fallback() {
        let e = ActionLogEntry {
            frame_index: 0,
            event: UserEvent::Click(Point::new(5, 6)),
            target_text: None,
            url_after: "/".into(),
        };
        assert_eq!(e.describe(), "click @ (5,6)");
    }
}

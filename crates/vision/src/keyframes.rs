//! Key-frame extraction from demonstration recordings.
//!
//! Paper §4.1.1: *"we preprocess our video demonstrations into a sequence of
//! key frames using imperfect heuristics (i.e. alignment with clicks and
//! keystrokes)"*. This module implements that heuristic with its real
//! imperfections:
//!
//! * a burst of `Type`/`Backspace` events collapses into a single key frame
//!   at the end of the burst (per-keystroke frames carry no new step);
//! * frames whose perceptual diff against the previous *kept* frame falls
//!   below a threshold are dropped — which silently discards fast,
//!   low-visual-impact steps (the source of the "missing steps" in
//!   Table 1's WD+KF row);
//! * scroll events never produce key frames, even though a step may have
//!   only been *reachable* by scrolling.

use serde::{Deserialize, Serialize};

use eclair_gui::UserEvent;

use crate::frame::Recording;

/// Why a frame was kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KeepReason {
    /// First frame of the recording (initial state).
    Initial,
    /// Frame after a click.
    AfterClick,
    /// Frame at the end of a typing burst.
    AfterTypingBurst,
    /// Frame after a key press (Enter/Escape/Tab).
    AfterKey,
}

/// One selected key frame.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyFrame {
    /// Index into `recording.frames`.
    pub frame_index: usize,
    /// Why the heuristic kept it.
    pub reason: KeepReason,
}

/// Tuning knobs for the extraction heuristic.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KeyFrameConfig {
    /// Minimum perceptual diff (fraction of changed signature cells) vs the
    /// previously *kept* frame for a candidate to survive.
    pub min_diff: f64,
}

impl Default for KeyFrameConfig {
    fn default() -> Self {
        // ~0.8% of the screen must have changed; tuned so pure caret blinks
        // and hover-ish noise drop but real actions survive.
        Self { min_diff: 0.008 }
    }
}

/// Run the heuristic over a recording.
pub fn extract_key_frames(rec: &Recording, cfg: KeyFrameConfig) -> Vec<KeyFrame> {
    let mut kept: Vec<KeyFrame> = Vec::new();
    if rec.frames.is_empty() {
        return kept;
    }
    kept.push(KeyFrame {
        frame_index: 0,
        reason: KeepReason::Initial,
    });
    let mut last_kept = 0usize;
    for (i, entry) in rec.log.iter().enumerate() {
        let candidate = i + 1; // frame after action i
                               // A typing burst is any run of Type / Backspace events; only the
                               // frame at the end of the run is a key-frame candidate.
        let next_in_burst = rec
            .log
            .get(i + 1)
            .map(|n| {
                matches!(n.event, UserEvent::Type(_))
                    || matches!(n.event, UserEvent::Press(eclair_gui::Key::Backspace))
            })
            .unwrap_or(false);
        let reason = match &entry.event {
            UserEvent::Click(_) => Some(KeepReason::AfterClick),
            UserEvent::Type(_) | UserEvent::Press(eclair_gui::Key::Backspace) if next_in_burst => {
                None // mid-burst
            }
            UserEvent::Type(_) | UserEvent::Press(eclair_gui::Key::Backspace) => {
                Some(KeepReason::AfterTypingBurst)
            }
            UserEvent::Press(_) => Some(KeepReason::AfterKey),
            UserEvent::Scroll(_) => None,
        };
        let Some(reason) = reason else { continue };
        let diff = rec.frames[candidate]
            .shot
            .diff_fraction(&rec.frames[last_kept].shot);
        if diff < cfg.min_diff {
            continue; // imperfection: a real but visually-small step is lost
        }
        kept.push(KeyFrame {
            frame_index: candidate,
            reason,
        });
        last_kept = candidate;
    }
    // Always keep the final state so completion is observable.
    let last = rec.frames.len() - 1;
    if kept.last().map(|k| k.frame_index) != Some(last) {
        let diff = rec.frames[last]
            .shot
            .diff_fraction(&rec.frames[last_kept].shot);
        if diff >= cfg.min_diff || kept.len() == 1 {
            kept.push(KeyFrame {
                frame_index: last,
                reason: KeepReason::AfterKey,
            });
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::record;
    use eclair_gui::{GuiApp, Page, PageBuilder, SemanticEvent, Session, UserEvent};

    struct FormApp {
        saved: Option<String>,
    }
    impl GuiApp for FormApp {
        fn name(&self) -> &str {
            "form"
        }
        fn url(&self) -> String {
            if self.saved.is_some() {
                "/done".into()
            } else {
                "/form".into()
            }
        }
        fn build(&self) -> Page {
            if let Some(v) = &self.saved {
                let mut b = PageBuilder::new("Done", "/done");
                b.heading(1, format!("Saved {v}"));
                b.finish()
            } else {
                let mut b = PageBuilder::new("Form", "/form");
                b.form("f", |b| {
                    b.text_input("q", "Query", "type here");
                    b.button("go", "Go");
                });
                b.finish()
            }
        }
        fn on_event(&mut self, ev: SemanticEvent) -> bool {
            if let SemanticEvent::Activated { name, fields, .. } = ev {
                if name == "go" {
                    self.saved = fields.into_iter().find(|(n, _)| n == "q").map(|(_, v)| v);
                    return true;
                }
            }
            false
        }
    }

    fn demo() -> crate::frame::Recording {
        let mut s = Session::new(Box::new(FormApp { saved: None }));
        let q = s.page().find_by_name("q").unwrap();
        let q_pt = s.page().get(q).bounds.center();
        let go = s.page().find_by_name("go").unwrap();
        let go_pt = s.page().get(go).bounds.center();
        record(
            &mut s,
            "Search for foobar",
            vec![
                UserEvent::Click(q_pt),
                UserEvent::Type("foo".into()),
                UserEvent::Type("bar".into()),
                UserEvent::Click(go_pt),
            ],
        )
    }

    #[test]
    fn typing_burst_collapses_to_one_frame() {
        let rec = demo();
        let kfs = extract_key_frames(&rec, KeyFrameConfig::default());
        // Expect: initial, after first click (caret/focus change may or may
        // not pass the diff gate), after typing burst, after final click.
        let burst_frames = kfs
            .iter()
            .filter(|k| k.reason == KeepReason::AfterTypingBurst)
            .count();
        assert_eq!(burst_frames, 1, "two Type events -> one key frame: {kfs:?}");
        assert_eq!(kfs[0].reason, KeepReason::Initial);
        assert_eq!(
            kfs.last().unwrap().frame_index,
            rec.frames.len() - 1,
            "final state kept"
        );
    }

    #[test]
    fn key_frames_are_strictly_ordered() {
        let rec = demo();
        let kfs = extract_key_frames(&rec, KeyFrameConfig::default());
        for pair in kfs.windows(2) {
            assert!(pair[0].frame_index < pair[1].frame_index);
        }
    }

    #[test]
    fn scrolls_never_become_key_frames() {
        let mut s = Session::new(Box::new(FormApp { saved: None }));
        let rec = record(
            &mut s,
            "scroll around",
            vec![UserEvent::Scroll(100), UserEvent::Scroll(-50)],
        );
        let kfs = extract_key_frames(&rec, KeyFrameConfig::default());
        // Initial frame (plus possibly a final-state keep); no click/typing
        // frames.
        assert!(kfs.iter().all(
            |k| k.reason != KeepReason::AfterClick && k.reason != KeepReason::AfterTypingBurst
        ));
    }

    #[test]
    fn low_diff_frames_are_dropped() {
        // Clicking dead space changes nothing; the heuristic must drop the
        // resulting frame (and thereby can also drop *real* small steps —
        // that is the documented imperfection).
        let mut s = Session::new(Box::new(FormApp { saved: None }));
        let rec = record(
            &mut s,
            "misclicks",
            vec![
                UserEvent::Click(eclair_gui::Point::new(1270, 700)),
                UserEvent::Click(eclair_gui::Point::new(1270, 710)),
            ],
        );
        let kfs = extract_key_frames(&rec, KeyFrameConfig::default());
        assert_eq!(
            kfs.iter()
                .filter(|k| k.reason == KeepReason::AfterClick)
                .count(),
            0,
            "no-op clicks produce no key frames: {kfs:?}"
        );
    }

    #[test]
    fn empty_recording_is_safe() {
        let rec = crate::frame::Recording {
            workflow_description: String::new(),
            frames: vec![],
            log: vec![],
        };
        assert!(extract_key_frames(&rec, KeyFrameConfig::default()).is_empty());
    }
}

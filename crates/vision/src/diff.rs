//! Perceptual screen diffing.
//!
//! The Validate experiments (paper §4.3) reason about *changes in screen
//! state*: did the last action visibly do anything, and does the final
//! screen differ from the initial one in the way the goal requires? This
//! module clusters changed signature-grid cells into regions and exposes
//! the summary quantities the validators consume.

use serde::{Deserialize, Serialize};

use eclair_gui::screenshot::{GRID_COLS, GRID_ROWS};
use eclair_gui::{Rect, Screenshot};

/// Summary of a frame-to-frame comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScreenDiff {
    /// Fraction of signature cells that changed (0 = identical).
    pub changed_fraction: f64,
    /// Bounding rectangles (viewport coords) of contiguous changed areas.
    pub regions: Vec<Rect>,
    /// Whether the URL changed (always a "big" change).
    pub url_changed: bool,
}

impl ScreenDiff {
    /// No visible change at all.
    pub fn is_identical(&self) -> bool {
        !self.url_changed && self.changed_fraction == 0.0
    }

    /// A heuristic "the action clearly did something" predicate.
    pub fn is_significant(&self, threshold: f64) -> bool {
        self.url_changed || self.changed_fraction >= threshold
    }
}

/// Compare two frames.
pub fn diff(a: &Screenshot, b: &Screenshot) -> ScreenDiff {
    let url_changed = a.url != b.url;
    if url_changed {
        return ScreenDiff {
            changed_fraction: 1.0,
            regions: vec![Rect::new(0, 0, a.viewport.w, a.viewport.h)],
            url_changed,
        };
    }
    let ga = a.grid_signature();
    let gb = b.grid_signature();
    let mut changed = vec![false; ga.len()];
    let mut n_changed = 0usize;
    for (i, (x, y)) in ga.iter().zip(&gb).enumerate() {
        if x != y {
            changed[i] = true;
            n_changed += 1;
        }
    }
    let cell_w = a.viewport.w as i32 / GRID_COLS as i32;
    let cell_h = a.viewport.h as i32 / GRID_ROWS as i32;
    let regions = cluster(&changed, cell_w, cell_h);
    ScreenDiff {
        changed_fraction: n_changed as f64 / ga.len() as f64,
        regions,
        url_changed,
    }
}

/// Union-find-free clustering: BFS over 4-connected changed cells.
fn cluster(changed: &[bool], cell_w: i32, cell_h: i32) -> Vec<Rect> {
    let mut seen = vec![false; changed.len()];
    let mut regions = Vec::new();
    for start in 0..changed.len() {
        if !changed[start] || seen[start] {
            continue;
        }
        let mut queue = vec![start];
        seen[start] = true;
        let (mut min_x, mut min_y, mut max_x, mut max_y) = (usize::MAX, usize::MAX, 0usize, 0usize);
        while let Some(cell) = queue.pop() {
            let cx = cell % GRID_COLS;
            let cy = cell / GRID_COLS;
            min_x = min_x.min(cx);
            max_x = max_x.max(cx);
            min_y = min_y.min(cy);
            max_y = max_y.max(cy);
            let mut try_push = |nx: isize, ny: isize| {
                if nx < 0 || ny < 0 || nx >= GRID_COLS as isize || ny >= GRID_ROWS as isize {
                    return;
                }
                let idx = ny as usize * GRID_COLS + nx as usize;
                if changed[idx] && !seen[idx] {
                    seen[idx] = true;
                    queue.push(idx);
                }
            };
            try_push(cx as isize - 1, cy as isize);
            try_push(cx as isize + 1, cy as isize);
            try_push(cx as isize, cy as isize - 1);
            try_push(cx as isize, cy as isize + 1);
        }
        regions.push(Rect::new(
            min_x as i32 * cell_w,
            min_y as i32 * cell_h,
            ((max_x - min_x + 1) as i32 * cell_w) as u32,
            ((max_y - min_y + 1) as i32 * cell_h) as u32,
        ));
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::{Page, PageBuilder};

    fn base_page() -> Page {
        let mut b = PageBuilder::new("d", "/d");
        b.heading(1, "Report");
        b.text_input("a", "Field A", "");
        b.text("Footer text far below");
        b.finish()
    }

    #[test]
    fn identical_frames_diff_empty() {
        let p = base_page();
        let d = diff(&p.screenshot_at(0), &p.screenshot_at(0));
        assert!(d.is_identical());
        assert!(d.regions.is_empty());
    }

    #[test]
    fn local_edit_yields_local_region() {
        let mut p = base_page();
        let before = p.screenshot_at(0);
        let id = p.find_by_name("a").unwrap();
        let field_rect = p.get(id).bounds;
        p.get_mut(id).value = "hello world".into();
        let after = p.screenshot_at(0);
        let d = diff(&before, &after);
        assert!(!d.is_identical());
        assert!(
            d.changed_fraction < 0.2,
            "local change: {}",
            d.changed_fraction
        );
        assert_eq!(d.regions.len(), 1, "one contiguous region: {:?}", d.regions);
        assert!(
            d.regions[0].intersects(&field_rect),
            "region {:?} overlaps the edited field {field_rect:?}",
            d.regions[0]
        );
    }

    #[test]
    fn url_change_is_total() {
        let p = base_page();
        let mut b2 = PageBuilder::new("other", "/other");
        b2.heading(1, "Elsewhere");
        let p2 = b2.finish();
        let d = diff(&p.screenshot_at(0), &p2.screenshot_at(0));
        assert!(d.url_changed);
        assert_eq!(d.changed_fraction, 1.0);
        assert!(d.is_significant(0.5));
    }

    #[test]
    fn disjoint_changes_yield_multiple_regions() {
        let mut b = PageBuilder::new("two", "/two");
        b.text_input("top", "Top", "");
        for i in 0..25 {
            b.text(format!("spacer {i}"));
        }
        b.text_input("bottom", "Bottom", "");
        let mut p = b.finish();
        let before = p.screenshot_at(0);
        let top = p.find_by_name("top").unwrap();
        let bottom = p.find_by_name("bottom").unwrap();
        p.get_mut(top).value = "x".into();
        p.get_mut(bottom).value = "y".into();
        let after = p.screenshot_at(0);
        let d = diff(&before, &after);
        // The bottom field may be off-screen at scroll 0; only require that
        // if both changed on-screen we see two regions.
        if p.get(bottom).bounds.y < 700 {
            assert!(d.regions.len() >= 2, "{:?}", d.regions);
        } else {
            assert!(!d.regions.is_empty());
        }
    }

    #[test]
    fn significance_threshold() {
        let d = ScreenDiff {
            changed_fraction: 0.01,
            regions: vec![],
            url_changed: false,
        };
        assert!(d.is_significant(0.005));
        assert!(!d.is_significant(0.05));
    }
}

//! Simulated optical character recognition.
//!
//! Multimodal FMs read on-screen text through their vision tower; small or
//! dense text is read less reliably. This module models that: reading a
//! [`PaintItem`]'s text applies character-level corruption whose rate grows
//! as the glyph size shrinks, controlled by an *acuity* parameter that the
//! model profiles in `eclair-fm` set (CogAgent, trained on GUIs, reads
//! small text better than a generalist model).

use rand::Rng;

use eclair_gui::{PaintItem, Screenshot};

/// OCR quality knob: 1.0 = perfect reading, 0.0 = hopeless.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Acuity(pub f64);

impl Acuity {
    /// Clamp into [0, 1].
    pub fn new(v: f64) -> Self {
        Self(v.clamp(0.0, 1.0))
    }

    /// Per-character error probability for text rendered at `glyph_h`
    /// pixels. Full-size text (≥18 px) is read almost perfectly at high
    /// acuity; 10 px text suffers.
    pub fn char_error_rate(&self, glyph_h: u32) -> f64 {
        let size_penalty = if glyph_h >= 18 {
            0.002
        } else if glyph_h >= 13 {
            0.01
        } else {
            0.05
        };
        (size_penalty * (2.0 - self.0) * 2.0).min(0.5) * (1.0 - self.0 * 0.8)
            + size_penalty * (1.0 - self.0)
    }
}

/// Glyph height implied by a paint item (text fills most of short items;
/// tall items like textareas render body-size text).
pub fn glyph_height(item: &PaintItem) -> u32 {
    item.rect.h.clamp(8, 22)
}

const CONFUSIONS: &[(char, char)] = &[
    ('O', '0'),
    ('0', 'O'),
    ('l', '1'),
    ('1', 'l'),
    ('I', 'l'),
    ('S', '5'),
    ('5', 'S'),
    ('B', '8'),
    ('m', 'n'),
    ('n', 'm'),
    ('e', 'c'),
    ('a', 'o'),
];

/// Read one item's text with noise.
pub fn read_item<R: Rng>(item: &PaintItem, acuity: Acuity, rng: &mut R) -> String {
    let rate = acuity.char_error_rate(glyph_height(item));
    if rate <= 0.0 {
        return item.text.to_string();
    }
    item.text
        .chars()
        .map(|c| {
            if c.is_alphanumeric() && rng.gen_bool(rate) {
                CONFUSIONS
                    .iter()
                    .find(|(from, _)| *from == c)
                    .map(|(_, to)| *to)
                    .unwrap_or(c)
            } else {
                c
            }
        })
        .collect()
}

/// Read every textual item of a screenshot; returns `(index, read_text)`
/// pairs for items with non-empty text.
pub fn read_screenshot<R: Rng>(
    shot: &Screenshot,
    acuity: Acuity,
    rng: &mut R,
) -> Vec<(usize, String)> {
    shot.items
        .iter()
        .enumerate()
        .filter(|(_, it)| !it.text.is_empty())
        .map(|(i, it)| (i, read_item(it, acuity, rng)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::{Rect, VisualClass};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn item(text: &str, h: u32) -> PaintItem {
        PaintItem {
            rect: Rect::new(0, 0, 100, h),
            visual: VisualClass::Text,
            text: text.into(),
            emphasis: false,
            grayed: false,
        }
    }

    #[test]
    fn perfect_acuity_on_large_text_is_nearly_lossless() {
        let mut rng = StdRng::seed_from_u64(1);
        let it = item("Create merge request", 20);
        let mut errors = 0;
        for _ in 0..200 {
            if read_item(&it, Acuity::new(1.0), &mut rng) != it.text {
                errors += 1;
            }
        }
        assert!(
            errors <= 6,
            "large text at acuity 1.0 rarely corrupts: {errors}"
        );
    }

    #[test]
    fn small_text_low_acuity_corrupts_more() {
        let mut rng = StdRng::seed_from_u64(2);
        let small = item("Settings", 10);
        let large = item("Settings", 20);
        let mut small_err = 0;
        let mut large_err = 0;
        for _ in 0..400 {
            if read_item(&small, Acuity::new(0.3), &mut rng) != small.text {
                small_err += 1;
            }
            if read_item(&large, Acuity::new(0.3), &mut rng) != large.text {
                large_err += 1;
            }
        }
        assert!(
            small_err > large_err,
            "small text must corrupt more: {small_err} vs {large_err}"
        );
    }

    #[test]
    fn error_rate_monotone_in_acuity() {
        let a_hi = Acuity::new(0.95).char_error_rate(12);
        let a_lo = Acuity::new(0.2).char_error_rate(12);
        assert!(a_lo > a_hi);
    }

    #[test]
    fn deterministic_under_seed() {
        let it = item("Invoice #10023", 12);
        let a = read_item(&it, Acuity::new(0.4), &mut StdRng::seed_from_u64(9));
        let b = read_item(&it, Acuity::new(0.4), &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn punctuation_and_spaces_survive() {
        let it = item("a-b c_d!", 10);
        let mut rng = StdRng::seed_from_u64(3);
        let out = read_item(&it, Acuity::new(0.0), &mut rng);
        assert_eq!(out.len(), it.text.len(), "length preserved");
        for (o, t) in out.chars().zip(it.text.chars()) {
            if !t.is_alphanumeric() {
                assert_eq!(o, t, "non-alphanumerics never corrupt");
            }
        }
    }
}

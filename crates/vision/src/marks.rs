//! Set-of-marks prompting support (Yang et al., 2023).
//!
//! Table 3 grounds GPT-4 by overlaying "a unique numeric label on top of
//! every element in the webpage screenshot" and asking the model to output
//! a label number. The candidate boxes come either from the page's HTML
//! ("HTML" source) or from the simulated YOLO detector ("YOLO" source).

use rand::Rng;
use serde::{Deserialize, Serialize};

use eclair_gui::html::{element_boxes, HtmlElement};
use eclair_gui::{Page, Rect, Screenshot};

use crate::detector::{Detection, YoloNasSim};

/// One numbered mark over a candidate box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mark {
    /// The numeric label drawn on screen (1-based, reading order).
    pub label: u32,
    /// The candidate box in viewport coordinates.
    pub rect: Rect,
    /// Text associated with the candidate (OCR'd for detector marks, exact
    /// for HTML marks).
    pub text: String,
    /// Coarse class/tag hint ("button", "a", "input", or a detector class).
    pub hint: String,
}

/// A screenshot plus its overlaid marks — the exact artifact handed to the
/// grounding model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkedScreenshot {
    /// The underlying frame.
    pub shot: Screenshot,
    /// Marks in label order.
    pub marks: Vec<Mark>,
}

impl MarkedScreenshot {
    /// Look up a mark by its numeric label.
    pub fn mark(&self, label: u32) -> Option<&Mark> {
        self.marks.iter().find(|m| m.label == label)
    }
}

fn reading_order(rects: &mut [(Rect, String, String)]) {
    // Stable top-to-bottom, left-to-right ordering, as SoM tooling numbers
    // elements.
    rects.sort_by_key(|(r, _, _)| (r.y, r.x));
}

/// Build marks from ground-truth HTML element boxes (Table 3 "HTML").
pub fn marks_from_html(page: &Page, scroll_y: i32) -> MarkedScreenshot {
    let shot = page.screenshot_at(scroll_y);
    let elements: Vec<HtmlElement> = element_boxes(page, scroll_y, true);
    let mut triples: Vec<(Rect, String, String)> = elements
        .into_iter()
        .map(|e| (e.rect, e.text, e.tag))
        .collect();
    reading_order(&mut triples);
    let marks = triples
        .into_iter()
        .enumerate()
        .map(|(i, (rect, text, hint))| Mark {
            label: i as u32 + 1,
            rect,
            text,
            hint,
        })
        .collect();
    MarkedScreenshot { shot, marks }
}

/// Build marks from detector output (Table 3 "YOLO").
pub fn marks_from_detections(shot: &Screenshot, detections: &[Detection]) -> MarkedScreenshot {
    let mut triples: Vec<(Rect, String, String)> = detections
        .iter()
        .map(|d| (d.rect, d.text.clone(), format!("{:?}", d.visual)))
        .collect();
    reading_order(&mut triples);
    let marks = triples
        .into_iter()
        .enumerate()
        .map(|(i, (rect, text, hint))| Mark {
            label: i as u32 + 1,
            rect,
            text,
            hint,
        })
        .collect();
    MarkedScreenshot {
        shot: shot.clone(),
        marks,
    }
}

/// Convenience: run the detector then mark (the full "YOLO" pipeline).
pub fn marks_via_detector<R: Rng>(
    shot: &Screenshot,
    detector: &YoloNasSim,
    rng: &mut R,
) -> MarkedScreenshot {
    let dets = detector.detect(shot, rng);
    marks_from_detections(shot, &dets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::PageBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn page() -> Page {
        let mut b = PageBuilder::new("marks", "/marks");
        b.heading(1, "Members");
        b.row(|b| {
            b.button("invite", "Invite member");
            b.link("export", "Export list");
        });
        b.text_input("q", "Filter", "search members");
        b.icon_button("gear", "Settings");
        b.finish()
    }

    #[test]
    fn html_marks_cover_all_interactive_elements() {
        let p = page();
        let m = marks_from_html(&p, 0);
        // button + link + input + icon = 4 candidates.
        assert_eq!(m.marks.len(), 4, "{:#?}", m.marks);
        assert!(m.marks.iter().any(|mk| mk.hint == "svg"));
        assert!(m.marks.iter().any(|mk| mk.text == "Invite member"));
    }

    #[test]
    fn labels_are_unique_and_in_reading_order() {
        let p = page();
        let m = marks_from_html(&p, 0);
        for (i, mk) in m.marks.iter().enumerate() {
            assert_eq!(mk.label, i as u32 + 1);
        }
        for pair in m.marks.windows(2) {
            assert!(
                (pair[0].rect.y, pair[0].rect.x) <= (pair[1].rect.y, pair[1].rect.x),
                "reading order violated"
            );
        }
    }

    #[test]
    fn detector_marks_reflect_detector_noise() {
        let p = page();
        let shot = p.screenshot_at(0);
        let mut rng = StdRng::seed_from_u64(5);
        let m = marks_via_detector(&shot, &YoloNasSim::oracle(), &mut rng);
        assert_eq!(m.marks.len(), 4, "oracle detector finds all 4");
        // A blind detector yields fewer marks.
        let blind = YoloNasSim {
            recall_small: 0.0,
            recall_medium: 0.0,
            recall_large: 0.0,
            false_positive_rate: 0.0,
            ..YoloNasSim::default()
        };
        let m2 = marks_via_detector(&shot, &blind, &mut StdRng::seed_from_u64(5));
        assert!(m2.marks.is_empty());
    }

    #[test]
    fn mark_lookup_by_label() {
        let p = page();
        let m = marks_from_html(&p, 0);
        assert!(m.mark(1).is_some());
        assert!(m.mark(99).is_none());
    }
}

//! A simulated UI-element object detector.
//!
//! Table 3 of the paper grounds GPT-4 with bounding boxes from "a YOLONAS
//! object detection model finetuned on 7k WebUI webpages". [`YoloNasSim`]
//! reproduces the *measured* properties of such a detector that matter to
//! the grounding experiment:
//!
//! * recall falls with element size (small icons/links get missed);
//! * predicted boxes jitter by a few pixels (tight but not exact);
//! * occasional false positives fire on text-dense regions;
//! * classification into a coarse element class is imperfect.
//!
//! The paper's conclusion — "detecting elements on a GUI with a vision
//! model is not the bottleneck" — falls out: the simulated detector finds
//! most elements; *choosing* among them is where accuracy is lost.

use rand::Rng;
use serde::{Deserialize, Serialize};

use eclair_gui::{PaintItem, Rect, Screenshot, SizeBucket, VisualClass};

use crate::ocr::{read_item, Acuity};

/// One detection: a box, a coarse class, OCR'd text, and a confidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Predicted box (viewport coordinates, jittered).
    pub rect: Rect,
    /// Predicted coarse class.
    pub visual: VisualClass,
    /// Text read inside the box (noisy OCR).
    pub text: String,
    /// Detector confidence in [0, 1].
    pub score: f64,
    /// Whether this is a hallucinated box (oracle-only; used for scoring).
    pub spurious: bool,
}

/// Detector configuration: recall by size bucket, geometric noise, false
/// positives, and OCR quality.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct YoloNasSim {
    /// Recall for small elements (area < 1.6k px²).
    pub recall_small: f64,
    /// Recall for medium elements.
    pub recall_medium: f64,
    /// Recall for large elements.
    pub recall_large: f64,
    /// Max absolute box-corner jitter in pixels.
    pub jitter_px: i32,
    /// Probability of a false positive per textual non-interactive item.
    pub false_positive_rate: f64,
    /// Probability a detection is assigned the wrong visual class.
    pub misclass_rate: f64,
    /// OCR acuity used to read text inside detections.
    pub ocr_acuity: f64,
}

impl Default for YoloNasSim {
    fn default() -> Self {
        // Calibrated so SoM-YOLO grounding lands near the paper's Table 3
        // operating point (overall ~0.58–0.62 for GPT-4 selection on top).
        Self {
            recall_small: 0.80,
            recall_medium: 0.96,
            recall_large: 0.985,
            jitter_px: 3,
            false_positive_rate: 0.03,
            misclass_rate: 0.04,
            ocr_acuity: 0.85,
        }
    }
}

impl YoloNasSim {
    fn recall_for(&self, bucket: SizeBucket) -> f64 {
        match bucket {
            SizeBucket::Small => self.recall_small,
            SizeBucket::Medium => self.recall_medium,
            SizeBucket::Large => self.recall_large,
        }
    }

    fn jitter<R: Rng>(&self, rect: Rect, rng: &mut R) -> Rect {
        if self.jitter_px == 0 {
            return rect;
        }
        let j = self.jitter_px;
        let dx = rng.gen_range(-j..=j);
        let dy = rng.gen_range(-j..=j);
        let dw = rng.gen_range(-j..=j);
        let dh = rng.gen_range(-j..=j);
        Rect {
            x: rect.x + dx,
            y: rect.y + dy,
            w: (rect.w as i32 + dw).max(4) as u32,
            h: (rect.h as i32 + dh).max(4) as u32,
        }
    }

    fn misclass(v: VisualClass) -> VisualClass {
        // Plausible confusions a UI detector makes.
        match v {
            VisualClass::BoxButton => VisualClass::InputBox,
            VisualClass::InputBox => VisualClass::BoxButton,
            VisualClass::TextLink => VisualClass::Text,
            VisualClass::IconGlyph => VisualClass::ImageBlob,
            VisualClass::CheckGlyph => VisualClass::RadioGlyph,
            VisualClass::RadioGlyph => VisualClass::CheckGlyph,
            other => other,
        }
    }

    /// Whether an item is something the detector was trained to box.
    fn is_detectable(item: &PaintItem) -> bool {
        matches!(
            item.visual,
            VisualClass::BoxButton
                | VisualClass::InputBox
                | VisualClass::TextLink
                | VisualClass::CheckGlyph
                | VisualClass::RadioGlyph
                | VisualClass::IconGlyph
        )
    }

    /// Run detection over a screenshot.
    pub fn detect<R: Rng>(&self, shot: &Screenshot, rng: &mut R) -> Vec<Detection> {
        let acuity = Acuity::new(self.ocr_acuity);
        let mut out = Vec::new();
        for item in &shot.items {
            if Self::is_detectable(item) {
                let recall = self.recall_for(item.rect.size_bucket());
                if !rng.gen_bool(recall) {
                    continue; // miss
                }
                let visual = if rng.gen_bool(self.misclass_rate) {
                    Self::misclass(item.visual)
                } else {
                    item.visual
                };
                let rect = self.jitter(item.rect, rng);
                // Object detectors box icons but cannot name them.
                let text = if item.visual == VisualClass::IconGlyph {
                    String::new()
                } else {
                    read_item(item, acuity, rng)
                };
                let score = (recall - rng.gen_range(0.0..0.15)).clamp(0.3, 0.99);
                out.push(Detection {
                    rect,
                    visual,
                    text,
                    score,
                    spurious: false,
                });
            } else if item.visual == VisualClass::Text
                && !item.text.is_empty()
                && rng.gen_bool(self.false_positive_rate)
            {
                // Hallucinate a clickable where there is only text.
                out.push(Detection {
                    rect: self.jitter(item.rect, rng),
                    visual: VisualClass::TextLink,
                    text: read_item(item, acuity, rng),
                    score: rng.gen_range(0.3..0.6),
                    spurious: true,
                });
            }
        }
        out
    }

    /// A perfect detector (recall 1, no jitter/noise) — used as an oracle
    /// ablation in the benches.
    pub fn oracle() -> Self {
        Self {
            recall_small: 1.0,
            recall_medium: 1.0,
            recall_large: 1.0,
            jitter_px: 0,
            false_positive_rate: 0.0,
            misclass_rate: 0.0,
            ocr_acuity: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::{PageBuilder, Screenshot as GuiScreenshot};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn busy_shot() -> GuiScreenshot {
        let mut b = PageBuilder::new("busy", "/busy");
        b.heading(1, "Dashboard");
        for i in 0..10 {
            b.row(|b| {
                b.icon_button(format!("icon-{i}"), format!("Icon {i}"));
                b.link(format!("link-{i}"), format!("Open item {i}"));
                b.button(format!("btn-{i}"), format!("Action {i}"));
            });
            b.text(format!("Row {i} descriptive text for context"));
        }
        b.finish().screenshot_at(0)
    }

    #[test]
    fn oracle_detects_every_interactive_item() {
        let shot = busy_shot();
        let mut rng = StdRng::seed_from_u64(1);
        let dets = YoloNasSim::oracle().detect(&shot, &mut rng);
        let interactive = shot
            .items
            .iter()
            .filter(|i| YoloNasSim::is_detectable(i))
            .count();
        assert_eq!(dets.len(), interactive);
        assert!(dets.iter().all(|d| !d.spurious));
    }

    #[test]
    fn small_elements_are_missed_more_often() {
        let shot = busy_shot();
        let det = YoloNasSim::default();
        let mut small_found = 0usize;
        let mut small_total = 0usize;
        let mut large_found = 0usize;
        let mut large_total = 0usize;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let dets = det.detect(&shot, &mut rng);
            for item in &shot.items {
                if !YoloNasSim::is_detectable(item) {
                    continue;
                }
                let found = dets
                    .iter()
                    .any(|d| d.rect.iou(&item.rect) > 0.4 && !d.spurious);
                match item.rect.size_bucket() {
                    eclair_gui::SizeBucket::Small => {
                        small_total += 1;
                        small_found += found as usize;
                    }
                    _ => {
                        large_total += 1;
                        large_found += found as usize;
                    }
                }
            }
        }
        let small_recall = small_found as f64 / small_total as f64;
        let big_recall = large_found as f64 / large_total as f64;
        assert!(
            small_recall < big_recall,
            "small {small_recall:.2} must trail medium/large {big_recall:.2}"
        );
        assert!(big_recall > 0.9);
    }

    #[test]
    fn jittered_boxes_stay_near_truth() {
        let shot = busy_shot();
        let mut rng = StdRng::seed_from_u64(7);
        let dets = YoloNasSim::default().detect(&shot, &mut rng);
        for d in dets.iter().filter(|d| !d.spurious) {
            let best_iou = shot
                .items
                .iter()
                .map(|i| d.rect.iou(&i.rect))
                .fold(0.0f64, f64::max);
            assert!(best_iou > 0.25, "detection far from any item: {d:?}");
        }
    }

    #[test]
    fn determinism_under_seed() {
        let shot = busy_shot();
        let a = YoloNasSim::default().detect(&shot, &mut StdRng::seed_from_u64(3));
        let b = YoloNasSim::default().detect(&shot, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn false_positives_are_marked_spurious() {
        let shot = busy_shot();
        let cfg = YoloNasSim {
            false_positive_rate: 0.8,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        let dets = cfg.detect(&shot, &mut rng);
        assert!(
            dets.iter().any(|d| d.spurious),
            "high FP rate must produce FPs"
        );
    }
}

//! Deterministic primitives for corpus generation.
//!
//! Everything the generator does with randomness and hashing lives here:
//! a SplitMix64 stream (the same generator crucible's `Scenario` uses, so
//! corpus sampling and scenario sampling share one notion of
//! determinism), a 64-bit FNV-1a for deriving per-template streams and
//! task-id digests, and a partial Fisher–Yates for sampling `k` distinct
//! indices out of a parameter space.

/// SplitMix64: tiny, fast, and fully determined by its seed.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Derive a child seed from a master seed and a label hash. Mixing through
/// SplitMix64 keeps sibling streams statistically independent even when
/// labels hash to nearby values.
pub fn derive_seed(master: u64, label_hash: u64) -> u64 {
    let mut rng = SplitMix64::new(master ^ label_hash.rotate_left(17));
    rng.next_u64()
}

/// Sample `k` distinct indices from `0..n` (partial Fisher–Yates), returned
/// **sorted ascending** so downstream iteration order is stable regardless
/// of draw order. When `k >= n` every index is returned.
pub fn sample_indices(rng: &mut SplitMix64, n: usize, k: usize) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.below((n - i) as u64) as usize;
        pool.swap(i, j);
    }
    let mut picked = pool[..k].to_vec();
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fnv_distinguishes_labels() {
        assert_ne!(
            fnv1a64(b"gitlab-create-issue"),
            fnv1a64(b"gitlab-close-issue")
        );
        assert_ne!(fnv1a64(b""), fnv1a64(b"\0"));
    }

    #[test]
    fn sample_is_sorted_distinct_and_sized() {
        let mut rng = SplitMix64::new(7);
        let s = sample_indices(&mut rng, 100, 12);
        assert_eq!(s.len(), 12);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_takes_all_when_k_exceeds_n() {
        let mut rng = SplitMix64::new(7);
        assert_eq!(sample_indices(&mut rng, 5, 50), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn distinct_seeds_give_distinct_samples_usually() {
        let a = sample_indices(&mut SplitMix64::new(1), 10_000, 20);
        let b = sample_indices(&mut SplitMix64::new(2), 10_000, 20);
        assert_ne!(a, b);
    }
}

//! # eclair-corpus
//!
//! A declarative task-template DSL and seeded corpus generator: the
//! answer to WONDERBREAD's and EntWorld's critique that enterprise
//! benchmarks are too narrow to be convincing. Thirty hand-authored
//! tasks become a 300+ task corpus across five sites — without 10×
//! hand authoring — and every generated task is *self-verified at
//! generation time* (gold trace replayed on a pristine session must
//! satisfy its own success predicate), so the corpus is a test suite
//! of itself.
//!
//! * [`template`] — the DSL: [`template::TaskTemplate`] (intent
//!   pattern, parameter space, trace/SOP/predicate builder),
//!   [`template::ParamAxis`], [`template::Params`],
//!   [`template::Blueprint`];
//! * [`templates`] — the registry: task families for gitlab, magento,
//!   erp, payer, and the new EHR surface;
//! * [`generate`] — the seeded expander: [`generate::generate`] is a
//!   pure function of the master seed with collision-free ids and a
//!   byte-reproducible [`manifest::CorpusManifest`];
//! * [`rng`] — SplitMix64, FNV-1a, and seeded index sampling.
//!
//! ```
//! let corpus = eclair_corpus::corpus();
//! assert!(corpus.tasks.len() >= 300);
//! assert_eq!(corpus.manifest.total_tasks, corpus.tasks.len());
//! // Same seed, byte-identical manifest:
//! let again = eclair_corpus::generate(eclair_corpus::CORPUS_SEED).unwrap();
//! assert_eq!(corpus.manifest.to_json(), again.manifest.to_json());
//! ```

pub mod generate;
pub mod manifest;
pub mod rng;
pub mod template;
pub mod templates;

use std::sync::OnceLock;

use eclair_sites::task::TaskSpec;

pub use generate::{generate, Corpus, CorpusError};
pub use manifest::{CorpusManifest, ManifestEntry, TemplateSummary};
pub use template::{Blueprint, ParamAxis, Params, TaskTemplate};

/// The fleet-wide default master seed. Everything downstream (crucible
/// scenario pools, benches, CI) generates from this unless it explicitly
/// passes its own.
pub const CORPUS_SEED: u64 = 0xEC1A_C0B9_05EE_D001;

static CORPUS: OnceLock<Corpus> = OnceLock::new();

/// The default corpus, generated once per process from [`CORPUS_SEED`].
/// Panics if generation fails — a template bug that must not ship.
pub fn corpus() -> &'static Corpus {
    CORPUS.get_or_init(|| {
        generate(CORPUS_SEED).unwrap_or_else(|e| panic!("default corpus failed to generate: {e}"))
    })
}

/// The default corpus's task list: the 30 handwritten tasks first (in
/// `all_tasks()` order, so indices below 30 keep their historical
/// meaning), then every generated task.
pub fn corpus_tasks() -> &'static [TaskSpec] {
    &corpus().tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_corpus_meets_the_issue_floor() {
        let c = corpus();
        assert!(c.tasks.len() >= 300, "only {} tasks", c.tasks.len());
        let sites: std::collections::HashSet<&str> =
            c.tasks.iter().map(|t| t.site.name()).collect();
        assert!(sites.len() >= 5, "only {} sites", sites.len());
        assert_eq!(c.manifest.handwritten, 30);
        assert_eq!(c.manifest.total_tasks, c.tasks.len());
    }

    #[test]
    fn handwritten_prefix_preserves_all_tasks_order() {
        let c = corpus();
        let hand = eclair_sites::all_tasks();
        for (i, t) in hand.iter().enumerate() {
            assert_eq!(c.tasks[i].id, t.id, "prefix order moved at {i}");
        }
    }

    #[test]
    fn manifest_rows_match_tasks_one_to_one() {
        let c = corpus();
        assert_eq!(c.manifest.entries.len(), c.tasks.len());
        for (entry, task) in c.manifest.entries.iter().zip(&c.tasks) {
            assert_eq!(entry.id, task.id);
            assert_eq!(entry.site, task.site.name());
            assert_eq!(entry.actions, task.gold_trace.len());
            assert_eq!(entry.sop_steps, task.gold_sop.len());
        }
    }

    #[test]
    fn per_site_counts_add_up() {
        let c = corpus();
        let sum: usize = c.manifest.per_site.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, c.manifest.total_tasks);
        for (site, n) in &c.manifest.per_site {
            assert!(*n > 0, "site {site} contributed no tasks");
        }
    }
}

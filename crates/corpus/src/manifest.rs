//! The byte-reproducible corpus manifest.
//!
//! The manifest is the corpus's paper trail: which seed, which
//! templates, which parameter points, and what every generated task
//! looks like — without the action traces themselves (those live in the
//! `TaskSpec`s). Two `generate(seed)` calls must produce byte-identical
//! manifest JSON; CI diffs them.

use serde::{Deserialize, Serialize};

use crate::rng::fnv1a64;
use crate::template::Params;

/// One task's row in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestEntry {
    /// Task id (`{template}-{serial:03}-{digest:012x}` for generated
    /// tasks; the original id for handwritten ones).
    pub id: String,
    /// Template name, or `"handwritten"` for the seed suite.
    pub template: String,
    /// Site short name.
    pub site: String,
    /// The resolved parameter point (empty for handwritten tasks).
    pub params: Params,
    /// Natural-language intent.
    pub intent: String,
    /// Gold-trace length.
    pub actions: usize,
    /// Reference-SOP step count.
    pub sop_steps: usize,
    /// Number of probe assertions in the success predicate.
    pub probes: usize,
    /// URL fragment the predicate requires, when any.
    pub url_contains: Option<String>,
}

/// Per-template accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemplateSummary {
    /// Template name.
    pub name: String,
    /// Site short name.
    pub site: String,
    /// Instances requested.
    pub family: usize,
    /// Full parameter-space size.
    pub space: usize,
    /// Instances actually generated (`min(family, space)`).
    pub generated: usize,
}

/// The full corpus manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusManifest {
    /// Schema version — bump on shape changes; the legacy fixture test
    /// pins v1.
    pub version: u32,
    /// The master seed the corpus was generated from.
    pub master_seed: u64,
    /// Total task count (handwritten + generated).
    pub total_tasks: usize,
    /// Handwritten task count.
    pub handwritten: usize,
    /// Generated task count.
    pub generated: usize,
    /// `(site, count)` pairs in stable site order.
    pub per_site: Vec<(String, usize)>,
    /// Template accounting in generation order.
    pub templates: Vec<TemplateSummary>,
    /// One row per task, handwritten first, then generation order.
    pub entries: Vec<ManifestEntry>,
}

impl CorpusManifest {
    /// Canonical JSON encoding (stable field order via serde).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("manifest serializes")
    }

    /// FNV-1a digest of the canonical JSON — the corpus fingerprint
    /// benches and CI compare.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CorpusManifest {
        CorpusManifest {
            version: 1,
            master_seed: 99,
            total_tasks: 1,
            handwritten: 0,
            generated: 1,
            per_site: vec![("erp".into(), 1)],
            templates: vec![TemplateSummary {
                name: "t".into(),
                site: "erp".into(),
                family: 1,
                space: 4,
                generated: 1,
            }],
            entries: vec![ManifestEntry {
                id: "t-000-abc".into(),
                template: "t".into(),
                site: "erp".into(),
                params: Params(vec![("a".into(), "x".into())]),
                intent: "do the thing".into(),
                actions: 3,
                sop_steps: 3,
                probes: 1,
                url_contains: None,
            }],
        }
    }

    #[test]
    fn manifest_json_round_trips() {
        let m = sample();
        let back: CorpusManifest = serde_json::from_str(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn digest_tracks_content() {
        let m = sample();
        let mut m2 = m.clone();
        assert_eq!(m.digest(), m2.digest());
        m2.master_seed = 100;
        assert_ne!(m.digest(), m2.digest());
    }
}

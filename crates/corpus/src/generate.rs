//! The seeded corpus expander.
//!
//! `generate(master_seed)` compiles every registered [`TaskTemplate`]
//! into its sampled task family and prepends the 30 handwritten tasks,
//! producing a [`Corpus`]: the task list plus a byte-reproducible
//! manifest. Generation is a *pure function of the seed* — same seed,
//! byte-identical manifest — and every generated task is self-verified
//! on the spot: its gold trace is replayed on a pristine session and
//! must satisfy its own success predicate, or generation fails loudly.
//! The corpus is its own test suite.

use std::collections::HashSet;
use std::fmt;

use eclair_sites::task::TaskSpec;

use crate::manifest::{CorpusManifest, ManifestEntry, TemplateSummary};
use crate::rng::{derive_seed, fnv1a64, sample_indices, SplitMix64};
use crate::template::Params;
use crate::templates::all_templates;

/// Why generation failed. Every variant is a template-author bug, never
/// a runtime condition to tolerate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// A template declared an axis with no values.
    EmptyAxis { template: String, axis: String },
    /// A blueprint's SOP step count differs from its action count.
    SopMismatch {
        id: String,
        actions: usize,
        sop_steps: usize,
    },
    /// Two tasks minted the same id.
    DuplicateId { id: String },
    /// A gold trace failed to replay or missed its own predicate.
    SelfValidation { id: String, detail: String },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::EmptyAxis { template, axis } => {
                write!(f, "template '{template}': axis '{axis}' has no values")
            }
            CorpusError::SopMismatch {
                id,
                actions,
                sop_steps,
            } => write!(
                f,
                "{id}: SOP has {sop_steps} steps but the gold trace has {actions} actions"
            ),
            CorpusError::DuplicateId { id } => write!(f, "duplicate task id '{id}'"),
            CorpusError::SelfValidation { id, detail } => {
                write!(f, "{id}: gold-trace self-validation failed: {detail}")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// A generated corpus: every task plus its manifest.
pub struct Corpus {
    /// The seed it was generated from.
    pub master_seed: u64,
    /// Handwritten tasks first (stable order), then generated tasks in
    /// template registration order.
    pub tasks: Vec<TaskSpec>,
    /// The byte-reproducible paper trail.
    pub manifest: CorpusManifest,
}

impl Corpus {
    /// Tasks produced by templates (excludes the handwritten prefix).
    pub fn generated_tasks(&self) -> &[TaskSpec] {
        &self.tasks[self.manifest.handwritten..]
    }
}

fn entry_for(task: &TaskSpec, template: &str, params: Params) -> ManifestEntry {
    ManifestEntry {
        id: task.id.clone(),
        template: template.into(),
        site: task.site.name().into(),
        params,
        intent: task.intent.clone(),
        actions: task.gold_trace.len(),
        sop_steps: task.gold_sop.len(),
        probes: task.success.probes.len(),
        url_contains: task.success.url_contains.clone(),
    }
}

/// Generate the corpus for `master_seed`. See the module docs for the
/// guarantees; see [`CorpusError`] for the ways a template can be wrong.
pub fn generate(master_seed: u64) -> Result<Corpus, CorpusError> {
    let mut tasks = Vec::new();
    let mut entries = Vec::new();
    let mut summaries = Vec::new();
    let mut ids = HashSet::new();

    // Handwritten prefix: ids are seed-independent, order is the
    // canonical `all_tasks()` order (crucible's golden scenarios index
    // into this prefix, so it must never move).
    for task in eclair_sites::all_tasks() {
        if !ids.insert(task.id.clone()) {
            return Err(CorpusError::DuplicateId { id: task.id });
        }
        entries.push(entry_for(&task, "handwritten", Params(Vec::new())));
        tasks.push(task);
    }
    let handwritten = tasks.len();

    for template in all_templates() {
        for axis in &template.axes {
            if axis.values.is_empty() {
                return Err(CorpusError::EmptyAxis {
                    template: template.name.into(),
                    axis: axis.name.clone(),
                });
            }
        }
        let space = template.space();
        let mut rng = SplitMix64::new(derive_seed(master_seed, fnv1a64(template.name.as_bytes())));
        let picked = sample_indices(&mut rng, space, template.family);
        let generated = picked.len();
        for (serial, index) in picked.into_iter().enumerate() {
            let params = template.decode(index);
            let bp = (template.build)(&params);

            // Mint the id: template prefix for readability, serial for
            // stable ordering, seed+params digest for cross-seed
            // disjointness.
            let mut digest_input = master_seed.to_le_bytes().to_vec();
            digest_input.extend_from_slice(template.name.as_bytes());
            digest_input.push(0x1e);
            digest_input.extend_from_slice(&params.canonical_bytes());
            let digest = fnv1a64(&digest_input);
            let id = format!(
                "{}-{:03}-{:012x}",
                template.name,
                serial,
                digest & 0xffff_ffff_ffff
            );

            if bp.sop.len() != bp.actions.len() {
                return Err(CorpusError::SopMismatch {
                    id,
                    actions: bp.actions.len(),
                    sop_steps: bp.sop.len(),
                });
            }
            let sop_refs: Vec<&str> = bp.sop.iter().map(|s| s.as_str()).collect();
            let task = TaskSpec::new(
                &id,
                template.site,
                &bp.intent,
                bp.actions,
                &sop_refs,
                bp.success,
            );

            if !ids.insert(task.id.clone()) {
                return Err(CorpusError::DuplicateId { id: task.id });
            }
            task.verify_gold()
                .map_err(|detail| CorpusError::SelfValidation {
                    id: task.id.clone(),
                    detail,
                })?;
            entries.push(entry_for(&task, template.name, params));
            tasks.push(task);
        }
        summaries.push(TemplateSummary {
            name: template.name.into(),
            site: template.site.name().into(),
            family: template.family,
            space,
            generated,
        });
    }

    let per_site = eclair_sites::task::Site::ALL
        .iter()
        .map(|s| {
            (
                s.name().to_string(),
                tasks.iter().filter(|t| t.site == *s).count(),
            )
        })
        .collect();

    let manifest = CorpusManifest {
        version: 1,
        master_seed,
        total_tasks: tasks.len(),
        handwritten,
        generated: tasks.len() - handwritten,
        per_site,
        templates: summaries,
        entries,
    };
    Ok(Corpus {
        master_seed,
        tasks,
        manifest,
    })
}

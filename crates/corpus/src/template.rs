//! The declarative task-template DSL.
//!
//! A [`TaskTemplate`] describes a *family* of workflows: an intent
//! pattern, a parameter space (the cross-product of its [`ParamAxis`]es),
//! and a builder that turns one resolved [`Params`] point into a
//! [`Blueprint`] — the intent, gold action trace, reference SOP, and
//! success predicate the paper's evaluation needs per task. The seeded
//! expander in [`crate::generate`] samples points from the space and
//! compiles each into a concrete `TaskSpec`, self-verifying the gold
//! trace as it goes.

use eclair_sites::task::{Site, SuccessCheck};
use eclair_workflow::Action;
use serde::{Deserialize, Serialize};

/// One named parameter dimension. The template's space is the
/// cross-product of its axes, enumerated lexicographically (first axis
/// slowest), so an index below the space size decodes to exactly one
/// value combination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamAxis {
    /// Axis name, e.g. `"title"`. Unique within a template.
    pub name: String,
    /// The values this axis ranges over. Composite values (e.g.
    /// `"webapp:1:Checkout page times out"`) are fine — the builder
    /// splits them.
    pub values: Vec<String>,
}

impl ParamAxis {
    /// Build an axis from string slices.
    pub fn new(name: &str, values: &[&str]) -> Self {
        Self {
            name: name.into(),
            values: values.iter().map(|v| v.to_string()).collect(),
        }
    }

    /// Build an axis from owned values.
    pub fn from_owned(name: &str, values: Vec<String>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }
}

/// One resolved point of a template's parameter space: `(axis, value)`
/// pairs in axis order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Params(pub Vec<(String, String)>);

impl Params {
    /// Value of the named axis. Panics on a bad name — a template bug
    /// the self-validation sweep surfaces immediately.
    pub fn get(&self, name: &str) -> &str {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .unwrap_or_else(|| panic!("template asked for unknown axis '{name}'"))
    }

    /// Canonical byte encoding for hashing: `name=value` pairs joined
    /// with `\x1f` (axis order is fixed, so this is injective per
    /// template).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for (i, (n, v)) in self.0.iter().enumerate() {
            if i > 0 {
                out.push(0x1f);
            }
            out.extend_from_slice(n.as_bytes());
            out.push(b'=');
            out.extend_from_slice(v.as_bytes());
        }
        out
    }
}

/// What a template's builder produces for one parameter point: everything
/// `TaskSpec::new` needs except the id (the expander mints that).
#[derive(Debug, Clone)]
pub struct Blueprint {
    /// Natural-language workflow description.
    pub intent: String,
    /// Gold semantic action trace.
    pub actions: Vec<Action>,
    /// Reference SOP steps, phrased in the grammar `eclair-core`'s SOP
    /// parser understands ("Click the 'X' button", "Type \"v\" into the
    /// Y field", ...). Must be exactly one step per action.
    pub sop: Vec<String>,
    /// Functional success predicate.
    pub success: SuccessCheck,
}

/// A declarative family of workflows.
pub struct TaskTemplate {
    /// Unique template name, e.g. `"gitlab-create-issue"`. Task ids are
    /// prefixed with it.
    pub name: &'static str,
    /// The site every instance runs on.
    pub site: Site,
    /// How many instances to sample from the space (capped at the space
    /// size).
    pub family: usize,
    /// The parameter space.
    pub axes: Vec<ParamAxis>,
    /// Compile one parameter point into a blueprint.
    pub build: fn(&Params) -> Blueprint,
}

impl TaskTemplate {
    /// Size of the full parameter space (product of axis lengths).
    pub fn space(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Decode a lexicographic index into a parameter point (mixed-radix,
    /// first axis slowest).
    pub fn decode(&self, mut index: usize) -> Params {
        debug_assert!(index < self.space());
        let mut picks = vec![0usize; self.axes.len()];
        for (slot, axis) in self.axes.iter().enumerate().rev() {
            let n = axis.values.len();
            picks[slot] = index % n;
            index /= n;
        }
        Params(
            self.axes
                .iter()
                .zip(picks)
                .map(|(a, i)| (a.name.clone(), a.values[i].clone()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TaskTemplate {
        TaskTemplate {
            name: "toy",
            site: Site::Erp,
            family: 4,
            axes: vec![
                ParamAxis::new("a", &["x", "y"]),
                ParamAxis::new("b", &["1", "2", "3"]),
            ],
            build: |_| unreachable!("decode-only test"),
        }
    }

    #[test]
    fn space_is_axis_product() {
        assert_eq!(toy().space(), 6);
    }

    #[test]
    fn decode_is_lexicographic_and_total() {
        let t = toy();
        let points: Vec<Params> = (0..t.space()).map(|i| t.decode(i)).collect();
        assert_eq!(points[0].get("a"), "x");
        assert_eq!(points[0].get("b"), "1");
        assert_eq!(points[2].get("a"), "x");
        assert_eq!(points[2].get("b"), "3");
        assert_eq!(points[3].get("a"), "y");
        assert_eq!(points[3].get("b"), "1");
        // All points distinct.
        let mut keys: Vec<Vec<u8>> = points.iter().map(|p| p.canonical_bytes()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    #[should_panic(expected = "unknown axis")]
    fn unknown_axis_panics() {
        let t = toy();
        t.decode(0).get("missing");
    }
}

//! Magento-admin task families: catalog management and order fulfilment.

use eclair_sites::task::{Site, SuccessCheck};

use super::{click, parts, replace, type_into};
use crate::template::{Blueprint, ParamAxis, TaskTemplate};

/// The eight fixture products as `sku|Display name` composites.
const PRODUCTS: &[&str] = &[
    "24-WG082-blue|Sprite Stasis Ball 65 cm",
    "PG004|Quest Lumaflex Band",
    "PG005|Harmony Lumaflex Strength Kit",
    "24-UG06|Affirm Water Bottle",
    "24-UG07|Dual Handle Cardio Ball",
    "24-UG04|Zing Jump Rope",
    "24-WG088|Gauge Yoga Mat",
    "24-MB01|Pursuit Backpack",
];

/// Fixture orders that are still open (`id` composites; #1005 is
/// Complete and only gets comments).
const OPEN_ORDERS: &[&str] = &["1001", "1002", "1003", "1004"];

/// Build all Magento templates.
pub fn templates() -> Vec<TaskTemplate> {
    vec![
        TaskTemplate {
            name: "magento-add-product",
            site: Site::Magento,
            family: 24,
            axes: vec![
                ParamAxis::new(
                    "product",
                    &[
                        "Summit Trail Poles|24-TP01",
                        "Cascade Rain Shell|24-RS02",
                        "Meridian Running Cap|24-RC03",
                        "Atlas Climbing Chalk|24-CC04",
                        "Voyager Duffel 40L|24-DF05",
                        "Ember Insulated Mug|24-IM06",
                    ],
                ),
                ParamAxis::new("price", &["14.50", "32.00"]),
                ParamAxis::new("quantity", &["25", "120"]),
            ],
            build: |p| {
                let pr = parts(p.get("product"));
                let (name, sku) = (pr[0], pr[1]);
                let price = p.get("price");
                let quantity = p.get("quantity");
                Blueprint {
                    intent: format!(
                        "Add a product named '{name}' with SKU {sku} priced at ${price} with quantity {quantity}"
                    ),
                    actions: vec![
                        click("nav-products"),
                        click("add-product"),
                        type_into("name", name),
                        type_into("sku", sku),
                        type_into("price", price),
                        type_into("quantity", quantity),
                        click("save-product"),
                    ],
                    sop: vec![
                        "Click the 'Catalog' navigation link".into(),
                        "Click the 'Add product' button".into(),
                        format!("Type \"{name}\" into the Product name field"),
                        format!("Type \"{sku}\" into the SKU field"),
                        format!("Type \"{price}\" into the Price field"),
                        format!("Type \"{quantity}\" into the Quantity field"),
                        "Click the 'Save' button".into(),
                    ],
                    success: SuccessCheck::probes(&[
                        (&format!("product_exists:{sku}"), "true"),
                        (&format!("product_price:{sku}"), price),
                        (&format!("product_qty:{sku}"), quantity),
                    ]),
                }
            },
        },
        TaskTemplate {
            name: "magento-update-price",
            site: Site::Magento,
            family: 16,
            axes: vec![
                ParamAxis::new("product", PRODUCTS),
                ParamAxis::new("price", &["18.75", "41.20"]),
            ],
            build: |p| {
                let pr = parts(p.get("product"));
                let (sku, name) = (pr[0], pr[1]);
                let price = p.get("price");
                Blueprint {
                    intent: format!("Update the price of the {name} (SKU {sku}) to ${price}"),
                    actions: vec![
                        click("nav-products"),
                        click(&format!("edit-product-{sku}")),
                        replace("price", price),
                        click("update-product"),
                    ],
                    sop: vec![
                        "Click the 'Catalog' navigation link".into(),
                        format!("Click the '{name}' product link"),
                        format!("Set the Price field to \"{price}\""),
                        "Click the 'Save' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("product_price:{sku}"), price)]),
                }
            },
        },
        TaskTemplate {
            name: "magento-update-quantity",
            site: Site::Magento,
            family: 12,
            axes: vec![
                ParamAxis::new("product", PRODUCTS),
                ParamAxis::new("quantity", &["0", "8", "250"]),
            ],
            build: |p| {
                let pr = parts(p.get("product"));
                let (sku, name) = (pr[0], pr[1]);
                let quantity = p.get("quantity");
                Blueprint {
                    intent: format!(
                        "Update the stock quantity of the {name} (SKU {sku}) to {quantity}"
                    ),
                    actions: vec![
                        click("nav-products"),
                        click(&format!("edit-product-{sku}")),
                        replace("quantity", quantity),
                        click("update-product"),
                    ],
                    sop: vec![
                        "Click the 'Catalog' navigation link".into(),
                        format!("Click the '{name}' product link"),
                        format!("Set the Quantity field to \"{quantity}\""),
                        "Click the 'Save' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("product_qty:{sku}"), quantity)]),
                }
            },
        },
        TaskTemplate {
            name: "magento-set-status",
            site: Site::Magento,
            family: 8,
            axes: vec![
                ParamAxis::new("product", PRODUCTS),
                ParamAxis::new("status", &["Disabled", "Enabled"]),
            ],
            build: |p| {
                let pr = parts(p.get("product"));
                let (sku, name) = (pr[0], pr[1]);
                let status = p.get("status");
                let verb = if status == "Disabled" {
                    "Disable"
                } else {
                    "Enable"
                };
                Blueprint {
                    intent: format!("{verb} the {name} product (SKU {sku})"),
                    actions: vec![
                        click("nav-products"),
                        click(&format!("edit-product-{sku}")),
                        type_into("status", status),
                        click("update-product"),
                    ],
                    sop: vec![
                        "Click the 'Catalog' navigation link".into(),
                        format!("Click the '{name}' product link"),
                        format!("Select '{status}' from the Enable product dropdown"),
                        "Click the 'Save' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("product_status:{sku}"), status)]),
                }
            },
        },
        TaskTemplate {
            name: "magento-ship-order",
            site: Site::Magento,
            family: 4,
            axes: vec![ParamAxis::new("order", OPEN_ORDERS)],
            build: |p| {
                let order = p.get("order");
                Blueprint {
                    intent: format!("Create a shipment for order #{order}"),
                    actions: vec![
                        click("nav-orders"),
                        click(&format!("open-order-{order}")),
                        click("ship-order"),
                    ],
                    sop: vec![
                        "Click the 'Orders' navigation link".into(),
                        format!("Click the '#{order}' order link"),
                        "Click the 'Ship' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("order_status:{order}"), "Shipped")]),
                }
            },
        },
        TaskTemplate {
            name: "magento-cancel-order",
            site: Site::Magento,
            family: 4,
            axes: vec![ParamAxis::new("order", OPEN_ORDERS)],
            build: |p| {
                let order = p.get("order");
                Blueprint {
                    intent: format!("Cancel the open order number {order}"),
                    actions: vec![
                        click("nav-orders"),
                        click(&format!("open-order-{order}")),
                        click("cancel-order"),
                        click("confirm-cancel"),
                    ],
                    sop: vec![
                        "Click the 'Orders' navigation link".into(),
                        format!("Click the '#{order}' order link"),
                        "Click the 'Cancel order' button".into(),
                        "Click 'OK' to confirm".into(),
                    ],
                    success: SuccessCheck::probes(&[(
                        &format!("order_status:{order}"),
                        "Canceled",
                    )]),
                }
            },
        },
        TaskTemplate {
            name: "magento-comment-order",
            site: Site::Magento,
            family: 12,
            axes: vec![
                ParamAxis::new("order", &["1001", "1002", "1003", "1004", "1005"]),
                ParamAxis::new(
                    "comment",
                    &[
                        "Customer requested a delivery window",
                        "Address verified with the carrier",
                        "Flagged for fraud review and cleared",
                    ],
                ),
            ],
            build: |p| {
                let order = p.get("order");
                let comment = p.get("comment");
                Blueprint {
                    intent: format!("Add the comment '{comment}' to order #{order}"),
                    actions: vec![
                        click("nav-orders"),
                        click(&format!("open-order-{order}")),
                        type_into("order-comment", comment),
                        click("submit-comment"),
                    ],
                    sop: vec![
                        "Click the 'Orders' navigation link".into(),
                        format!("Click the '#{order}' order link"),
                        format!("Type \"{comment}\" into the Comment field"),
                        "Click the 'Submit comment' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("order_comments:{order}"), comment)]),
                }
            },
        },
        TaskTemplate {
            name: "magento-rename-product",
            site: Site::Magento,
            family: 8,
            axes: vec![ParamAxis::new("product", PRODUCTS)],
            build: |p| {
                let pr = parts(p.get("product"));
                let (sku, name) = (pr[0], pr[1]);
                let new_name = format!("{name} (2025 Edition)");
                Blueprint {
                    intent: format!("Rename the product '{name}' (SKU {sku}) to '{new_name}'"),
                    actions: vec![
                        click("nav-products"),
                        click(&format!("edit-product-{sku}")),
                        replace("name", &new_name),
                        click("update-product"),
                    ],
                    sop: vec![
                        "Click the 'Catalog' navigation link".into(),
                        format!("Click the '{name}' product link"),
                        format!("Set the Product name field to \"{new_name}\""),
                        "Click the 'Save' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("product_name:{sku}"), &new_name)]),
                }
            },
        },
    ]
}

//! Payer-portal task families: the §3.1 eligibility-verification
//! workflow swept across the member roster, plus its two failure-path
//! variants (no date of birth, unknown member) — exactly the edge cases
//! hospital staff hit when "constant changes to payers' websites" break
//! scripted bots.

use eclair_sites::task::{Site, SuccessCheck};

use super::{click, parts, type_into};
use crate::template::{Blueprint, ParamAxis, TaskTemplate};

/// Fixture members as `member id|dob|payer|expected outcome` composites.
const MEMBERS: &[&str] = &[
    "M10001|1984-03-12|BlueCross|eligible",
    "M10002|1951-11-02|BlueCross|eligible",
    "M10003|1990-07-23|Aetna|ineligible",
    "M10004|1978-01-30|Cigna|eligible",
    "M10005|2001-05-17|Aetna|eligible",
    "M10006|1969-09-09|Cigna|ineligible",
];

/// Build all payer templates.
pub fn templates() -> Vec<TaskTemplate> {
    vec![
        TaskTemplate {
            name: "payer-verify-eligibility",
            site: Site::Payer,
            family: 6,
            axes: vec![ParamAxis::new("member", MEMBERS)],
            build: |p| {
                let m = parts(p.get("member"));
                let (member, dob, payer, outcome) = (m[0], m[1], m[2], m[3]);
                Blueprint {
                    intent: format!("Verify insurance eligibility for member {member}"),
                    actions: vec![
                        type_into("member-id", member),
                        type_into("dob", dob),
                        type_into("payer", payer),
                        click("check-eligibility"),
                    ],
                    sop: vec![
                        format!("Type \"{member}\" into the Member ID field"),
                        format!("Type \"{dob}\" into the Date of birth field"),
                        format!("Select '{payer}' from the Payer dropdown"),
                        "Click the 'Check eligibility' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("last_check:{member}"), outcome)])
                        .with_url("/payer/eligibility/result"),
                }
            },
        },
        TaskTemplate {
            name: "payer-quick-check",
            site: Site::Payer,
            family: 6,
            axes: vec![ParamAxis::new("member", MEMBERS)],
            build: |p| {
                let m = parts(p.get("member"));
                let (member, outcome) = (m[0], m[3]);
                Blueprint {
                    intent: format!(
                        "Run a quick eligibility check for member {member} by ID alone"
                    ),
                    actions: vec![type_into("member-id", member), click("check-eligibility")],
                    sop: vec![
                        format!("Type \"{member}\" into the Member ID field"),
                        "Click the 'Check eligibility' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("last_check:{member}"), outcome)])
                        .with_url("/payer/eligibility/result"),
                }
            },
        },
        TaskTemplate {
            name: "payer-unknown-member",
            site: Site::Payer,
            family: 4,
            axes: vec![ParamAxis::new(
                "member",
                &["M99901", "M99902", "M99903", "M99904"],
            )],
            build: |p| {
                let member = p.get("member");
                Blueprint {
                    intent: format!(
                        "Check eligibility for unknown member {member} and record the no-match"
                    ),
                    actions: vec![
                        type_into("member-id", member),
                        type_into("dob", "1970-01-01"),
                        click("check-eligibility"),
                    ],
                    sop: vec![
                        format!("Type \"{member}\" into the Member ID field"),
                        "Type \"1970-01-01\" into the Date of birth field".into(),
                        "Click the 'Check eligibility' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(
                        &format!("last_check:{member}"),
                        "not_found",
                    )])
                    .with_url("/payer/eligibility/result"),
                }
            },
        },
    ]
}

//! EHR task families: the paper's hospital workflows at corpus scale —
//! patient lookup, medication reconciliation, and prior-auth
//! documentation, swept across the full census.

use eclair_sites::fixtures;
use eclair_sites::task::{Site, SuccessCheck};

use super::{click, parts, type_into};
use crate::template::{Blueprint, ParamAxis, TaskTemplate};

/// `MRN|Name` composites for the census.
fn patient_axis() -> ParamAxis {
    ParamAxis::from_owned(
        "patient",
        fixtures::PATIENTS
            .iter()
            .map(|&(mrn, name, _, payer, _)| format!("{mrn}|{name}|{payer}"))
            .collect(),
    )
}

/// `MRN|Drug` composites for every medication row.
fn med_axis() -> ParamAxis {
    ParamAxis::from_owned(
        "med",
        fixtures::PATIENT_MEDS
            .iter()
            .map(|&(mrn, drug, _)| format!("{mrn}|{drug}"))
            .collect(),
    )
}

/// The ICD-10 code the documentation templates pair with each
/// prior-auth procedure.
fn dx_for(code: &str) -> &'static str {
    match code {
        "MRI-70551" => "G43.909",
        "CT-74177" => "R10.9",
        "PT-97110" => "M54.50",
        "ECHO-93306" => "I50.9",
        "SLP-92507" => "R47.02",
        "DME-E0601" => "G47.33",
        other => panic!("no dx mapping for procedure {other}"),
    }
}

/// Build all EHR templates.
pub fn templates() -> Vec<TaskTemplate> {
    vec![
        TaskTemplate {
            name: "ehr-patient-lookup",
            site: Site::Ehr,
            family: 8,
            axes: vec![patient_axis()],
            build: |p| {
                let pt = parts(p.get("patient"));
                let (mrn, name) = (pt[0], pt[1]);
                Blueprint {
                    intent: format!("Look up the chart for patient {name} ({mrn})"),
                    actions: vec![type_into("patient-search", mrn), click("open-chart")],
                    sop: vec![
                        format!("Type \"{mrn}\" into the Patient search field"),
                        "Click the 'Open chart' button".into(),
                    ],
                    success: SuccessCheck::probes(&[("last_lookup", mrn)])
                        .with_url(&format!("/ehr/patients/{mrn}")),
                }
            },
        },
        TaskTemplate {
            name: "ehr-review-medication",
            site: Site::Ehr,
            family: 18,
            axes: vec![med_axis()],
            build: |p| {
                let m = parts(p.get("med"));
                let (mrn, drug) = (m[0], m[1]);
                let slug = drug.to_lowercase();
                Blueprint {
                    intent: format!(
                        "Mark {drug} as reviewed on the medication list of patient {mrn}"
                    ),
                    actions: vec![
                        click(&format!("open-patient-{mrn}")),
                        click("tab-meds"),
                        click(&format!("review-med-{slug}")),
                    ],
                    sop: vec![
                        format!("Click the '{mrn}' link"),
                        "Click the 'Medications' tab".into(),
                        format!("Click the 'Review {drug}' button"),
                    ],
                    success: SuccessCheck::probes(&[(
                        &format!("med_status:{mrn}:{drug}"),
                        "reviewed",
                    )]),
                }
            },
        },
        TaskTemplate {
            name: "ehr-discontinue-medication",
            site: Site::Ehr,
            family: 12,
            axes: vec![med_axis()],
            build: |p| {
                let m = parts(p.get("med"));
                let (mrn, drug) = (m[0], m[1]);
                let slug = drug.to_lowercase();
                Blueprint {
                    intent: format!("Discontinue {drug} on the medication list of patient {mrn}"),
                    actions: vec![
                        click(&format!("open-patient-{mrn}")),
                        click("tab-meds"),
                        click(&format!("stop-med-{slug}")),
                    ],
                    sop: vec![
                        format!("Click the '{mrn}' link"),
                        "Click the 'Medications' tab".into(),
                        format!("Click the 'Stop {drug}' button"),
                    ],
                    success: SuccessCheck::probes(&[(
                        &format!("med_status:{mrn}:{drug}"),
                        "discontinued",
                    )]),
                }
            },
        },
        TaskTemplate {
            name: "ehr-reconcile-medications",
            site: Site::Ehr,
            family: 8,
            axes: vec![patient_axis()],
            build: |p| {
                let pt = parts(p.get("patient"));
                let (mrn, name) = (pt[0], pt[1]);
                let mut actions = vec![click(&format!("open-patient-{mrn}")), click("tab-meds")];
                let mut sop = vec![
                    format!("Click the '{mrn}' link"),
                    "Click the 'Medications' tab".into(),
                ];
                // Review every medication on this patient's list, then
                // attest — the app refuses the attestation while any
                // entry is still unreviewed.
                for &(m_mrn, drug, _) in fixtures::PATIENT_MEDS {
                    if m_mrn == mrn {
                        actions.push(click(&format!("review-med-{}", drug.to_lowercase())));
                        sop.push(format!("Click the 'Review {drug}' button"));
                    }
                }
                actions.push(click("complete-recon"));
                sop.push("Click the 'Attest reconciliation complete' button".into());
                Blueprint {
                    intent: format!(
                        "Complete medication reconciliation for patient {name} ({mrn})"
                    ),
                    actions,
                    sop,
                    success: SuccessCheck::probes(&[(&format!("recon_complete:{mrn}"), "true")]),
                }
            },
        },
        TaskTemplate {
            name: "ehr-prior-auth",
            site: Site::Ehr,
            family: 36,
            axes: vec![
                patient_axis(),
                ParamAxis::from_owned(
                    "procedure",
                    fixtures::PROCEDURES
                        .iter()
                        .map(|&(code, desc)| format!("{code}|{desc}"))
                        .collect(),
                ),
            ],
            build: |p| {
                let pt = parts(p.get("patient"));
                let (mrn, name, payer) = (pt[0], pt[1], pt[2]);
                let pr = parts(p.get("procedure"));
                let (code, desc) = (pr[0], pr[1]);
                let dx = dx_for(code);
                let justification =
                    format!("{desc} is medically necessary; conservative measures exhausted.");
                Blueprint {
                    intent: format!(
                        "File a prior authorization for {desc} ({code}) for patient {name} ({mrn})"
                    ),
                    actions: vec![
                        click(&format!("open-patient-{mrn}")),
                        click("tab-prior-auth"),
                        type_into("procedure", code),
                        type_into("dx-code", dx),
                        type_into("justification", &justification),
                        click("submit-auth"),
                    ],
                    sop: vec![
                        format!("Click the '{mrn}' link"),
                        "Click the 'Prior auth' tab".into(),
                        format!("Select '{code}' from the Procedure dropdown"),
                        format!("Type \"{dx}\" into the Diagnosis code field"),
                        format!("Type \"{justification}\" into the Clinical justification field"),
                        "Click the 'Submit authorization' button".into(),
                    ],
                    success: SuccessCheck::probes(&[
                        (&format!("auth_exists:{mrn}:{code}"), "true"),
                        (&format!("auth_payer:{mrn}:{code}"), payer),
                        (&format!("auth_priority:{mrn}:{code}"), "routine"),
                    ])
                    .with_url("/ehr/authorizations"),
                }
            },
        },
        TaskTemplate {
            name: "ehr-prior-auth-urgent",
            site: Site::Ehr,
            family: 12,
            axes: vec![
                patient_axis(),
                ParamAxis::new(
                    "procedure",
                    &[
                        "MRI-70551|MRI brain without contrast",
                        "CT-74177|CT abdomen/pelvis with contrast",
                        "ECHO-93306|Transthoracic echocardiogram",
                    ],
                ),
            ],
            build: |p| {
                let pt = parts(p.get("patient"));
                let (mrn, name) = (pt[0], pt[1]);
                let pr = parts(p.get("procedure"));
                let (code, desc) = (pr[0], pr[1]);
                let dx = dx_for(code);
                let justification = format!("{desc} required urgently; symptoms are acute.");
                Blueprint {
                    intent: format!(
                        "File an expedited prior authorization for {desc} ({code}) for patient {name} ({mrn})"
                    ),
                    actions: vec![
                        click(&format!("open-patient-{mrn}")),
                        click("tab-prior-auth"),
                        type_into("procedure", code),
                        type_into("dx-code", dx),
                        type_into("justification", &justification),
                        click("urgent"),
                        click("submit-auth"),
                    ],
                    sop: vec![
                        format!("Click the '{mrn}' link"),
                        "Click the 'Prior auth' tab".into(),
                        format!("Select '{code}' from the Procedure dropdown"),
                        format!("Type \"{dx}\" into the Diagnosis code field"),
                        format!("Type \"{justification}\" into the Clinical justification field"),
                        "Check the 'Expedite (clinically urgent)' checkbox".into(),
                        "Click the 'Submit authorization' button".into(),
                    ],
                    success: SuccessCheck::probes(&[
                        (&format!("auth_exists:{mrn}:{code}"), "true"),
                        (&format!("auth_priority:{mrn}:{code}"), "urgent"),
                    ])
                    .with_url("/ehr/authorizations"),
                }
            },
        },
    ]
}

//! GitLab task families: issue lifecycle, membership, project settings.
//!
//! Composite axis values pack the fixture facts a builder needs
//! (`"slug|Display name"`, `"slug|id|title|labels"`) so every template
//! stays a pure function of its parameter point.

use eclair_sites::task::{Site, SuccessCheck};

use super::{click, parts, type_into};
use crate::template::{Blueprint, ParamAxis, TaskTemplate};

/// The three fixture projects as `slug|Display` composites.
const PROJECTS: &[&str] = &["webapp|WebApp", "docs|Docs", "data-pipeline|Data Pipeline"];

/// Open fixture issues as `slug|Display|issue id|title|labels` composites
/// (labels comma-joined, matching the `issue_labels` probe).
const ISSUES: &[&str] = &[
    "webapp|WebApp|1|Checkout page times out|bug",
    "webapp|WebApp|2|Add dark mode|feature",
    "docs|Docs|1|Broken link on install page|docs",
];

/// Users who are members of *no* fixture project (safe to invite anywhere).
const INVITEES: &[&str] = &[
    "abishek",
    "dferrante",
    "grace.hall",
    "hazy.r",
    "ivan.petrov",
    "jill.woo",
];

/// Build all GitLab templates.
pub fn templates() -> Vec<TaskTemplate> {
    vec![
        TaskTemplate {
            name: "gitlab-create-issue",
            site: Site::Gitlab,
            family: 48,
            axes: vec![
                ParamAxis::new("project", PROJECTS),
                ParamAxis::new(
                    "title",
                    &[
                        "Search results ignore date filter",
                        "Export to CSV drops header row",
                        "Session cookie not renewed on SSO",
                        "Pagination breaks past page 40",
                        "Add keyboard shortcuts reference",
                        "Upgrade CI runners to v3",
                        "Document the webhook retry policy",
                        "Audit stale feature flags",
                    ],
                ),
                ParamAxis::new("label", &["bug", "feature"]),
            ],
            build: |p| {
                let pr = parts(p.get("project"));
                let (slug, display) = (pr[0], pr[1]);
                let title = p.get("title");
                let label = p.get("label");
                let description = format!("Filed during the {label} triage sweep.");
                Blueprint {
                    intent: format!(
                        "Create an issue titled '{title}' with label {label} in the {display} project"
                    ),
                    actions: vec![
                        click(&format!("open-project-{slug}")),
                        click("tab-issues"),
                        click("new-issue"),
                        type_into("title", title),
                        type_into("description", &description),
                        type_into("label", label),
                        click("create-issue"),
                    ],
                    sop: vec![
                        format!("Click the '{display}' project link"),
                        "Click the 'Issues' tab".into(),
                        "Click the 'New issue' button".into(),
                        format!("Type \"{title}\" into the Title field"),
                        format!("Type \"{description}\" into the Description field"),
                        format!("Select '{label}' from the Label dropdown"),
                        "Click the 'Create issue' button".into(),
                    ],
                    success: SuccessCheck::probes(&[
                        (&format!("issue_exists:{slug}:{title}"), "true"),
                        (&format!("issue_labels:{slug}:{title}"), label),
                    ]),
                }
            },
        },
        TaskTemplate {
            name: "gitlab-close-issue",
            site: Site::Gitlab,
            family: 3,
            axes: vec![ParamAxis::new("issue", ISSUES)],
            build: |p| {
                let i = parts(p.get("issue"));
                let (slug, display, id, title) = (i[0], i[1], i[2], i[3]);
                Blueprint {
                    intent: format!("Close the issue '{title}' in the {display} project"),
                    actions: vec![
                        click(&format!("open-project-{slug}")),
                        click("tab-issues"),
                        click(&format!("open-issue-{id}")),
                        click("close-issue"),
                    ],
                    sop: vec![
                        format!("Click the '{display}' project link"),
                        "Click the 'Issues' tab".into(),
                        format!("Click the '{title}' issue link"),
                        "Click the 'Close issue' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(
                        &format!("issue_state:{slug}:{title}"),
                        "closed",
                    )]),
                }
            },
        },
        TaskTemplate {
            name: "gitlab-comment-issue",
            site: Site::Gitlab,
            family: 15,
            axes: vec![
                ParamAxis::new("issue", ISSUES),
                ParamAxis::new(
                    "comment",
                    &[
                        "Reproduced on the staging cluster",
                        "Escalating to the on-call rotation",
                        "Waiting on the vendor's fix",
                        "Linked the incident postmortem",
                        "Scheduled for the next sprint",
                    ],
                ),
            ],
            build: |p| {
                let i = parts(p.get("issue"));
                let (slug, display, id, title) = (i[0], i[1], i[2], i[3]);
                let comment = p.get("comment");
                Blueprint {
                    intent: format!(
                        "Comment '{comment}' on the issue '{title}' in the {display} project"
                    ),
                    actions: vec![
                        click(&format!("open-project-{slug}")),
                        click("tab-issues"),
                        click(&format!("open-issue-{id}")),
                        type_into("comment", comment),
                        click("add-comment"),
                    ],
                    sop: vec![
                        format!("Click the '{display}' project link"),
                        "Click the 'Issues' tab".into(),
                        format!("Click the '{title}' issue link"),
                        format!("Type \"{comment}\" into the Comment field"),
                        "Click the 'Comment' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(
                        &format!("issue_comments:{slug}:{title}"),
                        comment,
                    )]),
                }
            },
        },
        TaskTemplate {
            name: "gitlab-add-label",
            site: Site::Gitlab,
            family: 18,
            axes: vec![
                ParamAxis::new("issue", ISSUES),
                ParamAxis::new(
                    "label",
                    &["bug", "feature", "docs", "help wanted", "urgent", "backend"],
                ),
            ],
            build: |p| {
                let i = parts(p.get("issue"));
                let (slug, display, id, title, existing) = (i[0], i[1], i[2], i[3], i[4]);
                let label = p.get("label");
                // The app appends only if absent, so the expected join is
                // the existing labels plus the new one (or unchanged).
                let expected = if existing.split(',').any(|l| l == label) {
                    existing.to_string()
                } else {
                    format!("{existing},{label}")
                };
                Blueprint {
                    intent: format!(
                        "Add the label '{label}' to the issue '{title}' in the {display} project"
                    ),
                    actions: vec![
                        click(&format!("open-project-{slug}")),
                        click("tab-issues"),
                        click(&format!("open-issue-{id}")),
                        type_into("add-label-select", label),
                        click("add-label"),
                    ],
                    sop: vec![
                        format!("Click the '{display}' project link"),
                        "Click the 'Issues' tab".into(),
                        format!("Click the '{title}' issue link"),
                        format!("Select '{label}' from the label dropdown"),
                        "Click the 'Add label' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(
                        &format!("issue_labels:{slug}:{title}"),
                        &expected,
                    )]),
                }
            },
        },
        TaskTemplate {
            name: "gitlab-invite-member",
            site: Site::Gitlab,
            family: 24,
            axes: vec![
                ParamAxis::new("project", PROJECTS),
                ParamAxis::new("user", INVITEES),
                ParamAxis::new("role", &["Guest", "Reporter", "Developer", "Maintainer"]),
            ],
            build: |p| {
                let pr = parts(p.get("project"));
                let (slug, display) = (pr[0], pr[1]);
                let user = p.get("user");
                let role = p.get("role");
                Blueprint {
                    intent: format!("Invite {user} to the {display} project as a {role}"),
                    actions: vec![
                        click(&format!("open-project-{slug}")),
                        click("tab-members"),
                        type_into("invite-username", user),
                        type_into("invite-role", role),
                        click("invite-member"),
                    ],
                    sop: vec![
                        format!("Click the '{display}' project link"),
                        "Click the 'Members' tab".into(),
                        format!("Type \"{user}\" into the Username field"),
                        format!("Select '{role}' from the role dropdown"),
                        "Click the 'Invite member' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("member_role:{slug}:{user}"), role)]),
                }
            },
        },
        TaskTemplate {
            name: "gitlab-set-visibility",
            site: Site::Gitlab,
            family: 9,
            axes: vec![
                ParamAxis::new("project", PROJECTS),
                ParamAxis::new("visibility", &["private", "internal", "public"]),
            ],
            build: |p| {
                let pr = parts(p.get("project"));
                let (slug, display) = (pr[0], pr[1]);
                let visibility = p.get("visibility");
                Blueprint {
                    intent: format!(
                        "Change the visibility of the {display} project to {visibility}"
                    ),
                    actions: vec![
                        click(&format!("open-project-{slug}")),
                        click("tab-settings"),
                        type_into("visibility", visibility),
                        click("save-settings"),
                    ],
                    sop: vec![
                        format!("Click the '{display}' project link"),
                        "Click the 'Settings' tab".into(),
                        format!("Select '{visibility}' from the Visibility dropdown"),
                        "Click the 'Save changes' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(
                        &format!("project_visibility:{slug}"),
                        visibility,
                    )]),
                }
            },
        },
        TaskTemplate {
            name: "gitlab-rename-issue",
            site: Site::Gitlab,
            family: 9,
            axes: vec![
                ParamAxis::new("issue", ISSUES),
                ParamAxis::new(
                    "new_title",
                    &[
                        "Triage follow-up after release 2.4",
                        "Regression confirmed in production",
                        "Needs design review before fix",
                    ],
                ),
            ],
            build: |p| {
                let i = parts(p.get("issue"));
                let (slug, display, id, title) = (i[0], i[1], i[2], i[3]);
                let new_title = p.get("new_title");
                Blueprint {
                    intent: format!(
                        "Rename the issue '{title}' in the {display} project to '{new_title}'"
                    ),
                    actions: vec![
                        click(&format!("open-project-{slug}")),
                        click("tab-issues"),
                        click(&format!("open-issue-{id}")),
                        type_into("new-title", new_title),
                        click("save-title"),
                    ],
                    sop: vec![
                        format!("Click the '{display}' project link"),
                        "Click the 'Issues' tab".into(),
                        format!("Click the '{title}' issue link"),
                        format!("Type \"{new_title}\" into the New title field"),
                        "Click the 'Save title' button".into(),
                    ],
                    success: SuccessCheck::probes(&[
                        (&format!("issue_exists:{slug}:{new_title}"), "true"),
                        (&format!("issue_exists:{slug}:{title}"), "false"),
                    ]),
                }
            },
        },
        TaskTemplate {
            name: "gitlab-profile-status",
            site: Site::Gitlab,
            family: 8,
            axes: vec![ParamAxis::new(
                "status",
                &[
                    "Working remotely",
                    "On call this week",
                    "In sprint planning",
                    "Out until Thursday",
                    "Reviewing merge requests",
                    "Pairing all afternoon",
                    "At the offsite",
                    "Focus time — async only",
                ],
            )],
            build: |p| {
                let status = p.get("status");
                Blueprint {
                    intent: format!("Set your profile status message to '{status}'"),
                    actions: vec![
                        click("nav-profile"),
                        type_into("status-message", status),
                        click("update-profile"),
                    ],
                    sop: vec![
                        "Click the 'Profile' navigation link".into(),
                        format!("Type \"{status}\" into the Status message field"),
                        "Click the 'Update profile' button".into(),
                    ],
                    success: SuccessCheck::probes(&[("profile_status", status)]),
                }
            },
        },
    ]
}

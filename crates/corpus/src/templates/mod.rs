//! The template registry: every site's task families.
//!
//! Each site module exports `templates()`; [`all_templates`] concatenates
//! them in stable site order. The expander walks this list, so adding a
//! template here is all it takes to grow the corpus.

pub mod ehr;
pub mod erp;
pub mod gitlab;
pub mod magento;
pub mod payer;

use eclair_workflow::{Action, TargetRef};

use crate::template::TaskTemplate;

/// Shorthand: click the widget with programmatic name `n`.
pub(crate) fn click(n: &str) -> Action {
    Action::Click(TargetRef::Name(n.into()))
}

/// Shorthand: focus the named widget and type.
pub(crate) fn type_into(n: &str, text: &str) -> Action {
    Action::Type {
        target: Some(TargetRef::Name(n.into())),
        text: text.into(),
    }
}

/// Shorthand: clear the named widget and type a fresh value.
pub(crate) fn replace(n: &str, text: &str) -> Action {
    Action::Replace {
        target: TargetRef::Name(n.into()),
        text: text.into(),
    }
}

/// Split a composite axis value on `|` into its parts.
pub(crate) fn parts(value: &str) -> Vec<&str> {
    value.split('|').collect()
}

/// Every registered template, in stable order (gitlab, magento, erp,
/// payer, ehr — matching `Site::ALL`).
pub fn all_templates() -> Vec<TaskTemplate> {
    let mut t = gitlab::templates();
    t.extend(magento::templates());
    t.extend(erp::templates());
    t.extend(payer::templates());
    t.extend(ehr::templates());
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_names_are_unique_and_prefixed_by_site() {
        let templates = all_templates();
        let mut names: Vec<&str> = templates.iter().map(|t| t.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), templates.len());
        for t in &templates {
            assert!(
                t.name.starts_with(t.site.name()),
                "{} should be prefixed with {}",
                t.name,
                t.site.name()
            );
            assert!(t.family > 0, "{} has an empty family", t.name);
            assert!(t.space() > 0, "{} has an empty space", t.name);
        }
    }

    #[test]
    fn families_sum_past_three_hundred_with_handwritten() {
        let generated: usize = all_templates()
            .iter()
            .map(|t| t.family.min(t.space()))
            .sum();
        assert!(
            generated + 30 >= 300,
            "corpus too small: {generated} generated + 30 handwritten"
        );
    }
}

//! ERP task families: the §3.2 B2B invoice-processing case study at
//! corpus scale — contract ingestion, inbox triage, and manual entry.

use eclair_sites::task::{Site, SuccessCheck};

use super::{click, parts, type_into};
use crate::rng::fnv1a64;
use crate::template::{Blueprint, ParamAxis, TaskTemplate};

/// Fixture contracts as `doc id|customer|amount|date|po` composites.
const CONTRACTS: &[&str] = &[
    "DOC-301|Acme Corp|48000|2024-02-01|PO-7741",
    "DOC-302|Globex LLC|12500|2024-02-03|PO-7742",
    "DOC-303|Initech|6250|2024-02-07|PO-7743",
    "DOC-304|Umbrella Health|18900|2024-02-11|PO-7744",
    "DOC-305|Stark Industries|96000|2024-02-12|PO-7745",
    "DOC-306|Wayne Enterprises|22400|2024-02-15|PO-7746",
];

/// Customers on the ERP invoice form's dropdown.
const CUSTOMERS: &[&str] = &[
    "Acme Corp",
    "Globex LLC",
    "Initech",
    "Umbrella Health",
    "Stark Industries",
    "Wayne Enterprises",
];

/// Build all ERP templates.
pub fn templates() -> Vec<TaskTemplate> {
    vec![
        TaskTemplate {
            name: "erp-contract-invoice",
            site: Site::Erp,
            family: 6,
            axes: vec![ParamAxis::new("contract", CONTRACTS)],
            build: |p| {
                let c = parts(p.get("contract"));
                let (id, customer, amount, date, po) = (c[0], c[1], c[2], c[3], c[4]);
                let expected_amount =
                    format!("{:.2}", amount.parse::<f64>().expect("fixture amount"));
                Blueprint {
                    intent: format!("Ingest contract {id} into the invoice system of record"),
                    actions: vec![
                        click(&format!("open-doc-{id}")),
                        click("enter-invoice"),
                        type_into("customer", customer),
                        type_into("amount", amount),
                        type_into("date", date),
                        type_into("po", po),
                        click("save-invoice"),
                    ],
                    sop: vec![
                        format!("Open document '{id}' from the contract inbox"),
                        "Click the 'Enter invoice' button".into(),
                        format!("Select '{customer}' from the Customer dropdown"),
                        format!("Type \"{amount}\" into the Amount field"),
                        format!("Type \"{date}\" into the Invoice date field"),
                        format!("Type \"{po}\" into the PO number field"),
                        "Click the 'Save invoice' button".into(),
                    ],
                    success: SuccessCheck::probes(&[
                        (&format!("invoice_customer:{po}"), customer),
                        (&format!("invoice_amount:{po}"), &expected_amount),
                    ])
                    .with_url("/erp/invoices"),
                }
            },
        },
        TaskTemplate {
            name: "erp-mark-processed",
            site: Site::Erp,
            family: 6,
            axes: vec![ParamAxis::new(
                "doc",
                &[
                    "DOC-301", "DOC-302", "DOC-303", "DOC-304", "DOC-305", "DOC-306",
                ],
            )],
            build: |p| {
                let doc = p.get("doc");
                Blueprint {
                    intent: format!(
                        "Mark the contract document {doc} as processed in the ERP inbox"
                    ),
                    actions: vec![click(&format!("open-doc-{doc}")), click("mark-processed")],
                    sop: vec![
                        format!("Open document '{doc}' from the contract inbox"),
                        "Click the 'Mark processed' button".into(),
                    ],
                    success: SuccessCheck::probes(&[(&format!("doc_processed:{doc}"), "true")]),
                }
            },
        },
        TaskTemplate {
            name: "erp-manual-invoice",
            site: Site::Erp,
            family: 10,
            axes: vec![
                ParamAxis::new("customer", CUSTOMERS),
                ParamAxis::new("amount", &["3750", "15250"]),
            ],
            build: |p| {
                let customer = p.get("customer");
                let amount = p.get("amount");
                // A deterministic PO outside the fixture range (PO-77xx),
                // derived from the parameter point so the same point
                // always books against the same PO.
                let po = format!(
                    "PO-9{:03}",
                    fnv1a64(format!("{customer}|{amount}").as_bytes()) % 1000
                );
                let expected_amount =
                    format!("{:.2}", amount.parse::<f64>().expect("fixture amount"));
                Blueprint {
                    intent: format!(
                        "Enter a manual invoice for {customer} of ${amount} against {po}"
                    ),
                    actions: vec![
                        click("nav-new-invoice"),
                        type_into("customer", customer),
                        type_into("amount", amount),
                        type_into("date", "2024-03-15"),
                        type_into("po", &po),
                        click("save-invoice"),
                    ],
                    sop: vec![
                        "Click the 'Enter invoice' navigation link".into(),
                        format!("Select '{customer}' from the Customer dropdown"),
                        format!("Type \"{amount}\" into the Amount field"),
                        "Type \"2024-03-15\" into the Invoice date field".into(),
                        format!("Type \"{po}\" into the PO number field"),
                        "Click the 'Save invoice' button".into(),
                    ],
                    success: SuccessCheck::probes(&[
                        (&format!("invoice_customer:{po}"), customer),
                        (&format!("invoice_amount:{po}"), &expected_amount),
                    ])
                    .with_url("/erp/invoices"),
                }
            },
        },
    ]
}

//! Satellite: the gold-trace self-validation sweep.
//!
//! Generation already refuses to emit a task whose gold trace misses
//! its own predicate; this tier-1 sweep re-proves the property on the
//! shipped default corpus from the outside — replay every task's gold
//! trace on a pristine session, assert the success predicate holds, and
//! assert the reference SOP has exactly one step per action. This is
//! the corpus-level analogue of what crucible's oracles do for the
//! executor: it catches template/predicate drift the moment a site's
//! behavior changes.

use eclair_corpus::corpus;

#[test]
fn every_task_gold_trace_satisfies_its_own_predicate() {
    let mut failures = Vec::new();
    for task in eclair_corpus::corpus_tasks() {
        if let Err(e) = task.verify_gold() {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} tasks failed self-validation:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn every_generated_sop_has_one_step_per_action() {
    for task in corpus().generated_tasks() {
        assert_eq!(
            task.gold_sop.len(),
            task.gold_trace.len(),
            "{}: SOP steps != trace actions",
            task.id
        );
    }
}

#[test]
fn generated_intents_are_descriptive() {
    for task in corpus().generated_tasks() {
        assert!(
            task.intent.split_whitespace().count() >= 4,
            "{}: intent too terse: {}",
            task.id,
            task.intent
        );
        assert!(task.gold_trace.len() >= 2, "{}: trivial trace", task.id);
        assert!(
            !task.success.probes.is_empty() || task.success.url_contains.is_some(),
            "{}: vacuous predicate",
            task.id
        );
    }
}

#[test]
fn predicate_diversity_spans_probe_families() {
    // The corpus should exercise many distinct probe *kinds* (the part
    // before the first ':'), not hammer one assertion shape 350 times.
    let mut kinds: Vec<String> = corpus()
        .tasks
        .iter()
        .flat_map(|t| t.success.probes.iter())
        .map(|(k, _)| k.split(':').next().unwrap_or(k).to_string())
        .collect();
    kinds.sort();
    kinds.dedup();
    assert!(
        kinds.len() >= 15,
        "only {} probe kinds: {kinds:?}",
        kinds.len()
    );
}

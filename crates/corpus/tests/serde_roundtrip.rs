//! Satellite: serde round-trips for `TaskSpec` and the corpus DSL /
//! manifest types, plus a legacy-manifest fixture pinning the v1 JSON
//! schema so future field renames fail loudly instead of silently
//! breaking stored manifests.

use eclair_corpus::{corpus, CorpusManifest, ManifestEntry, ParamAxis, Params, TemplateSummary};
use eclair_sites::TaskSpec;

#[test]
fn every_corpus_task_spec_round_trips_through_json() {
    // Round-trip the full TaskSpec — trace, SOP, and predicate included —
    // for a representative slice: every handwritten task plus one
    // generated task per template.
    let c = corpus();
    let mut sampled: Vec<&TaskSpec> = c.tasks[..c.manifest.handwritten].iter().collect();
    let mut seen_templates = std::collections::HashSet::new();
    for (entry, task) in c.manifest.entries.iter().zip(&c.tasks) {
        if entry.template != "handwritten" && seen_templates.insert(entry.template.clone()) {
            sampled.push(task);
        }
    }
    assert!(sampled.len() > 45, "sample covers all templates");
    for task in sampled {
        let json = serde_json::to_string(task).expect("serialize");
        let back: TaskSpec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(*task, back, "{} drifted through JSON", task.id);
    }
}

#[test]
fn dsl_types_round_trip() {
    let axis = ParamAxis::new("label", &["bug", "feature"]);
    let json = serde_json::to_string(&axis).unwrap();
    assert_eq!(axis, serde_json::from_str::<ParamAxis>(&json).unwrap());

    let params = Params(vec![
        ("project".into(), "webapp|WebApp".into()),
        ("label".into(), "bug".into()),
    ]);
    let json = serde_json::to_string(&params).unwrap();
    assert_eq!(params, serde_json::from_str::<Params>(&json).unwrap());
}

#[test]
fn full_manifest_round_trips() {
    let m = &corpus().manifest;
    let back: CorpusManifest = serde_json::from_str(&m.to_json()).expect("deserialize");
    assert_eq!(*m, back);
    assert_eq!(m.digest(), back.digest());
}

#[test]
fn legacy_manifest_fixture_still_deserializes() {
    // v1 schema pin: this fixture was written by hand against the v1
    // shape. If a field is renamed, removed, or retyped, this fails —
    // bump `version` and migrate instead of silently changing the shape.
    let raw = include_str!("fixtures/legacy_manifest.json");
    let m: CorpusManifest = serde_json::from_str(raw).expect("legacy manifest deserializes");
    assert_eq!(m.version, 1);
    assert_eq!(m.master_seed, 424242);
    assert_eq!(m.total_tasks, 2);
    assert_eq!(m.entries.len(), 2);

    let hand = &m.entries[0];
    assert_eq!(hand.template, "handwritten");
    assert_eq!(hand.params, Params(Vec::new()));
    assert_eq!(hand.url_contains, None);

    let generated = &m.entries[1];
    assert_eq!(generated.template, "ehr-patient-lookup");
    assert_eq!(
        generated.params.get("patient"),
        "MRN-2001|Harold Voss|Medicare"
    );
    assert_eq!(
        generated.url_contains.as_deref(),
        Some("/ehr/patients/MRN-2001")
    );
    assert_eq!(m.templates[0].family, 8);

    // And the legacy document survives a re-encode cycle.
    let re: CorpusManifest = serde_json::from_str(&m.to_json()).unwrap();
    assert_eq!(m, re);
}

#[test]
fn manifest_entry_and_summary_round_trip() {
    let entry = ManifestEntry {
        id: "t-000-abc".into(),
        template: "t".into(),
        site: "erp".into(),
        params: Params(vec![("a".into(), "x".into())]),
        intent: "do the thing properly".into(),
        actions: 3,
        sop_steps: 3,
        probes: 1,
        url_contains: Some("/erp".into()),
    };
    let json = serde_json::to_string(&entry).unwrap();
    assert_eq!(entry, serde_json::from_str::<ManifestEntry>(&json).unwrap());

    let summary = TemplateSummary {
        name: "t".into(),
        site: "erp".into(),
        family: 4,
        space: 9,
        generated: 4,
    };
    let json = serde_json::to_string(&summary).unwrap();
    assert_eq!(
        summary,
        serde_json::from_str::<TemplateSummary>(&json).unwrap()
    );
}

//! Satellite: corpus generation is a pure function of the master seed.
//!
//! Two `generate(seed)` calls must yield byte-identical manifests, and
//! distinct seeds must never collide on *generated* task ids (the
//! handwritten prefix is seed-independent by design, so it is excluded
//! from the disjointness check).

use std::cell::RefCell;
use std::collections::HashSet;

use proptest::prelude::*;

thread_local! {
    /// `(seed, generated ids)` pairs seen by earlier cases of this test,
    /// so every case's ids are checked against every other seed's.
    static SEEN: RefCell<Vec<(u64, HashSet<String>)>> = const { RefCell::new(Vec::new()) };
}

proptest! {
    #[test]
    fn generation_is_pure_and_seeds_never_collide(seed in 0u64..u64::MAX) {
        let first = eclair_corpus::generate(seed).expect("generate");
        let second = eclair_corpus::generate(seed).expect("generate again");
        // Purity: byte-identical manifests and identical task ids.
        prop_assert_eq!(first.manifest.to_json(), second.manifest.to_json());
        prop_assert_eq!(first.manifest.digest(), second.manifest.digest());
        let first_ids: Vec<&str> = first.tasks.iter().map(|t| t.id.as_str()).collect();
        let second_ids: Vec<&str> = second.tasks.iter().map(|t| t.id.as_str()).collect();
        prop_assert_eq!(first_ids, second_ids);

        // Cross-seed disjointness of generated ids.
        let generated: HashSet<String> = first
            .generated_tasks()
            .iter()
            .map(|t| t.id.clone())
            .collect();
        prop_assert_eq!(generated.len(), first.generated_tasks().len(), "ids unique within corpus");
        SEEN.with(|seen| {
            let mut seen = seen.borrow_mut();
            for (other_seed, other_ids) in seen.iter() {
                if *other_seed == seed {
                    continue;
                }
                let overlap: Vec<&String> = generated.intersection(other_ids).collect();
                assert!(
                    overlap.is_empty(),
                    "seeds {seed} and {other_seed} collide on {overlap:?}"
                );
            }
            seen.push((seed, generated));
        });
    }
}

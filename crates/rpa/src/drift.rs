//! The deployment simulation behind the §3 case-study numbers.
//!
//! Both case studies report the same dynamics: an RPA bot ships at ~60%
//! accuracy, climbs to ~95% after ~6 months of maintenance, and then keeps
//! breaking whenever the target applications change (quarterly EHR updates,
//! payer-website churn). [`DeploymentSim`] reproduces those dynamics
//! mechanistically:
//!
//! * month 0 ships a **rushed** script set (mis-authored anchors);
//! * each month, maintenance re-authors the scripts that failed, subject to
//!   an FTE-limited fix budget;
//! * every `drift_period` months, a UI update applies drift ops, breaking
//!   some anchors again.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use eclair_gui::theme::generate_drift;
use eclair_gui::Theme;
use eclair_sites::TaskSpec;

use crate::bot::RpaBot;
use crate::script::{compile, AuthoringConfig, RpaScript};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Months to simulate.
    pub months: usize,
    /// Months between UI updates (quarterly = 3).
    pub drift_period: usize,
    /// Drift ops per update.
    pub drift_ops: usize,
    /// Scripts the maintenance team can re-author per month (FTE budget).
    pub fixes_per_month: usize,
    /// Runs per task per month used to estimate accuracy.
    pub runs_per_task: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        Self {
            months: 12,
            drift_period: 3,
            drift_ops: 3,
            fixes_per_month: 6,
            runs_per_task: 1,
            seed: 17,
        }
    }
}

/// One month's measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MonthReport {
    /// 0-based month index.
    pub month: usize,
    /// Fraction of task runs that completed with the task check satisfied.
    pub accuracy: f64,
    /// Scripts re-authored this month.
    pub fixes_applied: usize,
    /// Whether a UI update landed this month.
    pub drift_applied: bool,
}

/// Full simulation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeploymentReport {
    /// Per-month series (the §3.2 "60% → 95%" ramp).
    pub months: Vec<MonthReport>,
}

impl DeploymentReport {
    /// Accuracy in the first month.
    pub fn initial_accuracy(&self) -> f64 {
        self.months.first().map(|m| m.accuracy).unwrap_or(0.0)
    }

    /// Best accuracy reached.
    pub fn peak_accuracy(&self) -> f64 {
        self.months.iter().map(|m| m.accuracy).fold(0.0, f64::max)
    }

    /// First month reaching `threshold`, if any.
    pub fn months_to_reach(&self, threshold: f64) -> Option<usize> {
        self.months
            .iter()
            .find(|m| m.accuracy >= threshold)
            .map(|m| m.month)
    }
}

/// The deployment simulator.
pub struct DeploymentSim {
    tasks: Vec<TaskSpec>,
    cfg: DeploymentConfig,
}

impl DeploymentSim {
    /// Build over a task set.
    pub fn new(tasks: Vec<TaskSpec>, cfg: DeploymentConfig) -> Self {
        Self { tasks, cfg }
    }

    /// Run the simulation.
    pub fn run(&self) -> DeploymentReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut theme = Theme::pristine();
        // Month 0: rushed authoring against the pristine UI.
        let mut scripts: Vec<RpaScript> = self
            .tasks
            .iter()
            .map(|t| {
                let mut s = t.site.launch_with_theme(theme.clone());
                compile(
                    &t.id,
                    &mut s,
                    &t.gold_trace.actions,
                    AuthoringConfig::rushed(),
                    &mut rng,
                )
            })
            .collect();
        let mut months = Vec::with_capacity(self.cfg.months);
        for month in 0..self.cfg.months {
            let drift_applied = month > 0 && month % self.cfg.drift_period == 0;
            if drift_applied {
                // Sample drift against a representative page of each site.
                let sample = self.tasks[month % self.tasks.len()]
                    .site
                    .launch_with_theme(theme.clone());
                let ops = generate_drift(sample.page(), &mut rng, self.cfg.drift_ops);
                theme.extend(ops);
            }
            // Measure.
            let mut failing: Vec<usize> = Vec::new();
            let mut successes = 0usize;
            let mut total = 0usize;
            for (i, task) in self.tasks.iter().enumerate() {
                let mut task_failed = false;
                for _ in 0..self.cfg.runs_per_task.max(1) {
                    total += 1;
                    let mut session = task.site.launch_with_theme(theme.clone());
                    let report = RpaBot.run(&mut session, &scripts[i]);
                    if report.completed() && task.success.evaluate(&session) {
                        successes += 1;
                    } else {
                        task_failed = true;
                    }
                }
                if task_failed {
                    failing.push(i);
                }
            }
            // Maintenance: careful re-authoring of up to `fixes_per_month`
            // failing scripts against the *current* UI.
            let mut fixes_applied = 0usize;
            for &i in failing.iter().take(self.cfg.fixes_per_month) {
                let task = &self.tasks[i];
                let mut s = task.site.launch_with_theme(theme.clone());
                scripts[i] = compile(
                    &task.id,
                    &mut s,
                    &task.gold_trace.actions,
                    AuthoringConfig::careful(),
                    &mut rng,
                );
                fixes_applied += 1;
            }
            months.push(MonthReport {
                month,
                accuracy: if total == 0 {
                    0.0
                } else {
                    successes as f64 / total as f64
                },
                fixes_applied,
                drift_applied,
            });
        }
        DeploymentReport { months }
    }
}

/// The random-input variance the §3.2 study cites ("add new input formats"):
/// run one careful script against many documents — here, one script authored
/// for one contract replayed against another contract index — and report
/// whether it generalizes (it does not: the amounts/fields differ).
pub fn input_variance_probe<R: Rng>(rng: &mut R) -> bool {
    use eclair_sites::tasks::erp_invoice_task;
    let authored_on = rng.gen_range(0..eclair_sites::fixtures::CONTRACTS.len());
    let replayed_on = (authored_on + 1) % eclair_sites::fixtures::CONTRACTS.len();
    let author_task = erp_invoice_task(authored_on);
    let mut author_session = author_task.launch();
    let script = compile(
        &author_task.id,
        &mut author_session,
        &author_task.gold_trace.actions,
        AuthoringConfig::careful(),
        rng,
    );
    // The bot replays the *same keystrokes* against a different document:
    // it enters the wrong invoice (hard-coded data), so the new task fails.
    let other_task = erp_invoice_task(replayed_on);
    let mut run = other_task.launch();
    let report = RpaBot.run(&mut run, &script);
    report.completed() && other_task.success.evaluate(&run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_sites::tasks::all_tasks;

    fn quick_cfg() -> DeploymentConfig {
        DeploymentConfig {
            months: 8,
            drift_period: 3,
            drift_ops: 3,
            fixes_per_month: 8,
            runs_per_task: 1,
            seed: 11,
        }
    }

    #[test]
    fn ramp_starts_low_and_climbs() {
        let tasks: Vec<_> = all_tasks().into_iter().take(12).collect();
        let report = DeploymentSim::new(tasks, quick_cfg()).run();
        let initial = report.initial_accuracy();
        let peak = report.peak_accuracy();
        assert!(
            initial < 0.85,
            "rushed deployment should not start near-perfect: {initial}"
        );
        assert!(peak > initial, "maintenance must improve accuracy");
        assert!(
            peak >= 0.85,
            "peak should approach the case study's 95%: {peak}"
        );
    }

    #[test]
    fn drift_months_are_marked() {
        let tasks: Vec<_> = all_tasks().into_iter().take(4).collect();
        let report = DeploymentSim::new(tasks, quick_cfg()).run();
        assert!(report.months[3].drift_applied);
        assert!(!report.months[1].drift_applied);
    }

    #[test]
    fn simulation_is_deterministic() {
        let tasks: Vec<_> = all_tasks().into_iter().take(6).collect();
        let a = DeploymentSim::new(tasks.clone(), quick_cfg()).run();
        let b = DeploymentSim::new(tasks, quick_cfg()).run();
        assert_eq!(
            a.months.iter().map(|m| m.accuracy).collect::<Vec<_>>(),
            b.months.iter().map(|m| m.accuracy).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hardcoded_scripts_do_not_generalize_across_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..4 {
            assert!(
                !input_variance_probe(&mut rng),
                "a script recorded for one contract must not satisfy another"
            );
        }
    }
}

//! # eclair-rpa
//!
//! The baseline the paper positions ECLAIR against: traditional Robotic
//! Process Automation, "in which a human manually defines a set of rules
//! that a bot then follows" (§2.1).
//!
//! * [`selector`] — the rule language: find-by-name, find-by-label,
//!   find-by-position; exactly the brittle anchors real RPA toolkits use;
//! * [`scoring`] — drift-resistance ranking of anchors (name > label >
//!   index > point) and best-anchor choice, shared with the
//!   `eclair-hybrid` trace→script compiler;
//! * [`script`] — compiled scripts: ordered `(selector, operation)` steps,
//!   authored from a gold trace with configurable authoring imperfections;
//! * [`bot`] — the executor: resolves selectors against the live page and
//!   fails fast when an anchor no longer matches;
//! * [`drift`] — the §3 deployment simulation: quarterly UI updates break
//!   selectors, maintenance FTEs fix what broke, accuracy ramps 60% → 95%
//!   over months exactly as both case studies report;
//! * [`economics`] — the cost model: set-up months and dollars, FTE
//!   maintenance, cost per processed item — RPA's side of the case-study
//!   comparison.

pub mod bot;
pub mod drift;
pub mod economics;
pub mod scoring;
pub mod script;
pub mod selector;

pub use bot::{RpaBot, RunOutcome, RunReport};
pub use scoring::{best_selector, drift_resistance};
pub use script::{RpaOp, RpaScript, RpaStep};
pub use selector::Selector;

//! The RPA bot: executes a compiled script, failing fast when a rule no
//! longer matches the screen — no perception, no recovery, no common
//! sense. The contrast with ECLAIR's executor is the point.

use eclair_gui::event::EffectKind;
use eclair_gui::{Key, Session, UserEvent};
use serde::{Deserialize, Serialize};

use crate::script::{RpaOp, RpaScript};

/// Why (or that) a run ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Every step executed (task success is checked separately).
    Completed,
    /// A selector matched nothing.
    SelectorMiss { step: usize, selector: String },
    /// The element matched but the operation bounced off it (e.g. typing
    /// into a button).
    OpFailed { step: usize, selector: String },
}

/// Result of one bot run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Steps successfully executed.
    pub steps_done: usize,
    /// Total steps in the script.
    pub steps_total: usize,
}

impl RunReport {
    /// Whether the bot got through its script.
    pub fn completed(&self) -> bool {
        self.outcome == RunOutcome::Completed
    }
}

/// The bot.
#[derive(Debug, Default)]
pub struct RpaBot;

impl RpaBot {
    /// Run `script` against a live session.
    pub fn run(&self, session: &mut Session, script: &RpaScript) -> RunReport {
        let total = script.steps.len();
        for (i, step) in script.steps.iter().enumerate() {
            let Some(id) = step.selector.resolve(session) else {
                return RunReport {
                    outcome: RunOutcome::SelectorMiss {
                        step: i,
                        selector: step.selector.describe(),
                    },
                    steps_done: i,
                    steps_total: total,
                };
            };
            session.scroll_into_view(id);
            let pt = session
                .page()
                .get(id)
                .bounds
                .center()
                .offset(0, -session.scroll_y());
            let ok = match &step.op {
                RpaOp::Click => {
                    let d = session.dispatch(UserEvent::Click(pt));
                    d.effect != EffectKind::NoOp
                }
                RpaOp::Type(text) => {
                    let d = session.dispatch(UserEvent::Click(pt));
                    if d.effect != EffectKind::Focused {
                        false
                    } else {
                        session.dispatch(UserEvent::Type(text.clone())).effect == EffectKind::Typed
                    }
                }
                RpaOp::Replace(text) => {
                    let d = session.dispatch(UserEvent::Click(pt));
                    if d.effect != EffectKind::Focused {
                        false
                    } else {
                        for _ in 0..300 {
                            let empty = step
                                .selector
                                .resolve(session)
                                .map(|id| session.page().get(id).value.is_empty())
                                .unwrap_or(true);
                            if empty {
                                break;
                            }
                            session.dispatch(UserEvent::Press(Key::Backspace));
                        }
                        session.dispatch(UserEvent::Type(text.clone())).effect == EffectKind::Typed
                    }
                }
            };
            if !ok {
                return RunReport {
                    outcome: RunOutcome::OpFailed {
                        step: i,
                        selector: step.selector.describe(),
                    },
                    steps_done: i,
                    steps_total: total,
                };
            }
        }
        RunReport {
            outcome: RunOutcome::Completed,
            steps_done: total,
            steps_total: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{compile, AuthoringConfig};
    use crate::selector::Selector;
    use eclair_gui::{DriftOp, Theme};
    use eclair_sites::tasks::all_tasks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn careful_scripts_complete_all_tasks_on_pristine_ui() {
        let mut rng = StdRng::seed_from_u64(2);
        for task in all_tasks() {
            let mut author = task.launch();
            let script = compile(
                &task.id,
                &mut author,
                &task.gold_trace.actions,
                AuthoringConfig::careful(),
                &mut rng,
            );
            let mut run = task.launch();
            let report = RpaBot.run(&mut run, &script);
            assert!(report.completed(), "{}: {:?}", task.id, report.outcome);
            assert!(
                task.success.evaluate(&run),
                "{}: bot completed but task check failed",
                task.id
            );
        }
    }

    #[test]
    fn drift_breaks_scripts() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "gitlab-01")
            .unwrap();
        let mut author = task.launch();
        let mut rng = StdRng::seed_from_u64(3);
        // Label-anchored script.
        let cfg = AuthoringConfig {
            point_anchor_fraction: 0.0,
            label_anchor_fraction: 1.0,
            authoring_error_rate: 0.0,
        };
        let script = compile(
            &task.id,
            &mut author,
            &task.gold_trace.actions,
            cfg,
            &mut rng,
        );
        // A quarterly update renames the button the script clicks.
        let theme = Theme::with_ops(vec![DriftOp::Relabel {
            from: "New issue".into(),
            to: "Create issue".into(),
        }]);
        let mut run = task.site.launch_with_theme(theme);
        let report = RpaBot.run(&mut run, &script);
        assert!(!report.completed(), "relabel must break the label anchor");
        assert!(matches!(report.outcome, RunOutcome::SelectorMiss { .. }));
    }

    #[test]
    fn report_counts_partial_progress() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "magento-05")
            .unwrap();
        let mut author = task.launch();
        let mut rng = StdRng::seed_from_u64(4);
        let mut script = compile(
            &task.id,
            &mut author,
            &task.gold_trace.actions,
            AuthoringConfig::careful(),
            &mut rng,
        );
        // Sabotage the last step.
        let last = script.steps.len() - 1;
        script.steps[last].selector = Selector::ByName("gone".into());
        let mut run = task.launch();
        let report = RpaBot.run(&mut run, &script);
        assert_eq!(report.steps_done, last);
        assert!(!report.completed());
    }
}

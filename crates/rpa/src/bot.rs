//! The RPA bot: executes a compiled script, failing fast when a rule no
//! longer matches the screen — no perception, no recovery, no common
//! sense. The contrast with ECLAIR's executor is the point.

use eclair_gui::event::EffectKind;
use eclair_gui::{Key, Session, UserEvent};
use serde::{Deserialize, Serialize};

use crate::script::{RpaOp, RpaScript};
use crate::selector::Selector;

/// How many live-page anchors a [`RunOutcome::SelectorMiss`] reports.
const CANDIDATE_LIMIT: usize = 5;

/// Why (or that) a run ended.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Every step executed (task success is checked separately).
    Completed,
    /// A selector matched nothing. `candidates` lists the closest anchors
    /// on the live page (most similar first) so a maintainer — or the
    /// hybrid recompiler's audit trail — can see what the screen offered
    /// instead of the recorded anchor.
    SelectorMiss {
        step: usize,
        selector: String,
        candidates: Vec<String>,
    },
    /// The element matched but the operation bounced off it (e.g. typing
    /// into a button).
    OpFailed { step: usize, selector: String },
}

/// Result of one bot run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Steps successfully executed.
    pub steps_done: usize,
    /// Total steps in the script.
    pub steps_total: usize,
}

impl RunReport {
    /// Whether the bot got through its script.
    pub fn completed(&self) -> bool {
        self.outcome == RunOutcome::Completed
    }
}

/// The bot.
#[derive(Debug, Default)]
pub struct RpaBot;

impl RpaBot {
    /// Run `script` against a live session.
    pub fn run(&self, session: &mut Session, script: &RpaScript) -> RunReport {
        let total = script.steps.len();
        for (i, step) in script.steps.iter().enumerate() {
            let Some(id) = step.selector.resolve(session) else {
                return RunReport {
                    outcome: RunOutcome::SelectorMiss {
                        step: i,
                        selector: step.selector.describe(),
                        candidates: candidate_anchors(session, &step.selector),
                    },
                    steps_done: i,
                    steps_total: total,
                };
            };
            session.scroll_into_view(id);
            let pt = session
                .page()
                .get(id)
                .bounds
                .center()
                .offset(0, -session.scroll_y());
            let ok = match &step.op {
                RpaOp::Click => {
                    let d = session.dispatch(UserEvent::Click(pt));
                    d.effect != EffectKind::NoOp
                }
                RpaOp::Type(text) => {
                    let d = session.dispatch(UserEvent::Click(pt));
                    if d.effect != EffectKind::Focused {
                        false
                    } else {
                        session.dispatch(UserEvent::Type(text.clone())).effect == EffectKind::Typed
                    }
                }
                RpaOp::Replace(text) => {
                    let d = session.dispatch(UserEvent::Click(pt));
                    if d.effect != EffectKind::Focused {
                        false
                    } else {
                        for _ in 0..300 {
                            let empty = step
                                .selector
                                .resolve(session)
                                .map(|id| session.page().get(id).value.is_empty())
                                .unwrap_or(true);
                            if empty {
                                break;
                            }
                            session.dispatch(UserEvent::Press(Key::Backspace));
                        }
                        session.dispatch(UserEvent::Type(text.clone())).effect == EffectKind::Typed
                    }
                }
            };
            if !ok {
                return RunReport {
                    outcome: RunOutcome::OpFailed {
                        step: i,
                        selector: step.selector.describe(),
                    },
                    steps_done: i,
                    steps_total: total,
                };
            }
        }
        RunReport {
            outcome: RunOutcome::Completed,
            steps_done: total,
            steps_total: total,
        }
    }
}

/// Rank the live page's interactive anchors by similarity to the missed
/// selector: bigram overlap against the recorded name/label text, or
/// proximity for coordinate/index anchors. Deterministic (ties break on
/// page order) so failure reports stay byte-stable.
fn candidate_anchors(session: &Session, missed: &Selector) -> Vec<String> {
    let page = session.page();
    let mut scored: Vec<(u64, usize, String)> = page
        .interactive_widgets()
        .iter()
        .enumerate()
        .map(|(idx, &id)| {
            let w = page.get(id);
            let affinity = match missed {
                Selector::ByName(n) => {
                    bigram_affinity(n, &w.name).max(bigram_affinity(n, &w.label))
                }
                Selector::ByLabel(l) => {
                    bigram_affinity(l, &w.label).max(bigram_affinity(l, &w.name))
                }
                Selector::ByPoint(p) => {
                    let c = w.bounds.center().offset(0, -session.scroll_y());
                    let dist =
                        (c.x - p.x).unsigned_abs() as u64 + (c.y - p.y).unsigned_abs() as u64;
                    u64::MAX - dist
                }
                Selector::ByIndex(i) => u64::MAX - idx.abs_diff(*i) as u64,
            };
            let anchor = if w.name.is_empty() {
                format!("label='{}'", w.label)
            } else if w.label.is_empty() {
                format!("name={}", w.name)
            } else {
                format!("name={} label='{}'", w.name, w.label)
            };
            (affinity, idx, anchor)
        })
        .collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    scored
        .into_iter()
        .take(CANDIDATE_LIMIT)
        .map(|(_, _, anchor)| anchor)
        .collect()
}

/// Shared-bigram count between two strings, case-insensitive — a cheap,
/// dependency-free similarity that ranks `"New issue"` near
/// `"Create issue"` without pulling the FM crate's fuzzy matcher in.
fn bigram_affinity(a: &str, b: &str) -> u64 {
    let grams = |s: &str| -> Vec<(char, char)> {
        let lower: Vec<char> = s.chars().flat_map(|c| c.to_lowercase()).collect();
        lower.windows(2).map(|w| (w[0], w[1])).collect()
    };
    let ga = grams(a);
    let mut gb = grams(b);
    let mut shared = 0u64;
    for g in ga {
        if let Some(pos) = gb.iter().position(|&x| x == g) {
            gb.swap_remove(pos);
            shared += 1;
        }
    }
    shared
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{compile, AuthoringConfig};
    use crate::selector::Selector;
    use eclair_gui::{DriftOp, Theme};
    use eclair_sites::tasks::all_tasks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn careful_scripts_complete_all_tasks_on_pristine_ui() {
        let mut rng = StdRng::seed_from_u64(2);
        for task in all_tasks() {
            let mut author = task.launch();
            let script = compile(
                &task.id,
                &mut author,
                &task.gold_trace.actions,
                AuthoringConfig::careful(),
                &mut rng,
            );
            let mut run = task.launch();
            let report = RpaBot.run(&mut run, &script);
            assert!(report.completed(), "{}: {:?}", task.id, report.outcome);
            assert!(
                task.success.evaluate(&run),
                "{}: bot completed but task check failed",
                task.id
            );
        }
    }

    #[test]
    fn drift_breaks_scripts() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "gitlab-01")
            .unwrap();
        let mut author = task.launch();
        let mut rng = StdRng::seed_from_u64(3);
        // Label-anchored script.
        let cfg = AuthoringConfig {
            point_anchor_fraction: 0.0,
            label_anchor_fraction: 1.0,
            authoring_error_rate: 0.0,
        };
        let script = compile(
            &task.id,
            &mut author,
            &task.gold_trace.actions,
            cfg,
            &mut rng,
        );
        // A quarterly update renames the button the script clicks.
        let theme = Theme::with_ops(vec![DriftOp::Relabel {
            from: "New issue".into(),
            to: "Create issue".into(),
        }]);
        let mut run = task.site.launch_with_theme(theme);
        let report = RpaBot.run(&mut run, &script);
        assert!(!report.completed(), "relabel must break the label anchor");
        assert!(matches!(report.outcome, RunOutcome::SelectorMiss { .. }));
    }

    #[test]
    fn selector_miss_reports_the_anchor_and_live_candidates() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "gitlab-01")
            .unwrap();
        let mut author = task.launch();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = AuthoringConfig {
            point_anchor_fraction: 0.0,
            label_anchor_fraction: 1.0,
            authoring_error_rate: 0.0,
        };
        let script = compile(
            &task.id,
            &mut author,
            &task.gold_trace.actions,
            cfg,
            &mut rng,
        );
        let theme = Theme::with_ops(vec![DriftOp::Relabel {
            from: "New issue".into(),
            to: "Create issue".into(),
        }]);
        let mut run = task.site.launch_with_theme(theme);
        let report = RpaBot.run(&mut run, &script);
        let RunOutcome::SelectorMiss {
            selector,
            candidates,
            ..
        } = &report.outcome
        else {
            panic!("expected a selector miss, got {:?}", report.outcome);
        };
        // The report names the missed anchor...
        assert_eq!(selector, "label='New issue'");
        // ...and the live page's closest anchors, most similar first: the
        // relabeled button shares the most bigrams with the recorded label.
        assert!(
            (1..=5).contains(&candidates.len()),
            "candidates: {candidates:?}"
        );
        assert!(
            candidates[0].contains("Create issue"),
            "the drifted twin should rank first: {candidates:?}"
        );
        // Determinism: the same miss renders the same report.
        let mut rerun = task
            .site
            .launch_with_theme(Theme::with_ops(vec![DriftOp::Relabel {
                from: "New issue".into(),
                to: "Create issue".into(),
            }]));
        assert_eq!(report, RpaBot.run(&mut rerun, &script));
    }

    #[test]
    fn report_counts_partial_progress() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "magento-05")
            .unwrap();
        let mut author = task.launch();
        let mut rng = StdRng::seed_from_u64(4);
        let mut script = compile(
            &task.id,
            &mut author,
            &task.gold_trace.actions,
            AuthoringConfig::careful(),
            &mut rng,
        );
        // Sabotage the last step.
        let last = script.steps.len() - 1;
        script.steps[last].selector = Selector::ByName("gone".into());
        let mut run = task.launch();
        let report = RpaBot.run(&mut run, &script);
        assert_eq!(report.steps_done, last);
        assert!(!report.completed());
    }
}

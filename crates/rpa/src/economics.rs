//! Deployment economics: the dollars-and-FTEs side of the §3 case studies.
//!
//! The paper's argument for ECLAIR is ultimately economic: RPA cost the
//! B2B enterprise $150k licence + $100k consultants + 3 FTEs and 12 months
//! before the first workflow ran; ECLAIR sets up from a natural-language
//! description. This module prices both so the case-study bench can print
//! cumulative-cost curves and break-even points.

use serde::{Deserialize, Serialize};

/// Cost structure of an automation approach.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    /// Display name.
    pub name: String,
    /// Months from kickoff to first production run.
    pub setup_months: f64,
    /// One-time setup cost (licences, consultants, integration) in USD.
    pub setup_cost_usd: f64,
    /// Ongoing maintenance headcount.
    pub maintenance_ftes: f64,
    /// Fully-loaded annual cost per FTE in USD.
    pub fte_annual_usd: f64,
    /// Marginal cost per processed workflow item in USD (API tokens for an
    /// FM agent; ~0 for RPA compute).
    pub cost_per_item_usd: f64,
    /// Expected workflow accuracy once ramped.
    pub steady_accuracy: f64,
    /// Cost (USD) of one wrongly processed item (§3.2: "$10k's").
    pub error_cost_usd: f64,
}

impl CostModel {
    /// The §3.2 B2B RPA deployment: $150k vendor + $100k consultants,
    /// 12 months to production, 2 FTEs monitoring, 95% steady accuracy.
    pub fn rpa_b2b_case_study() -> Self {
        Self {
            name: "RPA (B2B case study)".into(),
            setup_months: 12.0,
            setup_cost_usd: 250_000.0,
            maintenance_ftes: 2.0,
            fte_annual_usd: 120_000.0,
            cost_per_item_usd: 0.02,
            steady_accuracy: 0.95,
            error_cost_usd: 10_000.0,
        }
    }

    /// The §3.1 hospital RPA deployment: 18 months, $10k's build (we take
    /// $60k) plus an outsourced managed service priced as 1 FTE.
    pub fn rpa_hospital_case_study() -> Self {
        Self {
            name: "RPA (hospital case study)".into(),
            setup_months: 18.0,
            setup_cost_usd: 60_000.0,
            maintenance_ftes: 1.0,
            fte_annual_usd: 110_000.0,
            cost_per_item_usd: 0.02,
            steady_accuracy: 0.95,
            error_cost_usd: 2_000.0,
        }
    }

    /// ECLAIR at the paper's measured operating point: instant set-up from
    /// a written SOP, no integration project, per-item FM token cost, 40%
    /// end-to-end completion (failures fall back to a human, priced into
    /// `error_cost_usd` as the cost of one manual fallback).
    pub fn eclair_measured(cost_per_item_usd: f64) -> Self {
        Self {
            name: "ECLAIR (measured)".into(),
            setup_months: 0.0,
            setup_cost_usd: 0.0,
            maintenance_ftes: 0.25,
            fte_annual_usd: 120_000.0,
            cost_per_item_usd,
            steady_accuracy: 0.40,
            error_cost_usd: 35.0, // a human redoes the ~40-minute task
        }
    }

    /// The hybrid compile-then-heal deployment (`eclair-hybrid`): one
    /// validated FM run is compiled into a selector bot, so "set-up" is
    /// the token cost of that single run (`compile_cost_usd` — no
    /// integration project, no consultants), the marginal item costs only
    /// the FM fallbacks on drifted steps (`fallback_cost_per_item_usd`,
    /// ~0 on the happy path and shrinking after each recompile), and
    /// maintenance is a sliver of an FTE because the recompiler splices
    /// repaired anchors back instead of paging a human. Accuracy matches
    /// RPA's steady state — the bot replays a *validated* trace — while
    /// the FM fallback absorbs the drift that would park an RPA script.
    pub fn hybrid_compiled(compile_cost_usd: f64, fallback_cost_per_item_usd: f64) -> Self {
        Self {
            name: "Hybrid (compiled bot + FM fallback)".into(),
            setup_months: 0.0,
            setup_cost_usd: compile_cost_usd,
            maintenance_ftes: 0.1,
            fte_annual_usd: 120_000.0,
            cost_per_item_usd: fallback_cost_per_item_usd,
            steady_accuracy: 0.95,
            error_cost_usd: 35.0, // same human-redo backstop as ECLAIR
        }
    }

    /// Cumulative cost after `months`, processing `items_per_month`.
    /// Before set-up completes, items are processed manually at
    /// `manual_cost_per_item` (the statu quo ante).
    pub fn cumulative_cost(
        &self,
        months: f64,
        items_per_month: f64,
        manual_cost_per_item: f64,
    ) -> f64 {
        let mut cost = 0.0;
        // Set-up spend is incurred up front (amortized linearly over the
        // set-up window for simplicity).
        let setup_progress = if self.setup_months == 0.0 {
            1.0
        } else {
            (months / self.setup_months).min(1.0)
        };
        cost += self.setup_cost_usd * setup_progress;
        // Pre-deployment months: fully manual processing.
        let manual_months = months.min(self.setup_months);
        cost += manual_months * items_per_month * manual_cost_per_item;
        // Post-deployment months.
        let live_months = (months - self.setup_months).max(0.0);
        if live_months > 0.0 {
            cost += live_months * self.maintenance_ftes * self.fte_annual_usd / 12.0;
            cost += live_months * items_per_month * self.cost_per_item_usd;
            // Errors: failed items cost an error-handling charge.
            let error_rate = 1.0 - self.steady_accuracy;
            cost += live_months
                * items_per_month
                * error_rate
                * self.error_cost_usd.min(
                    // errors can at worst cost a manual redo when a human is in
                    // the loop catching them
                    self.error_cost_usd,
                );
        }
        cost
    }

    /// First month (integer granularity up to `horizon`) at which this
    /// model's cumulative cost drops below `other`'s, if any.
    pub fn break_even_vs(
        &self,
        other: &CostModel,
        items_per_month: f64,
        manual_cost_per_item: f64,
        horizon: usize,
    ) -> Option<usize> {
        (1..=horizon).find(|&m| {
            self.cumulative_cost(m as f64, items_per_month, manual_cost_per_item)
                < other.cumulative_cost(m as f64, items_per_month, manual_cost_per_item)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpa_costs_are_front_loaded() {
        let rpa = CostModel::rpa_b2b_case_study();
        let at6 = rpa.cumulative_cost(6.0, 1000.0, 25.0);
        let at12 = rpa.cumulative_cost(12.0, 1000.0, 25.0);
        assert!(at6 > 100_000.0, "setup spend shows early: {at6}");
        assert!(at12 > at6);
    }

    #[test]
    fn eclair_has_no_setup_cliff() {
        let eclair = CostModel::eclair_measured(0.50);
        let at1 = eclair.cumulative_cost(1.0, 1000.0, 25.0);
        assert!(
            at1 < 50_000.0,
            "no integration project, cost is mostly per-item: {at1}"
        );
    }

    #[test]
    fn eclair_undercuts_rpa_early() {
        let rpa = CostModel::rpa_b2b_case_study();
        let eclair = CostModel::eclair_measured(0.50);
        let be = eclair.break_even_vs(&rpa, 1000.0, 25.0, 36);
        assert_eq!(be, Some(1), "ECLAIR is cheaper from month 1: {be:?}");
    }

    #[test]
    fn hybrid_undercuts_both_rpa_and_pure_fm() {
        // Compile cost = one pure-FM run's tokens; fallback cost a tenth
        // of the per-item FM spend (most steps replay for free).
        let hybrid = CostModel::hybrid_compiled(0.50, 0.05);
        let rpa = CostModel::rpa_b2b_case_study();
        let eclair = CostModel::eclair_measured(0.50);
        assert_eq!(hybrid.break_even_vs(&rpa, 1000.0, 25.0, 36), Some(1));
        assert_eq!(hybrid.break_even_vs(&eclair, 1000.0, 25.0, 36), Some(1));
        // And the gap widens: at 24 months hybrid has spent less than half
        // of either alternative.
        let at = |m: &CostModel| m.cumulative_cost(24.0, 1000.0, 25.0);
        assert!(
            at(&hybrid) < at(&rpa) / 2.0,
            "{} vs {}",
            at(&hybrid),
            at(&rpa)
        );
        assert!(
            at(&hybrid) < at(&eclair) / 2.0,
            "{} vs {}",
            at(&hybrid),
            at(&eclair)
        );
    }

    #[test]
    fn cumulative_cost_is_monotone_in_time() {
        for model in [
            CostModel::rpa_b2b_case_study(),
            CostModel::rpa_hospital_case_study(),
            CostModel::eclair_measured(0.5),
            CostModel::hybrid_compiled(0.5, 0.05),
        ] {
            let mut prev = 0.0;
            for m in 1..=24 {
                let c = model.cumulative_cost(m as f64, 500.0, 25.0);
                assert!(c >= prev, "{} month {m}: {c} < {prev}", model.name);
                prev = c;
            }
        }
    }
}

//! RPA selectors: the hard-coded anchors a bot uses to find elements.
//!
//! The paper's case studies attribute RPA's brittleness to exactly these
//! anchors breaking: "a button changing location on a screen, or a form
//! field being renamed" (§1). Each variant fails under a different drift
//! op: `ByName` under field renames, `ByLabel` under relabels, `ByPoint`
//! under any geometry change (banners, reshuffles, input resizes).

use eclair_gui::{Page, Point, Session, WidgetId};
use serde::{Deserialize, Serialize};

/// One element anchor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Selector {
    /// Match by programmatic name / automation id.
    ByName(String),
    /// Match by exact visible label.
    ByLabel(String),
    /// Click blindly at recorded coordinates (viewport space).
    ByPoint(Point),
    /// Match the `idx`-th interactive element on the page (recorded during
    /// authoring; breaks when elements are added/reordered).
    ByIndex(usize),
}

impl Selector {
    /// Resolve against the live session. `ByPoint` resolves to whatever is
    /// under the point *right now*.
    pub fn resolve(&self, session: &Session) -> Option<WidgetId> {
        self.resolve_in(session.page(), session.scroll_y())
    }

    /// Resolve against a raw page at a given scroll offset. The session
    /// variant above delegates here; wrappers that expose only
    /// `page()`/`scroll_y()` (e.g. a chaos-instrumented surface) use this
    /// directly.
    pub fn resolve_in(&self, page: &Page, scroll_y: i32) -> Option<WidgetId> {
        match self {
            Selector::ByName(n) => page.find_by_name(n),
            Selector::ByLabel(l) => page.find_by_label(l, true),
            Selector::ByPoint(p) => page.hit_test(p.offset(0, scroll_y)),
            Selector::ByIndex(i) => page.interactive_widgets().get(*i).copied(),
        }
    }

    /// Human-readable rendering for failure reports.
    pub fn describe(&self) -> String {
        match self {
            Selector::ByName(n) => format!("name={n}"),
            Selector::ByLabel(l) => format!("label='{l}'"),
            Selector::ByPoint(p) => format!("point=({},{})", p.x, p.y),
            Selector::ByIndex(i) => format!("index={i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::{DriftOp, Session, Theme};
    use eclair_sites::Site;

    fn gitlab() -> Session {
        Site::Gitlab.launch()
    }

    #[test]
    fn by_name_and_label_resolve_on_pristine_ui() {
        let s = gitlab();
        assert!(Selector::ByName("nav-profile".into()).resolve(&s).is_some());
        assert!(Selector::ByLabel("Projects".into()).resolve(&s).is_some());
        assert!(Selector::ByName("missing".into()).resolve(&s).is_none());
    }

    #[test]
    fn by_point_resolves_whatever_is_there() {
        let s = gitlab();
        let id = s.page().find_by_name("nav-profile").unwrap();
        let pt = s.page().get(id).bounds.center();
        assert_eq!(Selector::ByPoint(pt).resolve(&s), Some(id));
    }

    #[test]
    fn relabel_breaks_label_selector_not_name() {
        let theme = Theme::with_ops(vec![DriftOp::Relabel {
            from: "Projects".into(),
            to: "Workspaces".into(),
        }]);
        let s = Site::Gitlab.launch_with_theme(theme);
        assert!(Selector::ByLabel("Projects".into()).resolve(&s).is_none());
        assert!(Selector::ByName("nav-dashboard".into())
            .resolve(&s)
            .is_some());
    }

    #[test]
    fn banner_breaks_point_selector_not_name() {
        let pristine = gitlab();
        let id = pristine.page().find_by_name("nav-profile").unwrap();
        let pt = pristine.page().get(id).bounds.center();

        let theme = Theme::with_ops(vec![DriftOp::InsertBanner {
            text: "New: dark mode is here! Try it from your profile.".into(),
        }]);
        let drifted = Site::Gitlab.launch_with_theme(theme);
        let hit = Selector::ByPoint(pt).resolve(&drifted);
        let want = drifted.page().find_by_name("nav-profile");
        assert_ne!(hit, want, "shifted layout breaks recorded coordinates");
        assert!(Selector::ByName("nav-profile".into())
            .resolve(&drifted)
            .is_some());
    }

    #[test]
    fn rename_breaks_name_selector() {
        let theme = Theme::with_ops(vec![DriftOp::RenameField {
            from: "nav-profile".into(),
            to: "nav-profile_v2".into(),
        }]);
        let s = Site::Gitlab.launch_with_theme(theme);
        assert!(Selector::ByName("nav-profile".into()).resolve(&s).is_none());
    }
}

//! Drift-resistance scoring: which anchor survives a quarterly UI update.
//!
//! The paper's case studies rank the ways scripts die: coordinates break
//! under *any* geometry change (banners, reshuffles, resizes), visible
//! labels break under relabeling campaigns, and programmatic names break
//! only when a field is actually renamed — the rarest drift. The hybrid
//! compiler (`eclair-hybrid`) therefore anchors each compiled step with
//! the best selector the recorded frame supports: name > label > point.
//! Index anchors sit between label and point (they survive pure geometry
//! but break on any insertion/reorder); the compiler never emits them,
//! but the ordering covers hand-authored scripts too.

use eclair_gui::{Page, WidgetId};

use crate::selector::Selector;

/// Relative drift resistance of a selector kind; higher survives more
/// drift classes. The total order the compiler optimizes and the
/// proptests in `tests/drift_resistance.rs` pin:
/// name (3) > label (2) > index (1) > point (0).
pub fn drift_resistance(s: &Selector) -> u8 {
    match s {
        Selector::ByName(_) => 3,
        Selector::ByLabel(_) => 2,
        Selector::ByIndex(_) => 1,
        Selector::ByPoint(_) => 0,
    }
}

/// Choose the most drift-resistant anchor for widget `id` as currently
/// shown: its programmatic name when that name uniquely resolves back to
/// it, else its visible label when *that* resolves back, else the
/// recorded viewport coordinates (`scroll_y` converts page space to the
/// viewport space [`Selector::ByPoint`] expects). The resolve-back check
/// matters: an ambiguous label would silently anchor a different widget
/// at run time, which is exactly the mis-authoring class the careful
/// path exists to avoid.
pub fn best_selector(page: &Page, scroll_y: i32, id: WidgetId) -> Selector {
    let w = page.get(id);
    if !w.name.is_empty() && page.find_by_name(&w.name) == Some(id) {
        return Selector::ByName(w.name.to_string());
    }
    if !w.label.is_empty() && page.find_by_label(&w.label, true) == Some(id) {
        return Selector::ByLabel(w.label.to_string());
    }
    Selector::ByPoint(w.bounds.center().offset(0, -scroll_y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::Point;
    use eclair_sites::Site;

    #[test]
    fn resistance_ordering_is_name_label_index_point() {
        let name = drift_resistance(&Selector::ByName("n".into()));
        let label = drift_resistance(&Selector::ByLabel("l".into()));
        let index = drift_resistance(&Selector::ByIndex(0));
        let point = drift_resistance(&Selector::ByPoint(Point { x: 0, y: 0 }));
        assert!(name > label && label > index && index > point);
    }

    #[test]
    fn best_selector_prefers_unique_names() {
        let s = Site::Gitlab.launch();
        let id = s.page().find_by_name("nav-profile").unwrap();
        let sel = best_selector(s.page(), s.scroll_y(), id);
        assert_eq!(sel, Selector::ByName("nav-profile".into()));
        assert_eq!(sel.resolve(&s), Some(id), "chosen anchor must resolve back");
    }

    #[test]
    fn best_selector_always_resolves_back_to_its_widget() {
        for site in [Site::Gitlab, Site::Magento, Site::Erp, Site::Payer] {
            let s = site.launch();
            for id in s.page().interactive_widgets() {
                let sel = best_selector(s.page(), s.scroll_y(), id);
                assert_eq!(
                    sel.resolve(&s),
                    Some(id),
                    "{site:?}: {} must resolve back",
                    sel.describe()
                );
            }
        }
    }
}

//! RPA scripts: compiled rule sequences.
//!
//! A script is authored once against the UI as it looked on authoring day
//! (§3.2: "each workflow had to be manually mapped and coded into a set of
//! well-defined, 'always true' actions"). The compiler turns a gold
//! semantic trace into selector-anchored steps; an authoring configuration
//! controls how anchors are chosen and how imperfect the first version is
//! (initial deployments started at ~60% accuracy in the case study).

use rand::Rng;
use serde::{Deserialize, Serialize};

use eclair_gui::Session;
use eclair_workflow::replay::{resolve_pref, KindPref};
use eclair_workflow::{Action, TargetRef};

use crate::selector::Selector;

/// The operation a step performs on its resolved element.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RpaOp {
    /// Click the element.
    Click,
    /// Focus and type.
    Type(String),
    /// Clear then type.
    Replace(String),
}

/// One compiled step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpaStep {
    /// The anchor.
    pub selector: Selector,
    /// The operation.
    pub op: RpaOp,
}

/// A compiled script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RpaScript {
    /// Workflow name.
    pub name: String,
    /// Steps in order.
    pub steps: Vec<RpaStep>,
}

/// Authoring configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AuthoringConfig {
    /// Fraction of anchors recorded as raw coordinates instead of
    /// name/label selectors (lazy authoring — common in real deployments
    /// and the most brittle choice).
    pub point_anchor_fraction: f64,
    /// Fraction of anchors recorded as visible labels (breaks on
    /// relabeling).
    pub label_anchor_fraction: f64,
    /// Probability a step is mis-authored outright (wrong element picked
    /// in the studio — the source of the 60% day-one accuracy).
    pub authoring_error_rate: f64,
}

impl Default for AuthoringConfig {
    fn default() -> Self {
        Self {
            point_anchor_fraction: 0.25,
            label_anchor_fraction: 0.35,
            authoring_error_rate: 0.0,
        }
    }
}

impl AuthoringConfig {
    /// A careful authoring pass: everything anchored by automation id.
    pub fn careful() -> Self {
        Self {
            point_anchor_fraction: 0.0,
            label_anchor_fraction: 0.0,
            authoring_error_rate: 0.0,
        }
    }

    /// A rushed first deployment (§3.2's 60%-accurate day one).
    pub fn rushed() -> Self {
        Self {
            point_anchor_fraction: 0.4,
            label_anchor_fraction: 0.35,
            authoring_error_rate: 0.12,
        }
    }
}

/// Compile a gold trace into a script by "recording" it against a live
/// session: each semantic action is executed (oracle-grounded) so anchors
/// can capture the on-screen geometry of authoring day.
pub fn compile<R: Rng>(
    name: &str,
    session: &mut Session,
    trace: &[Action],
    cfg: AuthoringConfig,
    rng: &mut R,
) -> RpaScript {
    let mut steps = Vec::with_capacity(trace.len());
    for action in trace {
        let (target, op, pref) = match action {
            Action::Click(t) => (Some(t.clone()), RpaOp::Click, KindPref::Activatable),
            Action::Type {
                target: Some(t),
                text,
            } => (
                Some(t.clone()),
                RpaOp::Type(text.clone()),
                KindPref::Editable,
            ),
            Action::Type { target: None, text } => {
                (None, RpaOp::Type(text.clone()), KindPref::Editable)
            }
            Action::Replace { target, text } => (
                Some(target.clone()),
                RpaOp::Replace(text.clone()),
                KindPref::Editable,
            ),
            // Presses/scrolls are handled by oracle replay during recording
            // and need no anchor; real RPA encodes them as key commands.
            Action::Press(_) | Action::Scroll(_) => (None, RpaOp::Click, KindPref::Any),
        };
        if let Some(target) = target {
            let selector = anchor_for(session, &target, pref, cfg, rng);
            steps.push(RpaStep {
                selector,
                op: op.clone(),
            });
        }
        // Advance the recording so later anchors see the right screen.
        let _ = eclair_workflow::replay::execute(session, action);
    }
    RpaScript {
        name: name.into(),
        steps,
    }
}

fn anchor_for<R: Rng>(
    session: &Session,
    target: &TargetRef,
    pref: KindPref,
    cfg: AuthoringConfig,
    rng: &mut R,
) -> Selector {
    let resolved = resolve_pref(session, target, pref);
    // Mis-authored step: anchor a *different* interactive element.
    let resolved = if rng.gen_bool(cfg.authoring_error_rate) {
        let all = session.page().interactive_widgets();
        if all.is_empty() {
            resolved
        } else {
            Some(all[rng.gen_range(0..all.len())])
        }
    } else {
        resolved
    };
    let Some(id) = resolved else {
        // Could not resolve at authoring time: record the raw intent.
        return match target {
            TargetRef::Name(n) => Selector::ByName(n.clone()),
            TargetRef::Label(l) => Selector::ByLabel(l.clone()),
            TargetRef::Point(p) => Selector::ByPoint(*p),
        };
    };
    let w = session.page().get(id);
    let roll: f64 = rng.gen();
    if roll < cfg.point_anchor_fraction {
        Selector::ByPoint(w.bounds.center().offset(0, -session.scroll_y()))
    } else if roll < cfg.point_anchor_fraction + cfg.label_anchor_fraction && !w.label.is_empty() {
        Selector::ByLabel(w.label.to_string())
    } else if !w.name.is_empty() {
        Selector::ByName(w.name.to_string())
    } else {
        Selector::ByPoint(w.bounds.center().offset(0, -session.scroll_y()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_sites::tasks::all_tasks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn careful_compilation_yields_name_anchors() {
        let task = &all_tasks()[0];
        let mut session = task.launch();
        let mut rng = StdRng::seed_from_u64(1);
        let script = compile(
            &task.id,
            &mut session,
            &task.gold_trace.actions,
            AuthoringConfig::careful(),
            &mut rng,
        );
        assert!(!script.steps.is_empty());
        assert!(
            script
                .steps
                .iter()
                .all(|s| matches!(s.selector, Selector::ByName(_))),
            "careful config anchors by name: {:?}",
            script.steps
        );
    }

    #[test]
    fn default_compilation_mixes_anchor_kinds() {
        let mut kinds = std::collections::HashSet::new();
        for (i, task) in all_tasks().iter().enumerate() {
            let mut session = task.launch();
            let mut rng = StdRng::seed_from_u64(i as u64);
            let script = compile(
                &task.id,
                &mut session,
                &task.gold_trace.actions,
                AuthoringConfig::default(),
                &mut rng,
            );
            for s in script.steps {
                kinds.insert(std::mem::discriminant(&s.selector));
            }
        }
        assert!(kinds.len() >= 3, "expected a mix of anchor kinds");
    }

    #[test]
    fn compilation_is_deterministic() {
        let task = &all_tasks()[3];
        let build = |seed| {
            let mut session = task.launch();
            let mut rng = StdRng::seed_from_u64(seed);
            compile(
                &task.id,
                &mut session,
                &task.gold_trace.actions,
                AuthoringConfig::default(),
                &mut rng,
            )
        };
        assert_eq!(build(9), build(9));
    }
}

//! Proptests pinning the drift-resistance ordering the hybrid compiler
//! optimizes (`eclair_rpa::scoring`): name and label anchors survive
//! layout drift — both the persistent kind (quarterly banners shifting
//! every widget down) and the chaos `LayoutShift` fault (a one-shot
//! click displacement) — while position anchors break as soon as the
//! geometry moves under them.

use eclair_chaos::{ChaosProfile, ChaosSchedule, ChaosSession, FaultKind};
use eclair_gui::surface::GuiSurface;
use eclair_gui::{DriftOp, Theme, UserEvent};
use eclair_rpa::{best_selector, drift_resistance, Selector};
use eclair_sites::Site;
use proptest::prelude::*;

/// Banner texts a "quarterly update" might ship (fixed pool keeps the
/// generated themes deterministic and plausible).
const BANNERS: [&str; 4] = [
    "New: dark mode is here! Try it from your profile.",
    "Scheduled maintenance this Saturday 02:00-04:00 UTC.",
    "We've updated our terms of service. Review the changes.",
    "Try the new navigation — switch back any time in settings.",
];

const SITES: [Site; 4] = [Site::Gitlab, Site::Magento, Site::Erp, Site::Payer];

fn site_strategy() -> impl Strategy<Value = Site> {
    (0..SITES.len()).prop_map(|i| SITES[i])
}

fn banner_theme(picks: &[usize]) -> Theme {
    Theme::with_ops(
        picks
            .iter()
            .map(|&i| DriftOp::InsertBanner {
                text: BANNERS[i % BANNERS.len()].into(),
            })
            .collect(),
    )
}

proptest! {
    /// Name and label anchors recorded on the pristine UI keep resolving
    /// to equivalent widgets after any stack of layout-shifting banners.
    #[test]
    fn name_and_label_anchors_survive_layout_shifting_banners(
        site in site_strategy(),
        picks in proptest::collection::vec(0..BANNERS.len(), 1..4),
    ) {
        let pristine = site.launch();
        let anchors: Vec<(String, String)> = {
            let page = pristine.page();
            page.interactive_widgets()
                .into_iter()
                .filter(|&id| {
                    let w = page.get(id);
                    // Only anchors that resolved unambiguously on
                    // authoring day are worth pinning.
                    !w.name.is_empty() && page.find_by_name(&w.name) == Some(id)
                })
                .map(|id| {
                    let w = page.get(id);
                    (w.name.to_string(), w.label.to_string())
                })
                .collect()
        };
        prop_assert!(!anchors.is_empty());
        let drifted = site.launch_with_theme(banner_theme(&picks));
        for (name, label) in anchors {
            let hit = Selector::ByName(name.clone()).resolve(&drifted);
            prop_assert!(hit.is_some(), "{site:?}: name={name} lost under banners");
            prop_assert_eq!(&drifted.page().get(hit.unwrap()).name, &name);
            if !label.trim().is_empty() {
                let hit = Selector::ByLabel(label.clone()).resolve(&drifted);
                prop_assert!(hit.is_some(), "{site:?}: label='{label}' lost under banners");
                let got = drifted.page().get(hit.unwrap()).label.trim().to_lowercase();
                prop_assert_eq!(got, label.trim().to_lowercase());
            }
        }
    }

    /// Point anchors recorded on the pristine UI stop resolving to their
    /// widget once a banner moves it: whenever the recorded point falls
    /// outside the widget's drifted bounds the point anchor misses it,
    /// and every banner stack breaks at least one point anchor that the
    /// matching name anchor still resolves.
    #[test]
    fn point_anchors_break_when_banners_move_the_geometry(
        site in site_strategy(),
        picks in proptest::collection::vec(0..BANNERS.len(), 1..4),
    ) {
        let pristine = site.launch();
        let recorded: Vec<(String, eclair_gui::Point)> = {
            let page = pristine.page();
            page.interactive_widgets()
                .into_iter()
                .filter(|&id| {
                    let w = page.get(id);
                    !w.name.is_empty() && page.find_by_name(&w.name) == Some(id)
                })
                .map(|id| {
                    let w = page.get(id);
                    // scroll_y is 0 at launch, so viewport == page space.
                    (w.name.to_string(), w.bounds.center())
                })
                .collect()
        };
        let drifted = site.launch_with_theme(banner_theme(&picks));
        let mut broken = 0usize;
        for (name, pt) in recorded {
            let by_name = Selector::ByName(name.clone()).resolve(&drifted);
            prop_assert!(by_name.is_some());
            let id = by_name.unwrap();
            let by_point = Selector::ByPoint(pt).resolve(&drifted);
            if !drifted.page().get(id).bounds.contains(pt) {
                prop_assert_ne!(
                    by_point, Some(id),
                    "{site:?}: point anchor for {name} must miss its moved widget"
                );
            }
            if by_point != Some(id) {
                broken += 1;
            }
        }
        prop_assert!(broken > 0, "{site:?}: banners must break some point anchor");
    }

    /// The chaos `LayoutShift` fault displaces the next click without
    /// touching the page, so name resolution (and the re-resolve + re-aim
    /// a selector bot can do) survives while a blind click at recorded
    /// coordinates lands off its widget.
    #[test]
    fn chaos_layout_shift_breaks_blind_clicks_but_not_name_resolution(
        site in site_strategy(),
        chaos_seed in 0u64..u64::MAX,
        run_id in 0u64..64,
    ) {
        let schedule = ChaosSchedule::new(
            ChaosProfile::only(chaos_seed, 1.0, FaultKind::LayoutShift),
            run_id,
        );
        let mut s = ChaosSession::new(site.app(), schedule);
        let shift = s.schedule().fault_at(1).expect("rate 1.0 always arms").shift_px;
        prop_assert!(shift > 0);
        // A short target: the displaced click must clear its bounds.
        let target = {
            let page = s.page();
            page.interactive_widgets().into_iter().find_map(|id| {
                let w = page.get(id);
                (!w.name.is_empty()
                    && page.find_by_name(&w.name) == Some(id)
                    && (w.bounds.h as i32) < shift)
                    .then(|| (w.name.to_string(), w.bounds.center()))
            })
        };
        prop_assume!(target.is_some());
        let (name, center) = target.unwrap();
        s.begin_step(1);
        // The fault leaves the page untouched: the name anchor still
        // resolves (this is what lets the hybrid executor re-aim).
        let by_name = Selector::ByName(name.clone()).resolve_in(s.page(), s.scroll_y());
        prop_assert!(by_name.is_some());
        // ...but the blind click recorded pre-shift lands off the widget.
        let d = s.dispatch(UserEvent::Click(center.offset(0, -s.scroll_y())));
        let landed_on_target = d.hit.as_ref().is_some_and(|(n, _)| n == &name);
        prop_assert!(
            !landed_on_target,
            "{site:?}: click displaced by {shift}px must miss {name}"
        );
    }

    /// `best_selector` never settles for a less drift-resistant anchor
    /// when a more resistant one would resolve back to the same widget.
    #[test]
    fn best_selector_maximizes_drift_resistance(site in site_strategy()) {
        let s = site.launch();
        let page = s.page();
        for id in page.interactive_widgets() {
            let w = page.get(id);
            let chosen = best_selector(page, s.scroll_y(), id);
            prop_assert_eq!(chosen.resolve(&s), Some(id));
            for cand in [
                (!w.name.is_empty()).then(|| Selector::ByName(w.name.to_string())),
                (!w.label.is_empty()).then(|| Selector::ByLabel(w.label.to_string())),
            ]
            .into_iter()
            .flatten()
            {
                if drift_resistance(&cand) > drift_resistance(&chosen) {
                    prop_assert_ne!(
                        cand.resolve(&s),
                        Some(id),
                        "{:?}: skipped a stronger anchor {} for {}",
                        site,
                        cand.describe(),
                        chosen.describe()
                    );
                }
            }
        }
    }
}

//! A single-pass flow layout engine with an incremental core.
//!
//! Deliberately simple — vertical stacks, horizontal rows, intrinsic leaf
//! sizes, fixed-width table cells, centered modal overlays — but it computes
//! real, stable pixel rectangles for every widget, which is all the
//! downstream vision/grounding experiments require. Geometry shifts caused
//! by theme drift (padding changes, injected banners) fall out naturally:
//! they move every subsequent widget, which is what breaks position-based
//! RPA selectors.
//!
//! Three perf layers sit on top of the walk, none of which may change a
//! single computed pixel:
//!
//! 1. **Scratch pooling** — per-walk allocations (child id stacks, the
//!    write log) come from a thread-local scratch reused across walks and
//!    truncated wholesale at the end, the scoped-arena discipline.
//! 2. **A global layout cache** — a full walk reads only a small slice of
//!    each widget (kind / visibility / level / fixed size / label /
//!    children), so its output is a pure function of a cheap signature
//!    over interned ids. The cache replays the exact bounds writes of an
//!    earlier identical walk (the write log, not a bounds-per-slot dump,
//!    so widgets the walk never touched keep their stale bounds exactly
//!    as a real walk would leave them). Lookups compute inside the lock,
//!    so each unique signature misses exactly once even under a
//!    multi-worker fleet and the aggregate counters stay deterministic.
//! 3. **Dirty-subtree relayout** — pages re-place only mutated nodes at
//!    their recorded flow inputs, escalating to the parent only when a
//!    node's measured box actually changed, and falling back to a full
//!    (cached) walk when escalation reaches the root.
//!
//! `ECLAIR_NO_CACHE=1` bypasses the cache (checked per walk, so a harness
//! can flip it between legs), and [`scoped_cache_off`] bypasses it for one
//! session on one thread, mirroring `Session::set_cache_enabled`.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use eclair_trace::perf;

use crate::geometry::{Rect, Size};
use crate::widget::{LayIn, Widget, WidgetId, WidgetKind};

/// Approximate glyph advance width in pixels for body text.
pub const CHAR_W: u32 = 8;
/// Body-line height in pixels.
pub const LINE_H: u32 = 20;
/// Root page padding.
pub const PAGE_PAD: u32 = 16;
/// Vertical gap between stacked siblings.
pub const V_GAP: u32 = 10;
/// Horizontal gap between row siblings.
pub const H_GAP: u32 = 12;
/// Page (and viewport) width.
pub const PAGE_W: u32 = 1280;
/// Modal dialog width.
pub const MODAL_W: u32 = 520;

/// Entries the layout cache refuses to grow past. No eviction: page
/// signatures repeat heavily (that is the whole point), so a cap merely
/// bounds a pathological workload without perturbing steady-state counts.
const LAYOUT_CACHE_CAP: usize = 8192;

fn text_width(s: &str, char_w: u32) -> u32 {
    s.chars().count() as u32 * char_w
}

/// Per-thread scratch reused across layout walks: the child-id stack the
/// container pass iterates (replacing a per-container `Vec` clone) and the
/// bounds write log. Freed wholesale (truncated) when a walk finishes;
/// capacity persists.
#[derive(Default)]
struct Scratch {
    kids: Vec<WidgetId>,
    log: Vec<WriteEntry>,
}

#[derive(Clone, Copy)]
struct WriteEntry {
    slot: u32,
    bounds: Rect,
    layin: LayIn,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
    static CACHE_OFF_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// RAII guard disabling the layout cache on this thread while held.
/// Mirrors `Session::set_cache_enabled(false)`: the session's layouts run
/// for real without poking the process-wide cache.
pub struct LayoutCacheOff(());

/// Disable the layout cache on this thread until the guard drops.
pub fn scoped_cache_off() -> LayoutCacheOff {
    CACHE_OFF_DEPTH.with(|d| d.set(d.get() + 1));
    LayoutCacheOff(())
}

impl Drop for LayoutCacheOff {
    fn drop(&mut self) {
        CACHE_OFF_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

pub(crate) fn cache_bypassed() -> bool {
    // Re-read the env every walk: perf_bench flips ECLAIR_NO_CACHE between
    // legs of one process.
    std::env::var_os("ECLAIR_NO_CACHE").is_some() || CACHE_OFF_DEPTH.with(|d| d.get() > 0)
}

struct CacheEntry {
    writes: Vec<WriteEntry>,
    content_height: u32,
}

fn layout_cache() -> &'static Mutex<HashMap<u64, Arc<CacheEntry>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<CacheEntry>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

#[inline]
fn fnv(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Signature over exactly the widget fields a layout walk reads: kind,
/// visibility, heading level, pinned sizes, label (as its interned id —
/// equal ids iff equal strings, so this is collision-free by construction
/// for the label part), and child topology. Values, names, placeholders,
/// options, and enabled flags are invisible to layout and deliberately
/// excluded — editing a field must not change the page's layout identity.
fn layout_sig(widgets: &[Widget], root: WidgetId) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv(h, root.0 as u64);
    h = fnv(h, widgets.len() as u64);
    for w in widgets {
        h = fnv(
            h,
            (w.kind as u64)
                | ((w.visible as u64) << 8)
                | ((w.level as u64) << 16)
                | ((w.label.id() as u64) << 32),
        );
        h = fnv(
            h,
            (w.fixed_w.map_or(0, |v| v as u64 + 1)) | (w.fixed_h.map_or(0, |v| v as u64 + 1) << 32),
        );
        h = fnv(h, w.children.len() as u64);
        for c in &w.children {
            h = fnv(h, c.0 as u64);
        }
    }
    h
}

/// Lay out the arena starting at `root`; fills every widget's `bounds` in
/// page coordinates and returns the total content height.
///
/// Served from the global layout cache when an identical walk already ran
/// (`layout_cache_hits`); otherwise the full walk runs (`relayouts_full`)
/// and its write log is cached for replay.
pub fn layout_page(widgets: &mut [Widget], root: WidgetId) -> u32 {
    if cache_bypassed() {
        perf::record(|c| c.relayouts_full += 1);
        return SCRATCH.with(|s| {
            let scratch = &mut *s.borrow_mut();
            scratch.log.clear();
            let h = walk_page(widgets, root, scratch);
            scratch.kids.clear();
            scratch.log.clear();
            h
        });
    }
    let sig = layout_sig(widgets, root);
    let mut cache = layout_cache().lock().expect("layout cache poisoned");
    if let Some(entry) = cache.get(&sig).cloned() {
        drop(cache);
        for e in &entry.writes {
            let w = &mut widgets[e.slot as usize];
            w.bounds = e.bounds;
            w.layin = e.layin;
        }
        perf::record(|c| c.layout_cache_hits += 1);
        return entry.content_height;
    }
    // Compute inside the lock: concurrent walks of the same signature
    // coalesce into one miss, keeping fleet-merged counts deterministic.
    let h = SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        scratch.log.clear();
        let h = walk_page(widgets, root, scratch);
        if cache.len() < LAYOUT_CACHE_CAP {
            cache.insert(
                sig,
                Arc::new(CacheEntry {
                    writes: scratch.log.clone(),
                    content_height: h,
                }),
            );
        }
        scratch.kids.clear();
        scratch.log.clear();
        h
    });
    perf::record(|c| c.relayouts_full += 1);
    h
}

/// The outcome of a dirty-subtree pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PartialOutcome {
    /// All dirty nodes re-placed in place; no ancestor box changed, so the
    /// rest of the page (and the content height) is untouched.
    Done,
    /// Escalation reached the root: the caller must run a full
    /// [`layout_page`] walk.
    NeedsFull,
}

/// Re-place only the dirty slots (and any ancestors whose measured box
/// changed), leaving every other widget's bounds byte-identical to what a
/// full walk would produce. `toasts_dirty` forces the floating toast stack
/// to be restacked (set when a toast was removed from the tree).
pub(crate) fn relayout_dirty(
    widgets: &mut [Widget],
    dirty: &[u32],
    toasts_dirty: bool,
) -> PartialOutcome {
    let mut visited = 0u64;
    let mut did_work = false;
    let mut restack_toasts = toasts_dirty;
    let mut outcome = PartialOutcome::Done;
    SCRATCH.with(|s| {
        let scratch = &mut *s.borrow_mut();
        'next: for &slot in dirty {
            // An enclosing dirty node will re-place this subtree anyway.
            let mut p = widgets[slot as usize].parent;
            while let Some(pid) = p {
                if dirty.contains(&pid.0) {
                    continue 'next;
                }
                p = widgets[pid.index()].parent;
            }
            // Nodes inside an invisible subtree are unreachable by a full
            // walk; it would leave their bounds untouched, so we must too.
            let mut p = widgets[slot as usize].parent;
            while let Some(pid) = p {
                let pw = &widgets[pid.index()];
                if !pw.visible {
                    continue 'next;
                }
                p = pw.parent;
            }
            let mut cur = slot;
            loop {
                let w = &widgets[cur as usize];
                if w.parent.is_none() {
                    // Re-placing the root is a full walk; route it through
                    // the cached path instead.
                    outcome = PartialOutcome::NeedsFull;
                    return;
                }
                match w.kind {
                    WidgetKind::Toast => {
                        // Toast geometry depends on the whole stack.
                        restack_toasts = true;
                        continue 'next;
                    }
                    // A hidden modal is skipped by both the flow and the
                    // overlay pass; a full walk leaves its bounds stale.
                    WidgetKind::Modal if !w.visible => continue 'next,
                    _ => {}
                }
                let layin = w.layin;
                let parent = w.parent;
                if !layin.valid {
                    // Never placed (fresh insert): the parent's flow must
                    // position it.
                    cur = parent.expect("checked above").0;
                    continue;
                }
                let old = w.bounds;
                let overlay = w.kind == WidgetKind::Modal;
                let size = place(
                    widgets,
                    scratch,
                    WidgetId(cur),
                    layin.x,
                    layin.y,
                    layin.avail_w,
                );
                visited += 1;
                did_work = true;
                // Modals are out of flow: their box never displaces
                // siblings, so a size change stops here.
                if overlay || (size.w == old.w && size.h == old.h) {
                    break;
                }
                cur = parent.expect("checked above").0;
            }
        }
        if restack_toasts {
            place_toasts(widgets, scratch);
            did_work = true;
        }
        scratch.kids.clear();
        scratch.log.clear();
    });
    if outcome == PartialOutcome::Done {
        perf::record(|c| {
            if did_work {
                c.relayouts_partial += 1;
            }
            c.dirty_nodes_visited += visited;
        });
    }
    outcome
}

/// The uncached full walk: flow pass from the root, then the modal and
/// toast overlay passes. Every bounds write goes through the scratch log
/// so a cache entry can replay it exactly.
fn walk_page(widgets: &mut [Widget], root: WidgetId, scratch: &mut Scratch) -> u32 {
    let avail = PAGE_W - 2 * PAGE_PAD;
    let used = place(
        widgets,
        scratch,
        root,
        PAGE_PAD as i32,
        PAGE_PAD as i32,
        avail,
    );
    // Overlay pass: modals are centered over the content, not in flow.
    let modal_start = scratch.kids.len();
    scratch.kids.extend(
        widgets
            .iter()
            .filter(|w| w.kind == WidgetKind::Modal && w.visible)
            .map(|w| w.id),
    );
    for i in modal_start..scratch.kids.len() {
        let m = scratch.kids[i];
        let x = ((PAGE_W - MODAL_W) / 2) as i32;
        place(widgets, scratch, m, x, 140, MODAL_W);
    }
    scratch.kids.truncate(modal_start);
    place_toasts(widgets, scratch);
    used.h + 2 * PAGE_PAD
}

/// Toasts float at the top-right, stacked, without reflowing content.
fn place_toasts(widgets: &mut [Widget], scratch: &mut Scratch) {
    let start = scratch.kids.len();
    scratch.kids.extend(
        widgets
            .iter()
            .filter(|w| w.kind == WidgetKind::Toast && w.visible)
            .map(|w| w.id),
    );
    let mut toast_y = 16i32;
    for i in start..scratch.kids.len() {
        let t = scratch.kids[i];
        let size = leaf_size(&widgets[t.index()], 480);
        let x = PAGE_W as i32 - size.w as i32 - 24;
        set_bounds(
            widgets,
            scratch,
            t.0,
            Rect::new(x, toast_y, size.w, size.h),
            LayIn {
                x,
                y: toast_y,
                avail_w: 480,
                valid: true,
            },
        );
        toast_y += size.h as i32 + 8;
    }
    scratch.kids.truncate(start);
}

#[inline]
fn set_bounds(
    widgets: &mut [Widget],
    scratch: &mut Scratch,
    slot: u32,
    bounds: Rect,
    layin: LayIn,
) {
    let w = &mut widgets[slot as usize];
    w.bounds = bounds;
    w.layin = layin;
    scratch.log.push(WriteEntry {
        slot,
        bounds,
        layin,
    });
}

/// Recursively place `id` at (x, y) with `avail_w` of horizontal room.
/// Returns the size consumed.
fn place(
    widgets: &mut [Widget],
    scratch: &mut Scratch,
    id: WidgetId,
    x: i32,
    y: i32,
    avail_w: u32,
) -> Size {
    let (kind, visible, fixed_w, has_children) = {
        let w = &widgets[id.index()];
        (w.kind, w.visible, w.fixed_w, !w.children.is_empty())
    };
    let layin = LayIn {
        x,
        y,
        avail_w,
        valid: true,
    };
    if !visible {
        set_bounds(widgets, scratch, id.0, Rect::new(x, y, 0, 0), layin);
        return Size::new(0, 0);
    }
    // A pinned width constrains the widget and everything inside it.
    let avail_w = fixed_w.map(|f| f.min(avail_w)).unwrap_or(avail_w);
    // Table cells holding widgets (e.g. a link) lay out as containers.
    let as_container = kind.is_container() || (kind == WidgetKind::TableCell && has_children);
    let size = if as_container {
        place_container(widgets, scratch, id, x, y, avail_w, kind)
    } else {
        leaf_size(&widgets[id.index()], avail_w)
    };
    set_bounds(
        widgets,
        scratch,
        id.0,
        Rect::new(x, y, size.w, size.h),
        layin,
    );
    size
}

#[allow(clippy::too_many_arguments)]
fn place_container(
    widgets: &mut [Widget],
    scratch: &mut Scratch,
    id: WidgetId,
    x: i32,
    y: i32,
    avail_w: u32,
    kind: WidgetKind,
) -> Size {
    let (pad, gap_v, gap_h, horizontal) = match kind {
        WidgetKind::Row => (0u32, 0u32, H_GAP, true),
        WidgetKind::TableRow => (0, 0, 0, true),
        WidgetKind::Modal => (20, V_GAP, H_GAP, false),
        WidgetKind::Root => (0, V_GAP, H_GAP, false),
        _ => (0, V_GAP, H_GAP, false),
    };
    // Children go onto the shared scratch stack (a range per recursion
    // level) instead of a cloned Vec per container.
    let start = scratch.kids.len();
    scratch
        .kids
        .extend_from_slice(widgets[id.index()].children.as_slice());
    let end = scratch.kids.len();
    let inner_w = avail_w.saturating_sub(2 * pad).max(CHAR_W);
    let mut cx = x + pad as i32;
    let mut cy = y + pad as i32;
    let mut max_w = 0u32;
    let mut max_h = 0u32;
    let mut first = true;
    for i in start..end {
        let child = scratch.kids[i];
        let ck = widgets[child.index()].kind;
        if ck == WidgetKind::Modal || ck == WidgetKind::Toast {
            continue; // the overlay pass places modals and toasts
        }
        if !widgets[child.index()].visible {
            set_bounds(
                widgets,
                scratch,
                child.0,
                Rect::new(cx, cy, 0, 0),
                // Not a real placement: un-hiding must escalate to this
                // container, which knows the true flow position.
                LayIn {
                    x: cx,
                    y: cy,
                    avail_w: 0,
                    valid: false,
                },
            );
            continue;
        }
        if horizontal {
            if !first {
                cx += gap_h as i32;
            }
            let remaining = (x + pad as i32 + inner_w as i32 - cx).max(CHAR_W as i32) as u32;
            let s = place(widgets, scratch, child, cx, cy, remaining);
            cx += s.w as i32;
            max_h = max_h.max(s.h);
            max_w = ((cx - x) as u32).saturating_sub(pad);
        } else {
            if !first {
                cy += gap_v as i32;
            }
            let s = place(widgets, scratch, child, cx, cy, inner_w);
            cy += s.h as i32;
            max_w = max_w.max(s.w);
            max_h = ((cy - y) as u32).saturating_sub(pad);
        }
        first = false;
    }
    scratch.kids.truncate(start);
    let w = match kind {
        WidgetKind::Row | WidgetKind::TableRow => max_w + 2 * pad,
        // Sections and forms shrink-wrap their content so that, inside a
        // row, a labelled input does not shove its siblings off-screen.
        WidgetKind::Section | WidgetKind::Form => (max_w + 2 * pad).min(avail_w),
        // Root, modals, and table cells span what they are given.
        _ => avail_w,
    };
    let h = max_h + 2 * pad;
    Size::new(w.min(avail_w.max(w)), h)
}

/// Intrinsic pixel size of a leaf widget given available width.
fn leaf_size(w: &Widget, avail_w: u32) -> Size {
    let label_len = w.label.chars().count() as u32;
    match w.kind {
        WidgetKind::Heading => {
            let (char_w, h) = match w.level {
                1 => (14, 44),
                2 => (11, 34),
                _ => (9, 26),
            };
            Size::new(text_width(&w.label, char_w).min(avail_w).max(CHAR_W), h)
        }
        WidgetKind::Text => {
            let total = text_width(&w.label, CHAR_W).max(CHAR_W);
            let per_line = avail_w.max(CHAR_W);
            let lines = total.div_ceil(per_line).max(1);
            Size::new(total.min(per_line), lines * LINE_H)
        }
        WidgetKind::Button => {
            let w_px = w.fixed_w.unwrap_or((label_len * CHAR_W + 36).max(64));
            Size::new(w_px.min(avail_w), w.fixed_h.unwrap_or(34))
        }
        WidgetKind::Link => Size::new(
            (label_len * CHAR_W).max(CHAR_W).min(avail_w),
            w.fixed_h.unwrap_or(LINE_H),
        ),
        WidgetKind::Icon => Size::new(w.fixed_w.unwrap_or(26), w.fixed_h.unwrap_or(26)),
        WidgetKind::TextInput | WidgetKind::PasswordInput | WidgetKind::Select => Size::new(
            w.fixed_w.unwrap_or(360).min(avail_w),
            w.fixed_h.unwrap_or(34),
        ),
        WidgetKind::TextArea => Size::new(
            w.fixed_w.unwrap_or(560).min(avail_w),
            w.fixed_h.unwrap_or(110),
        ),
        WidgetKind::Checkbox | WidgetKind::Radio => {
            Size::new((22 + 8 + label_len * CHAR_W).min(avail_w), 24)
        }
        WidgetKind::MenuItem => Size::new(
            w.fixed_w
                .unwrap_or((label_len * CHAR_W + 24).max(140))
                .min(avail_w),
            28,
        ),
        WidgetKind::Tab => Size::new((label_len * CHAR_W + 28).min(avail_w), 38),
        WidgetKind::Badge => Size::new((label_len * 7 + 18).min(avail_w), 22),
        WidgetKind::Toast => Size::new((text_width(&w.label, CHAR_W) + 28).min(avail_w), 36),
        WidgetKind::Image => Size::new(
            w.fixed_w.unwrap_or(160).min(avail_w),
            w.fixed_h.unwrap_or(120),
        ),
        WidgetKind::Divider => Size::new(avail_w, 9),
        WidgetKind::TableCell => {
            // Cells are sized by the table builder; bare cells get a line.
            Size::new(w.fixed_w.unwrap_or(100).min(avail_w), 28)
        }
        // Containers never reach here.
        _ => Size::new(avail_w, LINE_H),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::PageBuilder;

    #[test]
    fn stacked_children_do_not_overlap_vertically() {
        let mut b = PageBuilder::new("t", "/t");
        b.heading(1, "Title");
        b.text("Some body text");
        b.button("go", "Go");
        let p = b.finish();
        let ids: Vec<_> = p.iter().filter(|w| !w.kind.is_container()).collect();
        for pair in ids.windows(2) {
            assert!(
                pair[1].bounds.y >= pair[0].bounds.bottom(),
                "{:?} overlaps {:?}",
                pair[1].kind,
                pair[0].kind
            );
        }
    }

    #[test]
    fn row_children_flow_left_to_right() {
        let mut b = PageBuilder::new("t", "/t");
        b.row(|b| {
            b.button("a", "Alpha");
            b.button("bb", "Beta");
            b.link("c", "Gamma");
        });
        let p = b.finish();
        let a = p.get(p.find_by_name("a").unwrap()).bounds;
        let bb = p.get(p.find_by_name("bb").unwrap()).bounds;
        let c = p.get(p.find_by_name("c").unwrap()).bounds;
        assert!(bb.x >= a.right());
        assert!(c.x >= bb.right());
        assert_eq!(a.y, bb.y);
    }

    #[test]
    fn everything_within_page_width() {
        let mut b = PageBuilder::new("t", "/t");
        b.heading(1, "A heading");
        b.form("f", |b| {
            b.text_input("x", "Field", "hint");
            b.textarea("y", "Area", "hint");
        });
        b.table(
            &["A", "B", "C"],
            &[vec![
                ("1".into(), None),
                ("2".into(), None),
                ("3".into(), None),
            ]],
        );
        let p = b.finish();
        for w in p.visible_iter() {
            assert!(
                w.bounds.right() <= PAGE_W as i32,
                "{:?} '{}' exceeds page width: {:?}",
                w.kind,
                w.label,
                w.bounds
            );
        }
    }

    #[test]
    fn modal_is_centered_overlay() {
        let mut b = PageBuilder::new("t", "/t");
        b.text("content");
        b.modal("m", |b| {
            b.text("dialog body");
            b.button("ok", "OK");
        });
        let p = b.finish();
        let m = p.get(p.find_by_name("m").unwrap()).bounds;
        assert_eq!(m.x, ((PAGE_W - MODAL_W) / 2) as i32);
        assert_eq!(m.y, 140);
        assert_eq!(m.w, MODAL_W);
        let ok = p.get(p.find_by_name("ok").unwrap()).bounds;
        assert!(m.contains(ok.center()), "modal children inside modal");
    }

    #[test]
    fn long_text_wraps_to_multiple_lines() {
        let mut b = PageBuilder::new("t", "/t");
        let long = "word ".repeat(100);
        b.text(long.trim().to_string());
        let p = b.finish();
        let t = p
            .iter()
            .find(|w| w.kind == crate::widget::WidgetKind::Text)
            .unwrap();
        assert!(
            t.bounds.h >= 2 * LINE_H,
            "expected wrapping: {:?}",
            t.bounds
        );
    }

    #[test]
    fn invisible_widgets_take_no_space() {
        let mut b = PageBuilder::new("t", "/t");
        b.text("above");
        let hidden = b.button("h", "Hidden");
        b.text("below");
        let mut p = b.finish();
        let below_before = p
            .find_by_label("below", false)
            .map(|id| p.get(id).bounds.y)
            .unwrap();
        p.get_mut(hidden).visible = false;
        p.relayout();
        let below_after = p
            .find_by_label("below", false)
            .map(|id| p.get(id).bounds.y)
            .unwrap();
        assert!(below_after < below_before);
    }

    #[test]
    fn content_height_tracks_content() {
        let mut b = PageBuilder::new("t", "/t");
        for i in 0..60 {
            b.text(format!("line {i}"));
        }
        let p = b.finish();
        assert!(
            p.content_height > 720,
            "60 lines should overflow the viewport, got {}",
            p.content_height
        );
    }

    #[test]
    fn icon_is_small_bucket_button_medium() {
        use crate::geometry::SizeBucket;
        let mut b = PageBuilder::new("t", "/t");
        b.icon_button("gear", "Settings");
        b.button("save", "Save changes");
        let p = b.finish();
        let icon = p.get(p.find_by_name("gear").unwrap()).bounds;
        let btn = p.get(p.find_by_name("save").unwrap()).bounds;
        assert_eq!(icon.size_bucket(), SizeBucket::Small);
        assert_eq!(btn.size_bucket(), SizeBucket::Medium);
    }

    #[test]
    fn cached_walk_replays_identical_bounds() {
        // Two separately built copies of an identical page must come out
        // of `finish()` with identical geometry whether the second build
        // was served from the layout cache or not.
        let build = || {
            let mut b = PageBuilder::new("cache-replay", "/cache-replay");
            b.heading(1, "Cache replay");
            b.form("f", |b| {
                b.text_input("x", "Field", "hint");
                b.button("go", "Go");
            });
            b.finish()
        };
        let a = build();
        let b = build();
        for (wa, wb) in a.iter().zip(b.iter()) {
            assert_eq!(wa.bounds, wb.bounds, "{:?} '{}'", wa.kind, wa.label);
        }
        assert_eq!(a.content_height, b.content_height);
    }

    #[test]
    fn layout_sig_ignores_values_but_not_labels() {
        let build = |label: &str, value: &str| {
            let mut b = PageBuilder::new("sig", "/sig");
            let id = b.text_input("f", label, "hint");
            let mut p = b.finish();
            p.get_mut(id).value = value.into();
            p
        };
        let base = build("Name", "");
        let edited = build("Name", "Ada");
        let relabeled = build("Full name", "");
        use crate::tree::Page;
        let sig = |p: &Page| layout_sig(p.widgets(), p.root());
        assert_eq!(sig(&base), sig(&edited), "values are layout-invisible");
        assert_ne!(sig(&base), sig(&relabeled), "labels size widgets");
    }
}

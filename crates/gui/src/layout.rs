//! A single-pass flow layout engine.
//!
//! Deliberately simple — vertical stacks, horizontal rows, intrinsic leaf
//! sizes, fixed-width table cells, centered modal overlays — but it computes
//! real, stable pixel rectangles for every widget, which is all the
//! downstream vision/grounding experiments require. Geometry shifts caused
//! by theme drift (padding changes, injected banners) fall out naturally:
//! they move every subsequent widget, which is what breaks position-based
//! RPA selectors.

use crate::geometry::{Rect, Size};
use crate::widget::{Widget, WidgetId, WidgetKind};

/// Approximate glyph advance width in pixels for body text.
pub const CHAR_W: u32 = 8;
/// Body-line height in pixels.
pub const LINE_H: u32 = 20;
/// Root page padding.
pub const PAGE_PAD: u32 = 16;
/// Vertical gap between stacked siblings.
pub const V_GAP: u32 = 10;
/// Horizontal gap between row siblings.
pub const H_GAP: u32 = 12;
/// Page (and viewport) width.
pub const PAGE_W: u32 = 1280;
/// Modal dialog width.
pub const MODAL_W: u32 = 520;

fn text_width(s: &str, char_w: u32) -> u32 {
    s.chars().count() as u32 * char_w
}

/// Lay out the arena starting at `root`; fills every widget's `bounds` in
/// page coordinates and returns the total content height.
pub fn layout_page(widgets: &mut [Widget], root: WidgetId) -> u32 {
    let avail = PAGE_W - 2 * PAGE_PAD;
    let used = place(widgets, root, PAGE_PAD as i32, PAGE_PAD as i32, avail);
    // Overlay pass: modals are centered over the content, not in flow.
    let modal_ids: Vec<WidgetId> = widgets
        .iter()
        .filter(|w| w.kind == WidgetKind::Modal && w.visible)
        .map(|w| w.id)
        .collect();
    for m in modal_ids {
        let x = ((PAGE_W - MODAL_W) / 2) as i32;
        place(widgets, m, x, 140, MODAL_W);
    }
    // Toasts float at the top-right, stacked, without reflowing content.
    let toast_ids: Vec<WidgetId> = widgets
        .iter()
        .filter(|w| w.kind == WidgetKind::Toast && w.visible)
        .map(|w| w.id)
        .collect();
    let mut toast_y = 16i32;
    for t in toast_ids {
        let size = leaf_size(&widgets[t.index()], 480);
        let x = PAGE_W as i32 - size.w as i32 - 24;
        widgets[t.index()].bounds = Rect::new(x, toast_y, size.w, size.h);
        toast_y += size.h as i32 + 8;
    }
    used.h + 2 * PAGE_PAD
}

/// Recursively place `id` at (x, y) with `avail_w` of horizontal room.
/// Returns the size consumed.
fn place(widgets: &mut [Widget], id: WidgetId, x: i32, y: i32, avail_w: u32) -> Size {
    let (kind, visible, fixed_w, has_children) = {
        let w = &widgets[id.index()];
        (w.kind, w.visible, w.fixed_w, !w.children.is_empty())
    };
    if !visible {
        widgets[id.index()].bounds = Rect::new(x, y, 0, 0);
        return Size::new(0, 0);
    }
    // A pinned width constrains the widget and everything inside it.
    let avail_w = fixed_w.map(|f| f.min(avail_w)).unwrap_or(avail_w);
    // Table cells holding widgets (e.g. a link) lay out as containers.
    let as_container = kind.is_container() || (kind == WidgetKind::TableCell && has_children);
    let size = if as_container {
        place_container(widgets, id, x, y, avail_w, kind)
    } else {
        leaf_size(&widgets[id.index()], avail_w)
    };
    widgets[id.index()].bounds = Rect::new(x, y, size.w, size.h);
    size
}

fn place_container(
    widgets: &mut [Widget],
    id: WidgetId,
    x: i32,
    y: i32,
    avail_w: u32,
    kind: WidgetKind,
) -> Size {
    let (pad, gap_v, gap_h, horizontal) = match kind {
        WidgetKind::Row => (0u32, 0u32, H_GAP, true),
        WidgetKind::TableRow => (0, 0, 0, true),
        WidgetKind::Modal => (20, V_GAP, H_GAP, false),
        WidgetKind::Root => (0, V_GAP, H_GAP, false),
        _ => (0, V_GAP, H_GAP, false),
    };
    let children: Vec<WidgetId> = widgets[id.index()].children.clone();
    let inner_w = avail_w.saturating_sub(2 * pad).max(CHAR_W);
    let mut cx = x + pad as i32;
    let mut cy = y + pad as i32;
    let mut max_w = 0u32;
    let mut max_h = 0u32;
    let mut first = true;
    for child in children {
        let ck = widgets[child.index()].kind;
        if ck == WidgetKind::Modal || ck == WidgetKind::Toast {
            continue; // the overlay pass places modals and toasts
        }
        if !widgets[child.index()].visible {
            widgets[child.index()].bounds = Rect::new(cx, cy, 0, 0);
            continue;
        }
        if horizontal {
            if !first {
                cx += gap_h as i32;
            }
            let remaining = (x + pad as i32 + inner_w as i32 - cx).max(CHAR_W as i32) as u32;
            let s = place(widgets, child, cx, cy, remaining);
            cx += s.w as i32;
            max_h = max_h.max(s.h);
            max_w = ((cx - x) as u32).saturating_sub(pad);
        } else {
            if !first {
                cy += gap_v as i32;
            }
            let s = place(widgets, child, cx, cy, inner_w);
            cy += s.h as i32;
            max_w = max_w.max(s.w);
            max_h = ((cy - y) as u32).saturating_sub(pad);
        }
        first = false;
    }
    let w = match kind {
        WidgetKind::Row | WidgetKind::TableRow => max_w + 2 * pad,
        // Sections and forms shrink-wrap their content so that, inside a
        // row, a labelled input does not shove its siblings off-screen.
        WidgetKind::Section | WidgetKind::Form => (max_w + 2 * pad).min(avail_w),
        // Root, modals, and table cells span what they are given.
        _ => avail_w,
    };
    let h = max_h + 2 * pad;
    Size::new(w.min(avail_w.max(w)), h)
}

/// Intrinsic pixel size of a leaf widget given available width.
fn leaf_size(w: &Widget, avail_w: u32) -> Size {
    let label_len = w.label.chars().count() as u32;
    match w.kind {
        WidgetKind::Heading => {
            let (char_w, h) = match w.level {
                1 => (14, 44),
                2 => (11, 34),
                _ => (9, 26),
            };
            Size::new(text_width(&w.label, char_w).min(avail_w).max(CHAR_W), h)
        }
        WidgetKind::Text => {
            let total = text_width(&w.label, CHAR_W).max(CHAR_W);
            let per_line = avail_w.max(CHAR_W);
            let lines = total.div_ceil(per_line).max(1);
            Size::new(total.min(per_line), lines * LINE_H)
        }
        WidgetKind::Button => {
            let w_px = w.fixed_w.unwrap_or((label_len * CHAR_W + 36).max(64));
            Size::new(w_px.min(avail_w), w.fixed_h.unwrap_or(34))
        }
        WidgetKind::Link => Size::new(
            (label_len * CHAR_W).max(CHAR_W).min(avail_w),
            w.fixed_h.unwrap_or(LINE_H),
        ),
        WidgetKind::Icon => Size::new(w.fixed_w.unwrap_or(26), w.fixed_h.unwrap_or(26)),
        WidgetKind::TextInput | WidgetKind::PasswordInput | WidgetKind::Select => Size::new(
            w.fixed_w.unwrap_or(360).min(avail_w),
            w.fixed_h.unwrap_or(34),
        ),
        WidgetKind::TextArea => Size::new(
            w.fixed_w.unwrap_or(560).min(avail_w),
            w.fixed_h.unwrap_or(110),
        ),
        WidgetKind::Checkbox | WidgetKind::Radio => {
            Size::new((22 + 8 + label_len * CHAR_W).min(avail_w), 24)
        }
        WidgetKind::MenuItem => Size::new(
            w.fixed_w
                .unwrap_or((label_len * CHAR_W + 24).max(140))
                .min(avail_w),
            28,
        ),
        WidgetKind::Tab => Size::new((label_len * CHAR_W + 28).min(avail_w), 38),
        WidgetKind::Badge => Size::new((label_len * 7 + 18).min(avail_w), 22),
        WidgetKind::Toast => Size::new((text_width(&w.label, CHAR_W) + 28).min(avail_w), 36),
        WidgetKind::Image => Size::new(
            w.fixed_w.unwrap_or(160).min(avail_w),
            w.fixed_h.unwrap_or(120),
        ),
        WidgetKind::Divider => Size::new(avail_w, 9),
        WidgetKind::TableCell => {
            // Cells are sized by the table builder; bare cells get a line.
            Size::new(w.fixed_w.unwrap_or(100).min(avail_w), 28)
        }
        // Containers never reach here.
        _ => Size::new(avail_w, LINE_H),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::PageBuilder;

    #[test]
    fn stacked_children_do_not_overlap_vertically() {
        let mut b = PageBuilder::new("t", "/t");
        b.heading(1, "Title");
        b.text("Some body text");
        b.button("go", "Go");
        let p = b.finish();
        let ids: Vec<_> = p.iter().filter(|w| !w.kind.is_container()).collect();
        for pair in ids.windows(2) {
            assert!(
                pair[1].bounds.y >= pair[0].bounds.bottom(),
                "{:?} overlaps {:?}",
                pair[1].kind,
                pair[0].kind
            );
        }
    }

    #[test]
    fn row_children_flow_left_to_right() {
        let mut b = PageBuilder::new("t", "/t");
        b.row(|b| {
            b.button("a", "Alpha");
            b.button("bb", "Beta");
            b.link("c", "Gamma");
        });
        let p = b.finish();
        let a = p.get(p.find_by_name("a").unwrap()).bounds;
        let bb = p.get(p.find_by_name("bb").unwrap()).bounds;
        let c = p.get(p.find_by_name("c").unwrap()).bounds;
        assert!(bb.x >= a.right());
        assert!(c.x >= bb.right());
        assert_eq!(a.y, bb.y);
    }

    #[test]
    fn everything_within_page_width() {
        let mut b = PageBuilder::new("t", "/t");
        b.heading(1, "A heading");
        b.form("f", |b| {
            b.text_input("x", "Field", "hint");
            b.textarea("y", "Area", "hint");
        });
        b.table(
            &["A", "B", "C"],
            &[vec![
                ("1".into(), None),
                ("2".into(), None),
                ("3".into(), None),
            ]],
        );
        let p = b.finish();
        for w in p.visible_iter() {
            assert!(
                w.bounds.right() <= PAGE_W as i32,
                "{:?} '{}' exceeds page width: {:?}",
                w.kind,
                w.label,
                w.bounds
            );
        }
    }

    #[test]
    fn modal_is_centered_overlay() {
        let mut b = PageBuilder::new("t", "/t");
        b.text("content");
        b.modal("m", |b| {
            b.text("dialog body");
            b.button("ok", "OK");
        });
        let p = b.finish();
        let m = p.get(p.find_by_name("m").unwrap()).bounds;
        assert_eq!(m.x, ((PAGE_W - MODAL_W) / 2) as i32);
        assert_eq!(m.y, 140);
        assert_eq!(m.w, MODAL_W);
        let ok = p.get(p.find_by_name("ok").unwrap()).bounds;
        assert!(m.contains(ok.center()), "modal children inside modal");
    }

    #[test]
    fn long_text_wraps_to_multiple_lines() {
        let mut b = PageBuilder::new("t", "/t");
        let long = "word ".repeat(100);
        b.text(long.trim().to_string());
        let p = b.finish();
        let t = p
            .iter()
            .find(|w| w.kind == crate::widget::WidgetKind::Text)
            .unwrap();
        assert!(
            t.bounds.h >= 2 * LINE_H,
            "expected wrapping: {:?}",
            t.bounds
        );
    }

    #[test]
    fn invisible_widgets_take_no_space() {
        let mut b = PageBuilder::new("t", "/t");
        b.text("above");
        let hidden = b.button("h", "Hidden");
        b.text("below");
        let mut p = b.finish();
        let below_before = p
            .find_by_label("below", false)
            .map(|id| p.get(id).bounds.y)
            .unwrap();
        p.get_mut(hidden).visible = false;
        p.relayout();
        let below_after = p
            .find_by_label("below", false)
            .map(|id| p.get(id).bounds.y)
            .unwrap();
        assert!(below_after < below_before);
    }

    #[test]
    fn content_height_tracks_content() {
        let mut b = PageBuilder::new("t", "/t");
        for i in 0..60 {
            b.text(format!("line {i}"));
        }
        let p = b.finish();
        assert!(
            p.content_height > 720,
            "60 lines should overflow the viewport, got {}",
            p.content_height
        );
    }

    #[test]
    fn icon_is_small_bucket_button_medium() {
        use crate::geometry::SizeBucket;
        let mut b = PageBuilder::new("t", "/t");
        b.icon_button("gear", "Settings");
        b.button("save", "Save changes");
        let p = b.finish();
        let icon = p.get(p.find_by_name("gear").unwrap()).bounds;
        let btn = p.get(p.find_by_name("save").unwrap()).bounds;
        assert_eq!(icon.size_bucket(), SizeBucket::Small);
        assert_eq!(btn.size_bucket(), SizeBucket::Medium);
    }
}

//! Raw user events (what an agent's actuator emits) and semantic events
//! (what an application receives after the session resolves the raw event
//! against the live widget tree).

use serde::{Deserialize, Serialize};

use crate::geometry::Point;

/// Keyboard keys the simulator models. Printable characters arrive through
/// [`UserEvent::Type`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Key {
    Enter,
    Escape,
    Tab,
    Backspace,
}

impl Key {
    /// Human-readable name used in action logs and SOPs.
    pub fn name(&self) -> &'static str {
        match self {
            Key::Enter => "Enter",
            Key::Escape => "Escape",
            Key::Tab => "Tab",
            Key::Backspace => "Backspace",
        }
    }
}

/// A raw input event, addressed in *viewport* coordinates — exactly the
/// channel a pixel-level agent controls (paper §2.2: "directly operate on
/// the GUI").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UserEvent {
    /// Press and release the left mouse button at a viewport point.
    Click(Point),
    /// Type a string of printable characters into whatever is focused.
    Type(String),
    /// Press a non-printable key.
    Press(Key),
    /// Scroll vertically by `dy` pixels (positive scrolls content down).
    Scroll(i32),
}

impl UserEvent {
    /// Short description for action logs ("click @ (412,188)").
    pub fn describe(&self) -> String {
        match self {
            UserEvent::Click(p) => format!("click @ ({},{})", p.x, p.y),
            UserEvent::Type(t) => format!("type {t:?}"),
            UserEvent::Press(k) => format!("press {}", k.name()),
            UserEvent::Scroll(dy) => format!("scroll {dy}"),
        }
    }
}

/// An application-level event, produced by the session after hit-testing
/// and form resolution. Sites implement their logic entirely against these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SemanticEvent {
    /// An activatable widget (button/link/menu item/tab/icon) was clicked.
    /// `fields` carries the current values of the enclosing form (or of the
    /// whole page when the widget is outside any form).
    Activated {
        name: String,
        label: String,
        fields: Vec<(String, String)>,
    },
    /// A checkbox/radio changed state (the session already applied the
    /// visual toggle; this is a notification).
    Toggled {
        name: String,
        label: String,
        checked: bool,
    },
    /// Escape dismissed the topmost modal or a toast. `name` is the modal's
    /// programmatic name (empty for unnamed toasts).
    Dismissed { name: String },
}

/// What a dispatched [`UserEvent`] ended up doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EffectKind {
    /// Click landed on an editable widget and moved focus.
    Focused,
    /// Characters were appended to the focused widget.
    Typed,
    /// A checkbox/radio flipped.
    Toggled,
    /// A button/link/menu item fired application logic.
    Activated,
    /// A modal or toast was dismissed.
    Dismissed,
    /// The viewport scrolled.
    Scrolled,
    /// Focus moved via Tab.
    FocusMoved,
    /// The event hit nothing / changed nothing (e.g. typing with no focus —
    /// the actuation-failure case the paper's validator must catch).
    NoOp,
}

/// Record of one dispatched event: the raw event, what it hit, and what it
/// did. Sequences of these form the action logs consumed by the
/// Demonstrate experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dispatch {
    /// The raw event as issued.
    pub event: UserEvent,
    /// `(name, label)` of the widget the event resolved to, if any.
    pub hit: Option<(String, String)>,
    /// The classified effect.
    pub effect: EffectKind,
    /// The app URL after the event settled.
    pub url_after: String,
}

impl Dispatch {
    /// Whether the event visibly did something.
    pub fn changed_anything(&self) -> bool {
        self.effect != EffectKind::NoOp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_formats() {
        assert_eq!(
            UserEvent::Click(Point::new(3, 4)).describe(),
            "click @ (3,4)"
        );
        assert_eq!(UserEvent::Type("hi".into()).describe(), "type \"hi\"");
        assert_eq!(UserEvent::Press(Key::Enter).describe(), "press Enter");
        assert_eq!(UserEvent::Scroll(-120).describe(), "scroll -120");
    }

    #[test]
    fn noop_is_not_a_change() {
        let d = Dispatch {
            event: UserEvent::Type("x".into()),
            hit: None,
            effect: EffectKind::NoOp,
            url_after: "/".into(),
        };
        assert!(!d.changed_anything());
    }
}

//! Themes and UI drift.
//!
//! A [`Theme`] is a set of [`DriftOp`]s applied to every page an app builds.
//! The Section 3 case studies attribute RPA failure to exactly these
//! mutations: "a button changing location on a screen, or a form field being
//! renamed", quarterly EHR updates, payer-website churn. The drift
//! generator samples realistic mutations from a live page so the RPA study
//! (`eclair-rpa`) can simulate quarters of product change.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tree::Page;
use crate::widget::{Widget, WidgetId, WidgetKind};

/// One UI mutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DriftOp {
    /// Change every widget whose visible label equals `from` to `to`
    /// ("Save" becomes "Apply changes").
    Relabel { from: String, to: String },
    /// Change a widget's programmatic `name` (breaks name selectors without
    /// any visible difference).
    RenameField { from: String, to: String },
    /// Change the rendered HTML tag of the widget named `name`
    /// (a `button` becomes a `div` / `svg`).
    Retag { name: String, tag: String },
    /// Insert an announcement banner at the top of the page, shifting all
    /// content down (breaks position selectors).
    InsertBanner { text: String },
    /// Deterministically reorder the children of every multi-child
    /// [`WidgetKind::Section`]/`Row` (a redesign shuffling panels).
    ShuffleSections { seed: u64 },
    /// Hide the widget named `name` (feature removed / moved behind a menu).
    Hide { name: String },
    /// Set a new fixed width for all single-line inputs (a design-system
    /// refresh changing geometry).
    ResizeInputs { width: u32 },
}

/// A theme: drift ops applied after every page build.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Theme {
    /// Mutations applied in order.
    pub ops: Vec<DriftOp>,
}

impl Theme {
    /// The pristine theme (no drift).
    pub fn pristine() -> Self {
        Self::default()
    }

    /// A theme from explicit ops.
    pub fn with_ops(ops: Vec<DriftOp>) -> Self {
        Self { ops }
    }

    /// Append further drift (a new "quarterly update" on top of the old).
    pub fn extend(&mut self, ops: impl IntoIterator<Item = DriftOp>) {
        self.ops.extend(ops);
    }

    /// Apply all ops to a built page, then relayout.
    pub fn apply(&self, page: &mut Page) {
        if self.ops.is_empty() {
            return;
        }
        for op in &self.ops {
            apply_op(page, op);
        }
        // Drift touches a handful of nodes on an already-laid-out page:
        // let the dirty-subtree pass re-place just those (falling back to a
        // full walk when a structural op like InsertBanner dirties the root).
        page.relayout_incremental();
    }
}

fn apply_op(page: &mut Page, op: &DriftOp) {
    match op {
        DriftOp::Relabel { from, to } => {
            let targets: Vec<WidgetId> = page
                .iter()
                .filter(|w| w.label == *from)
                .map(|w| w.id)
                .collect();
            for id in targets {
                page.get_mut(id).label = to.into();
            }
        }
        DriftOp::RenameField { from, to } => {
            let targets: Vec<WidgetId> = page
                .iter()
                .filter(|w| w.name == *from)
                .map(|w| w.id)
                .collect();
            for id in targets {
                page.get_mut(id).name = to.into();
            }
        }
        DriftOp::Retag { name, tag } => {
            if let Some(id) = page.find_by_name(name) {
                page.get_mut(id).tag = tag.into();
            }
        }
        DriftOp::InsertBanner { text } => {
            page.inject_banner(text);
        }
        DriftOp::ShuffleSections { seed } => {
            shuffle_sections(page, *seed);
        }
        DriftOp::Hide { name } => {
            if let Some(id) = page.find_by_name(name) {
                page.get_mut(id).visible = false;
            }
        }
        DriftOp::ResizeInputs { width } => {
            let targets: Vec<WidgetId> = page
                .iter()
                .filter(|w| w.kind == WidgetKind::TextInput || w.kind == WidgetKind::Select)
                .map(|w| w.id)
                .collect();
            for id in targets {
                page.get_mut(id).fixed_w = Some(*width);
            }
        }
    }
}

fn shuffle_sections(page: &mut Page, seed: u64) {
    // Deterministic pseudo-shuffle: rotate each container's children by a
    // seed-derived amount. Rotation (not full shuffle) keeps pages plausible
    // while still moving everything.
    let containers: Vec<WidgetId> = page
        .iter()
        .filter(|w| {
            matches!(w.kind, WidgetKind::Section | WidgetKind::Row) && w.children.len() >= 3
        })
        .map(|w| w.id)
        .collect();
    for (i, id) in containers.into_iter().enumerate() {
        let n = page.get(id).children.len();
        let by = ((seed as usize).wrapping_add(i * 7) % (n - 1)) + 1;
        page.get_mut(id).children.rotate_left(by % n);
    }
}

impl Page {
    /// Insert a banner widget as the first child of the root (used by
    /// [`DriftOp::InsertBanner`]). Shifts all content down once laid out.
    pub fn inject_banner(&mut self, text: &str) {
        let root = self.root();
        let mut w = Widget::new(WidgetKind::Text);
        w.label = text.into();
        w.name = "drift-banner".into();
        w.parent = Some(root);
        let id = self.push_widget(w);
        self.get_mut(root).children.insert(0, id);
    }
}

/// Common label substitutions products actually ship ("Save" → "Apply").
const LABEL_SYNONYMS: &[(&str, &str)] = &[
    ("Save", "Apply"),
    ("Save changes", "Apply changes"),
    ("Create", "Add"),
    ("New issue", "Create issue"),
    ("New project", "Create project"),
    ("Delete", "Remove"),
    ("Submit", "Confirm"),
    ("Search", "Find"),
    ("Cancel", "Dismiss"),
    ("Edit", "Modify"),
    ("Add product", "New product"),
    ("Invite member", "Add member"),
];

/// Sample `n` plausible drift ops for a page: relabel known verbs, rename a
/// field, retag a button, maybe add a banner or reshuffle. Deterministic
/// under the provided RNG.
pub fn generate_drift<R: Rng>(page: &Page, rng: &mut R, n: usize) -> Vec<DriftOp> {
    let mut ops = Vec::new();
    let buttons: Vec<&Widget> = page
        .iter()
        .filter(|w| w.kind.is_activatable() && !w.label.is_empty())
        .collect();
    let fields: Vec<&Widget> = page
        .iter()
        .filter(|w| w.kind.is_editable() && !w.name.is_empty())
        .collect();
    for i in 0..n {
        let roll = rng.gen_range(0u32..100);
        match roll {
            0..=34 => {
                // Relabel a button, preferring a real synonym.
                if let Some(b) = buttons.choose(rng) {
                    let to = LABEL_SYNONYMS
                        .iter()
                        .find(|(from, _)| *from == b.label)
                        .map(|(_, to)| to.to_string())
                        .unwrap_or_else(|| format!("{} »", b.label));
                    ops.push(DriftOp::Relabel {
                        from: b.label.to_string(),
                        to,
                    });
                }
            }
            35..=54 => {
                if let Some(f) = fields.choose(rng) {
                    ops.push(DriftOp::RenameField {
                        from: f.name.to_string(),
                        to: format!("{}_v2", f.name),
                    });
                }
            }
            55..=69 => {
                if let Some(b) = buttons.choose(rng) {
                    if !b.name.is_empty() {
                        ops.push(DriftOp::Retag {
                            name: b.name.to_string(),
                            tag: "div".into(),
                        });
                    }
                }
            }
            70..=84 => ops.push(DriftOp::InsertBanner {
                text: format!("Scheduled maintenance window #{i}"),
            }),
            _ => ops.push(DriftOp::ShuffleSections { seed: rng.gen() }),
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::PageBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Page {
        let mut b = PageBuilder::new("Drift", "/drift");
        b.heading(1, "Settings");
        b.section(|b| {
            b.text_input("email", "Email", "");
            b.text_input("phone", "Phone", "");
            b.button("save", "Save");
        });
        b.finish()
    }

    #[test]
    fn relabel_changes_visible_label_only() {
        let mut p = sample();
        Theme::with_ops(vec![DriftOp::Relabel {
            from: "Save".into(),
            to: "Apply".into(),
        }])
        .apply(&mut p);
        assert!(p.find_by_label("Save", true).is_none());
        let id = p.find_by_label("Apply", true).unwrap();
        assert_eq!(p.get(id).name, "save", "programmatic name untouched");
    }

    #[test]
    fn rename_field_is_invisible_in_pixels() {
        let mut p = sample();
        let before = crate::screenshot::Screenshot::render(
            &p.url,
            &p.title,
            p.widgets(),
            &p.paint_order(),
            0,
            None,
        );
        Theme::with_ops(vec![DriftOp::RenameField {
            from: "email".into(),
            to: "email_v2".into(),
        }])
        .apply(&mut p);
        let after = crate::screenshot::Screenshot::render(
            &p.url,
            &p.title,
            p.widgets(),
            &p.paint_order(),
            0,
            None,
        );
        assert_eq!(before.diff_fraction(&after), 0.0, "pixels identical");
        assert!(p.find_by_name("email").is_none());
        assert!(p.find_by_name("email_v2").is_some());
    }

    #[test]
    fn banner_shifts_content_down() {
        let mut p = sample();
        let save_y_before = p.get(p.find_by_name("save").unwrap()).bounds.y;
        Theme::with_ops(vec![DriftOp::InsertBanner {
            text: "We have updated our terms of service".into(),
        }])
        .apply(&mut p);
        let save_y_after = p.get(p.find_by_name("save").unwrap()).bounds.y;
        assert!(save_y_after > save_y_before, "content shifted down");
        assert!(p.find_by_name("drift-banner").is_some());
    }

    #[test]
    fn hide_removes_from_hit_testing() {
        let mut p = sample();
        Theme::with_ops(vec![DriftOp::Hide {
            name: "save".into(),
        }])
        .apply(&mut p);
        let id = p.find_by_name("save").unwrap();
        assert!(!p.is_shown(id));
    }

    #[test]
    fn shuffle_reorders_section_children() {
        let mut p = sample();
        let section = p
            .iter()
            .find(|w| w.kind == WidgetKind::Section && w.children.len() >= 3)
            .unwrap()
            .id;
        let before = p.get(section).children.clone();
        Theme::with_ops(vec![DriftOp::ShuffleSections { seed: 1 }]).apply(&mut p);
        let after = p.get(section).children.clone();
        assert_ne!(before, after, "children rotated");
        let mut b2 = before.clone();
        b2.sort();
        let mut a2 = after.clone();
        a2.sort();
        assert_eq!(b2, a2, "same children, different order");
    }

    #[test]
    fn generated_drift_is_deterministic() {
        let p = sample();
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(
            generate_drift(&p, &mut r1, 6),
            generate_drift(&p, &mut r2, 6)
        );
    }

    #[test]
    fn retag_changes_html_only() {
        let mut p = sample();
        Theme::with_ops(vec![DriftOp::Retag {
            name: "save".into(),
            tag: "div".into(),
        }])
        .apply(&mut p);
        let html = crate::html::serialize(&p);
        assert!(html.contains("<div name=\"save\">Save</div>"), "got {html}");
        // Still clickable: semantics unchanged.
        let id = p.find_by_name("save").unwrap();
        assert!(p.get(id).kind.is_activatable());
    }
}

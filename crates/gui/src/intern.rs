//! A global, deterministic string interner.
//!
//! Every widget-facing string (`tag`/`label`/`name`/`value`/`placeholder`/
//! `options`) is stored as a [`Sym`] — a `u32` handle into a process-wide
//! table of leaked `&'static str`s. Equal strings always intern to the same
//! id, distinct strings never alias, so widget comparison is an integer
//! compare and internal signatures (build sig, layout sig) can fold the id
//! instead of re-hashing the bytes.
//!
//! Determinism contract: ids are assigned in first-intern order, which is
//! deterministic for a single-threaded driver and *stable enough* for every
//! in-process use (ids never cross a process boundary — serde writes the
//! resolved string, never the id, and `frame_hash` folds string bytes, not
//! ids, so all byte-compared artifacts are interner-blind). The table
//! mutex's compute-inside-lock discipline makes the *aggregate* counters
//! deterministic even under a multi-worker fleet: each unique string is a
//! miss exactly once, so merged totals are a pure function of the seeds.

use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Mutex, OnceLock};

use eclair_trace::perf;
use serde::{Deserialize, Serialize, Value};

/// Interned string handle. `Copy`, 4 bytes, derefs to the string it names.
///
/// Equality between two `Sym`s is an id compare; equality against `str` /
/// `String` compares contents. `Ord` compares contents so sorted output
/// never depends on intern order.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn table() -> &'static Mutex<Interner> {
    static TABLE: OnceLock<Mutex<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut map = HashMap::new();
        map.insert("", 0u32);
        Mutex::new(Interner {
            map,
            strings: vec![""],
        })
    })
}

/// Intern `s`, returning its stable handle. Repeated calls with equal
/// strings return the same `Sym`; distinct strings never share one.
pub fn intern(s: &str) -> Sym {
    let mut t = table().lock().expect("interner poisoned");
    if let Some(&id) = t.map.get(s) {
        perf::record(|c| c.intern_hits += 1);
        return Sym(id);
    }
    let id = u32::try_from(t.strings.len()).expect("interner overflow");
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    t.strings.push(leaked);
    t.map.insert(leaked, id);
    let size = t.strings.len() as u64;
    perf::record(|c| {
        c.intern_misses += 1;
        c.intern_table_size = c.intern_table_size.max(size);
    });
    Sym(id)
}

/// Number of distinct strings interned so far in this process.
pub fn table_size() -> usize {
    table().lock().expect("interner poisoned").strings.len()
}

impl Sym {
    /// The empty string's handle (id 0, pre-interned).
    pub const EMPTY: Sym = Sym(0);

    /// Resolve to the interned string.
    pub fn as_str(self) -> &'static str {
        let t = table().lock().expect("interner poisoned");
        t.strings[self.0 as usize]
    }

    /// The raw id. For in-process signature folding only — ids are
    /// intern-order dependent and must never be serialized or hashed into
    /// a byte-compared artifact.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Default for Sym {
    fn default() -> Self {
        Sym::EMPTY
    }
}

impl Deref for Sym {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Self {
        intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Self {
        intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Self {
        intern(&s)
    }
}

impl From<&Sym> for Sym {
    fn from(s: &Sym) -> Self {
        *s
    }
}

impl From<Sym> for String {
    fn from(s: Sym) -> Self {
        s.as_str().to_owned()
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

// Serde writes the resolved string, never the id: intern ids are assigned
// in first-intern order and must not leak into any serialized artifact.
impl Serialize for Sym {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Sym {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Str(s) => Ok(intern(s)),
            other => Err(serde::Error::custom(format!(
                "Sym: expected string, got {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_intern_to_the_same_sym() {
        let a = intern("submit-order");
        let owned = String::from("submit-order");
        let b = intern(&owned);
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "submit-order");
    }

    #[test]
    fn distinct_strings_never_alias() {
        let a = intern("alpha-unique-x");
        let b = intern("beta-unique-x");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn empty_is_id_zero_and_default() {
        assert_eq!(intern(""), Sym::EMPTY);
        assert_eq!(Sym::default().id(), 0);
        assert!(Sym::default().is_empty());
    }

    #[test]
    fn content_comparisons_against_plain_strings() {
        let s = intern("Save changes");
        assert_eq!(s, "Save changes");
        assert_eq!("Save changes", s);
        assert_eq!(s, "Save changes".to_owned());
        assert!(s.to_lowercase() == "save changes"); // Deref methods work.
    }

    #[test]
    fn ord_is_by_content_not_intern_order() {
        let z = intern("zzz-ord-test");
        let a = intern("aaa-ord-test");
        assert!(a < z, "content order, despite z interning first");
    }

    #[test]
    fn serde_round_trips_the_string_not_the_id() {
        let s = intern("serde-round-trip");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, "\"serde-round-trip\"");
        let back: Sym = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}

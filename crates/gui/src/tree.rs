//! The page arena and its builder DSL.
//!
//! A [`Page`] stores widgets in a generational [`SlotArena`]: a dense slot
//! vector (cheap to clone for screenshot snapshots, friendly to the borrow
//! checker, and directly sliceable for the layout engine) whose vacated
//! slots are reused under a bumped generation, so a stale [`NodeId`] can
//! never resolve against a widget that replaced the one it named. Plain
//! [`WidgetId`]s remain the positional address (slot index) used across
//! the codebase; `NodeId` adds the generation check for holders that can
//! outlive a removal.
//!
//! [`PageBuilder`] is the DSL the simulated sites use to describe screens;
//! `finish()` runs the layout engine so every widget has pixel bounds.
//! Mutations route through [`Page::get_mut`], which marks the widget's
//! slot dirty; [`Page::relayout_incremental`] then re-places only the
//! dirty subtree (falling back to a full — usually cache-served — walk
//! when a box change escalates to the root).

use serde::{Deserialize, Serialize};

use crate::arena::{NodeId, SlotArena};
use crate::geometry::Point;
use crate::intern::Sym;
use crate::layout::{self, PartialOutcome};
use crate::widget::{Widget, WidgetId, WidgetKind};

/// A fully built screen: widget arena + metadata + computed layout.
#[derive(Debug, Clone)]
pub struct Page {
    /// Window / document title.
    pub title: String,
    /// The route this page renders (e.g. `/gitlab/project/3/issues/new`).
    pub url: String,
    widgets: SlotArena<Widget>,
    root: WidgetId,
    /// Total laid-out content height in pixels (may exceed the viewport).
    pub content_height: u32,
    /// Slots mutated since the last relayout (deduplicated, tiny).
    dirty: Vec<u32>,
    /// Set when a toast left the tree: the floating stack must restack
    /// even though no surviving widget is dirty.
    toasts_dirty: bool,
}

// Manual serde impls (the vendored derive has no `skip`): identical to the
// derive's field-order map, minus the transient dirty-tracking state. A
// deserialized page starts clean — its bounds were serialized post-layout.
impl Serialize for Page {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (String::from("title"), self.title.to_value()),
            (String::from("url"), self.url.to_value()),
            (String::from("widgets"), self.widgets.to_value()),
            (String::from("root"), self.root.to_value()),
            (
                String::from("content_height"),
                self.content_height.to_value(),
            ),
        ])
    }
}

impl Deserialize for Page {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::from_value(v.field(name))
                .map_err(|e| serde::Error::custom(format!("Page.{name}: {e}")))
        }
        Ok(Page {
            title: field(v, "title")?,
            url: field(v, "url")?,
            widgets: field(v, "widgets")?,
            root: field(v, "root")?,
            content_height: field(v, "content_height")?,
            dirty: Vec::new(),
            toasts_dirty: false,
        })
    }
}

impl Page {
    /// Number of slots (including containers and any tombstoned slots).
    pub fn len(&self) -> usize {
        self.widgets.slot_count()
    }

    /// True when the page holds only its root.
    pub fn is_empty(&self) -> bool {
        self.widgets.slot_count() <= 1
    }

    /// The root widget id.
    pub fn root(&self) -> WidgetId {
        self.root
    }

    /// Borrow a widget.
    ///
    /// # Panics
    /// Panics on a stale/foreign id — ids are only valid for the page that
    /// created them.
    pub fn get(&self, id: WidgetId) -> &Widget {
        &self.widgets.data()[id.index()]
    }

    /// Mutably borrow a widget, marking its slot dirty for the next
    /// incremental relayout. (Conservative: value-only writes dirty the
    /// slot too; re-placing a node whose size did not change is cheap and
    /// pixel-neutral.)
    pub fn get_mut(&mut self, id: WidgetId) -> &mut Widget {
        self.mark_dirty(id);
        &mut self.widgets.data_mut()[id.index()]
    }

    /// The generational key currently naming `id`'s slot, if occupied.
    pub fn node_id(&self, id: WidgetId) -> Option<NodeId> {
        self.widgets.id_at_slot(id.0)
    }

    /// Resolve a generational key; `None` once the node was removed (even
    /// if its slot has been reused by a newer widget).
    pub fn resolve(&self, id: NodeId) -> Option<&Widget> {
        self.widgets.get(id)
    }

    /// Mark a slot dirty without borrowing the widget.
    pub fn mark_dirty(&mut self, id: WidgetId) {
        if !self.dirty.contains(&id.0) {
            self.dirty.push(id.0);
        }
    }

    /// Iterate over all widgets in arena (pre-)order.
    pub fn iter(&self) -> impl Iterator<Item = &Widget> {
        self.widgets.data().iter()
    }

    /// Iterate over widgets that are visible *and* all of whose ancestors
    /// are visible.
    pub fn visible_iter(&self) -> impl Iterator<Item = &Widget> + '_ {
        self.widgets
            .data()
            .iter()
            .filter(move |w| self.is_shown(w.id))
    }

    /// Whether `id` and all its ancestors are visible.
    pub fn is_shown(&self, id: WidgetId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            let w = self.get(c);
            if !w.visible {
                return false;
            }
            cur = w.parent;
        }
        true
    }

    /// Depth-first paint order starting at the root: parents before
    /// children, siblings in child order, modals last (they overlay).
    pub fn paint_order(&self) -> Vec<WidgetId> {
        let mut order = Vec::with_capacity(self.widgets.slot_count());
        let mut overlays = Vec::new();
        self.walk(self.root, &mut |w| {
            if w.kind == WidgetKind::Modal || w.kind == WidgetKind::Toast {
                overlays.push(w.id);
                false // subtree painted in the overlay pass
            } else {
                order.push(w.id);
                true
            }
        });
        for m in overlays {
            self.walk(m, &mut |w| {
                order.push(w.id);
                true
            });
        }
        order
    }

    fn walk(&self, id: WidgetId, f: &mut impl FnMut(&Widget) -> bool) {
        let w = self.get(id);
        if !w.visible {
            return;
        }
        if !f(w) {
            return;
        }
        for &c in &w.children {
            self.walk(c, f);
        }
    }

    /// The topmost open modal, if any.
    pub fn active_modal(&self) -> Option<WidgetId> {
        self.widgets
            .data()
            .iter()
            .rev()
            .find(|w| w.kind == WidgetKind::Modal && self.is_shown(w.id))
            .map(|w| w.id)
    }

    /// Whether `id` is `ancestor` or a descendant of it.
    pub fn is_within(&self, id: WidgetId, ancestor: WidgetId) -> bool {
        let mut cur = Some(id);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.get(c).parent;
        }
        false
    }

    /// Hit-test a point in *page coordinates*: returns the topmost visible,
    /// enabled, interactive widget containing the point. An open modal
    /// captures all input (clicks outside it hit nothing), mirroring real
    /// dialog behaviour — and the paper's "irrelevant pop-up appears"
    /// failure mode.
    pub fn hit_test(&self, p: Point) -> Option<WidgetId> {
        let modal = self.active_modal();
        let mut hit = None;
        for id in self.paint_order() {
            let w = self.get(id);
            if let Some(m) = modal {
                if !self.is_within(id, m) {
                    continue;
                }
            }
            if w.kind.is_interactive() && w.enabled && w.bounds.contains(p) {
                hit = Some(id); // later in paint order = drawn on top
            }
        }
        hit
    }

    /// First widget whose visible label equals `label` (case-insensitive,
    /// trimmed), filtered to interactive kinds when `interactive_only`.
    pub fn find_by_label(&self, label: &str, interactive_only: bool) -> Option<WidgetId> {
        let needle = label.trim().to_lowercase();
        self.paint_order().into_iter().find(|&id| {
            let w = self.get(id);
            (!interactive_only || w.kind.is_interactive())
                && w.label.trim().to_lowercase() == needle
        })
    }

    /// All widgets whose label equals `label` (case-insensitive).
    pub fn find_all_by_label(&self, label: &str) -> Vec<WidgetId> {
        let needle = label.trim().to_lowercase();
        self.paint_order()
            .into_iter()
            .filter(|&id| self.get(id).label.trim().to_lowercase() == needle)
            .collect()
    }

    /// First widget with the given programmatic `name`.
    pub fn find_by_name(&self, name: &str) -> Option<WidgetId> {
        self.widgets
            .data()
            .iter()
            .find(|w| w.name == name)
            .map(|w| w.id)
    }

    /// The nearest enclosing [`WidgetKind::Form`] of `id`, if any.
    pub fn enclosing_form(&self, id: WidgetId) -> Option<WidgetId> {
        let mut cur = self.get(id).parent;
        while let Some(c) = cur {
            if self.get(c).kind == WidgetKind::Form {
                return Some(c);
            }
            cur = self.get(c).parent;
        }
        None
    }

    /// Collect `(name, value)` pairs of every named editable/toggleable
    /// widget under `root_id` (a form, or the page root).
    pub fn field_values(&self, root_id: WidgetId) -> Vec<(String, String)> {
        let mut fields = Vec::new();
        self.walk(root_id, &mut |w| {
            if !w.name.is_empty() && (w.kind.is_editable() || w.kind.is_toggleable()) {
                fields.push((w.name.to_string(), w.value.to_string()));
            }
            true
        });
        fields
    }

    /// All interactive widgets in paint order (for set-of-marks candidates).
    pub fn interactive_widgets(&self) -> Vec<WidgetId> {
        self.paint_order()
            .into_iter()
            .filter(|&id| self.get(id).kind.is_interactive())
            .collect()
    }

    /// Render this page into a screenshot at a scroll offset, without a
    /// caret. Session-driven captures (which know focus and blink phase)
    /// should use [`crate::session::Session::screenshot`]; this standalone
    /// variant serves static corpora (e.g. the Table 3 grounding pages).
    pub fn screenshot_at(&self, scroll_y: i32) -> crate::screenshot::Screenshot {
        crate::screenshot::Screenshot::render(
            &self.url,
            &self.title,
            self.widgets.data(),
            &self.paint_order(),
            scroll_y,
            None,
        )
    }

    /// Recompute the full layout (after structural mutation or theme
    /// application). Usually served from the global layout cache; clears
    /// all dirty marks.
    pub fn relayout(&mut self) {
        let root = self.root;
        self.dirty.clear();
        self.toasts_dirty = false;
        self.content_height = layout::layout_page(self.widgets.data_mut(), root);
    }

    /// Re-place only the widgets dirtied since the last relayout,
    /// escalating to enclosing containers only when a measured box
    /// changed, and falling back to [`Page::relayout`] when the change
    /// reaches the root. Pixel-for-pixel equivalent to a full walk.
    pub fn relayout_incremental(&mut self) {
        if self.dirty.is_empty() && !self.toasts_dirty {
            return;
        }
        if layout::cache_bypassed() {
            // `ECLAIR_NO_CACHE` (and the per-session guard) turns off
            // incremental relayout along with every other cache layer.
            self.relayout();
            return;
        }
        let mut dirty = std::mem::take(&mut self.dirty);
        let toasts = std::mem::take(&mut self.toasts_dirty);
        dirty.retain(|&slot| self.widgets.slot_occupied(slot));
        match layout::relayout_dirty(self.widgets.data_mut(), &dirty, toasts) {
            PartialOutcome::Done => {}
            PartialOutcome::NeedsFull => self.relayout(),
        }
    }

    /// Remove `id` and its whole subtree from the page: detaches it from
    /// its parent's child list and vacates every slot (stale [`NodeId`]s
    /// stop resolving; the slots are reused by later insertions). The
    /// root cannot be removed. Returns whether anything was removed.
    pub fn remove_subtree(&mut self, id: WidgetId) -> bool {
        if id == self.root || !self.widgets.slot_occupied(id.0) {
            return false;
        }
        let mut stack = vec![id];
        let mut doomed = Vec::new();
        while let Some(s) = stack.pop() {
            doomed.push(s);
            stack.extend(self.get(s).children.iter().copied());
        }
        if let Some(pid) = self.get(id).parent {
            self.mark_dirty(pid);
            self.widgets.data_mut()[pid.index()]
                .children
                .remove_item(id);
        }
        for s in doomed {
            if self.get(s).kind == WidgetKind::Toast {
                self.toasts_dirty = true;
            }
            let nid = self.widgets.id_at_slot(s.0).expect("collected live");
            self.widgets.remove(nid, Widget::tombstone(s));
            self.dirty.retain(|&d| d != s.0);
        }
        true
    }

    /// Internal: raw widget slice (used by layout and html modules).
    /// Includes tombstoned slots; they are invisible, unnamed, and
    /// unreachable from the root.
    pub(crate) fn widgets(&self) -> &[Widget] {
        self.widgets.data()
    }

    /// Internal: insert a fully-initialized widget into the arena (caller
    /// is responsible for wiring `parent`/`children`). Reuses a vacated
    /// slot when one exists; returns the assigned id. Used by drift ops
    /// and fault injectors.
    pub(crate) fn push_widget(&mut self, w: Widget) -> WidgetId {
        let nid = self.widgets.insert(w);
        let id = nid.widget_id();
        self.widgets.data_mut()[id.index()].id = id;
        id
    }

    /// Overlay a modal dialog (one text line plus a dismiss button) onto
    /// an already-built page and re-run layout. Used by fault injectors
    /// (`eclair-chaos`) to reproduce the paper's "irrelevant pop-up
    /// appears" scenario on arbitrary screens; the modal captures input
    /// exactly like a builder-made one (see [`Page::hit_test`]).
    pub fn inject_modal(
        &mut self,
        name: &str,
        text: &str,
        button_name: &str,
        button_label: &str,
    ) -> WidgetId {
        let root = self.root();
        let mut modal = Widget::new(WidgetKind::Modal);
        modal.name = name.into();
        modal.parent = Some(root);
        let modal_id = self.push_widget(modal);
        let mut body = Widget::new(WidgetKind::Text);
        body.label = text.into();
        body.parent = Some(modal_id);
        let body_id = self.push_widget(body);
        let mut btn = Widget::new(WidgetKind::Button);
        btn.name = button_name.into();
        btn.label = button_label.into();
        btn.parent = Some(modal_id);
        let btn_id = self.push_widget(btn);
        self.get_mut(modal_id).children = vec![body_id, btn_id].into();
        self.get_mut(root).children.push(modal_id);
        self.relayout();
        modal_id
    }
}

/// Builder DSL for pages. Containers nest through closures:
///
/// ```
/// use eclair_gui::{PageBuilder, WidgetKind};
///
/// let mut b = PageBuilder::new("Issues", "/project/1/issues");
/// b.heading(1, "Issues");
/// b.row(|b| {
///     b.button("new-issue", "New issue");
///     b.link("export", "Export as CSV");
/// });
/// let page = b.finish();
/// assert!(page.find_by_label("New issue", true).is_some());
/// assert!(page.get(page.find_by_label("New issue", true).unwrap()).bounds.w > 0);
/// ```
#[derive(Debug)]
pub struct PageBuilder {
    title: String,
    url: String,
    widgets: Vec<Widget>,
    stack: Vec<WidgetId>,
}

impl PageBuilder {
    /// Start a page with a title and route.
    pub fn new(title: impl Into<String>, url: impl Into<String>) -> Self {
        let mut root = Widget::new(WidgetKind::Root);
        root.id = WidgetId(0);
        Self {
            title: title.into(),
            url: url.into(),
            widgets: vec![root],
            stack: vec![WidgetId(0)],
        }
    }

    fn attach(&mut self, mut w: Widget) -> WidgetId {
        let id = WidgetId(self.widgets.len() as u32);
        let parent = *self.stack.last().expect("builder stack never empty");
        w.id = id;
        w.parent = Some(parent);
        self.widgets.push(w);
        self.widgets[parent.index()].children.push(id);
        id
    }

    /// Add an arbitrary pre-configured widget.
    pub fn push(&mut self, w: Widget) -> WidgetId {
        self.attach(w)
    }

    /// Open a container of `kind`, run `f` inside it, close it.
    pub fn container(&mut self, kind: WidgetKind, f: impl FnOnce(&mut Self)) -> WidgetId {
        let id = self.attach(Widget::new(kind));
        self.stack.push(id);
        f(self);
        self.stack.pop();
        id
    }

    /// Vertical grouping.
    pub fn section(&mut self, f: impl FnOnce(&mut Self)) -> WidgetId {
        self.container(WidgetKind::Section, f)
    }

    /// Horizontal grouping.
    pub fn row(&mut self, f: impl FnOnce(&mut Self)) -> WidgetId {
        self.container(WidgetKind::Row, f)
    }

    /// A named form; submit gathers its descendants' values.
    pub fn form(&mut self, name: impl Into<Sym>, f: impl FnOnce(&mut Self)) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Form);
        w.name = name.into();
        let id = self.attach(w);
        self.stack.push(id);
        f(self);
        self.stack.pop();
        id
    }

    /// A modal dialog overlaying the page.
    pub fn modal(&mut self, name: impl Into<Sym>, f: impl FnOnce(&mut Self)) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Modal);
        w.name = name.into();
        let id = self.attach(w);
        self.stack.push(id);
        f(self);
        self.stack.pop();
        id
    }

    /// Heading text at `level` 1–3.
    pub fn heading(&mut self, level: u8, text: impl Into<Sym>) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Heading);
        w.level = level.clamp(1, 3);
        w.label = text.into();
        self.attach(w)
    }

    /// Static body text.
    pub fn text(&mut self, text: impl Into<Sym>) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Text);
        w.label = text.into();
        self.attach(w)
    }

    /// A push button.
    pub fn button(&mut self, name: impl Into<Sym>, label: impl Into<Sym>) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Button);
        w.name = name.into();
        w.label = label.into();
        self.attach(w)
    }

    /// An icon-only activatable control (renders as a glyph; HTML tag `svg`).
    /// `label` is its accessible name, never painted.
    pub fn icon_button(&mut self, name: impl Into<Sym>, label: impl Into<Sym>) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Icon);
        w.name = name.into();
        w.label = label.into();
        self.attach(w)
    }

    /// A hyperlink.
    pub fn link(&mut self, name: impl Into<Sym>, label: impl Into<Sym>) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Link);
        w.name = name.into();
        w.label = label.into();
        self.attach(w)
    }

    /// A labelled single-line text input. Renders as a caption line plus the
    /// input box; the returned id is the *input's*.
    pub fn text_input(
        &mut self,
        name: impl Into<Sym>,
        label: impl Into<Sym>,
        placeholder: impl Into<Sym>,
    ) -> WidgetId {
        self.labelled_input(WidgetKind::TextInput, name, label, placeholder)
    }

    /// A labelled multi-line text area.
    pub fn textarea(
        &mut self,
        name: impl Into<Sym>,
        label: impl Into<Sym>,
        placeholder: impl Into<Sym>,
    ) -> WidgetId {
        self.labelled_input(WidgetKind::TextArea, name, label, placeholder)
    }

    /// A labelled masked input.
    pub fn password(&mut self, name: impl Into<Sym>, label: impl Into<Sym>) -> WidgetId {
        self.labelled_input(WidgetKind::PasswordInput, name, label, "")
    }

    fn labelled_input(
        &mut self,
        kind: WidgetKind,
        name: impl Into<Sym>,
        label: impl Into<Sym>,
        placeholder: impl Into<Sym>,
    ) -> WidgetId {
        let label = label.into();
        let mut input = Widget::new(kind);
        input.name = name.into();
        input.label = label;
        input.placeholder = placeholder.into();
        let mut out = WidgetId(u32::MAX);
        self.container(WidgetKind::Section, |b| {
            if !label.is_empty() {
                b.text(label);
            }
            out = b.attach(input);
        });
        out
    }

    /// A labelled checkbox; `checked` sets the initial state.
    pub fn checkbox(
        &mut self,
        name: impl Into<Sym>,
        label: impl Into<Sym>,
        checked: bool,
    ) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Checkbox);
        w.name = name.into();
        w.label = label.into();
        w.value = if checked { "true" } else { "false" }.into();
        self.attach(w)
    }

    /// A radio chip sharing `name` with its alternatives.
    pub fn radio(
        &mut self,
        name: impl Into<Sym>,
        label: impl Into<Sym>,
        checked: bool,
    ) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Radio);
        w.name = name.into();
        w.label = label.into();
        w.value = if checked { "true" } else { "false" }.into();
        self.attach(w)
    }

    /// A labelled combo box. Typing into a focused select snaps the value to
    /// the best-matching option.
    pub fn select(
        &mut self,
        name: impl Into<Sym>,
        label: impl Into<Sym>,
        options: &[&str],
        selected: Option<&str>,
    ) -> WidgetId {
        let label = label.into();
        let mut sel = Widget::new(WidgetKind::Select);
        sel.name = name.into();
        sel.label = label;
        sel.placeholder = "Select...".into();
        sel.options = options.iter().map(|&s| Sym::from(s)).collect();
        sel.value = selected.unwrap_or("").into();
        let mut out = WidgetId(u32::MAX);
        self.container(WidgetKind::Section, |b| {
            if !label.is_empty() {
                b.text(label);
            }
            out = b.attach(sel);
        });
        out
    }

    /// An entry of a menu / dropdown.
    pub fn menu_item(&mut self, name: impl Into<Sym>, label: impl Into<Sym>) -> WidgetId {
        let mut w = Widget::new(WidgetKind::MenuItem);
        w.name = name.into();
        w.label = label.into();
        self.attach(w)
    }

    /// A tab header.
    pub fn tab(&mut self, name: impl Into<Sym>, label: impl Into<Sym>) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Tab);
        w.name = name.into();
        w.label = label.into();
        self.attach(w)
    }

    /// A status pill.
    pub fn badge(&mut self, label: impl Into<Sym>) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Badge);
        w.label = label.into();
        self.attach(w)
    }

    /// A transient notification bar.
    pub fn toast(&mut self, text: impl Into<Sym>) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Toast);
        w.label = text.into();
        self.attach(w)
    }

    /// An image placeholder with alt text.
    pub fn image(&mut self, alt: impl Into<Sym>, w_px: u32, h_px: u32) -> WidgetId {
        let mut w = Widget::new(WidgetKind::Image);
        w.label = alt.into();
        w.fixed_w = Some(w_px);
        w.fixed_h = Some(h_px);
        self.attach(w)
    }

    /// A horizontal rule.
    pub fn divider(&mut self) -> WidgetId {
        self.attach(Widget::new(WidgetKind::Divider))
    }

    /// A simple data table: a header row plus one row per entry. Each cell
    /// may optionally be a link (`Some(name)` makes the cell text a link with
    /// that programmatic name).
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<(String, Option<String>)>]) -> WidgetId {
        let ncols = headers.len().max(1) as u32;
        let cell_w = (1180 / ncols).max(60);
        self.container(WidgetKind::Section, |b| {
            b.container(WidgetKind::TableRow, |b| {
                for h in headers {
                    let mut c = Widget::new(WidgetKind::TableCell);
                    c.label = (*h).into();
                    c.fixed_w = Some(cell_w);
                    b.attach(c);
                }
            });
            for row in rows {
                b.container(WidgetKind::TableRow, |b| {
                    for (text, link_name) in row {
                        let mut c = Widget::new(WidgetKind::TableCell);
                        c.fixed_w = Some(cell_w);
                        match link_name {
                            Some(name) => {
                                let cid = b.attach(c);
                                b.stack.push(cid);
                                b.link(name.clone(), text.clone());
                                b.stack.pop();
                            }
                            None => {
                                c.label = text.as_str().into();
                                b.attach(c);
                            }
                        }
                    }
                });
            }
        })
    }

    /// Finish the page: runs layout and returns the immutable result.
    pub fn finish(self) -> Page {
        let mut arena = SlotArena::new();
        for w in self.widgets {
            arena.insert(w);
        }
        let mut page = Page {
            title: self.title,
            url: self.url,
            widgets: arena,
            root: WidgetId(0),
            content_height: 0,
            dirty: Vec::new(),
            toasts_dirty: false,
        };
        page.relayout();
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_page() -> Page {
        let mut b = PageBuilder::new("Sample", "/sample");
        b.heading(1, "Create issue");
        b.form("issue-form", |b| {
            b.text_input("title", "Title", "Issue title");
            b.textarea("description", "Description", "Describe the issue");
            b.checkbox("confidential", "This issue is confidential", false);
            b.row(|b| {
                b.button("submit", "Create issue");
                b.link("cancel", "Cancel");
            });
        });
        b.finish()
    }

    #[test]
    fn builder_creates_hierarchy() {
        let p = sample_page();
        let title = p.find_by_name("title").unwrap();
        let form = p.enclosing_form(title).unwrap();
        assert_eq!(p.get(form).name, "issue-form");
        let submit = p.find_by_label("Create issue", true).unwrap();
        assert_eq!(p.get(submit).kind, WidgetKind::Button);
    }

    #[test]
    fn field_values_collects_named_inputs() {
        let mut p = sample_page();
        let title = p.find_by_name("title").unwrap();
        p.get_mut(title).value = "Login broken".into();
        let form = p.enclosing_form(title).unwrap();
        let fields = p.field_values(form);
        assert!(fields.contains(&("title".into(), "Login broken".into())));
        assert!(fields.contains(&("confidential".into(), "false".into())));
        assert_eq!(fields.len(), 3);
    }

    #[test]
    fn hit_test_returns_topmost_interactive() {
        let p = sample_page();
        let submit = p.find_by_label("Create issue", true).unwrap();
        let center = p.get(submit).bounds.center();
        assert_eq!(p.hit_test(center), Some(submit));
        // A point in the page margin hits nothing.
        assert_eq!(p.hit_test(Point::new(1279, 719)), None);
    }

    #[test]
    fn modal_captures_input() {
        let mut b = PageBuilder::new("m", "/m");
        b.button("below", "Below button");
        b.modal("confirm", |b| {
            b.text("Are you sure?");
            b.button("yes", "Yes");
        });
        let p = b.finish();
        let below = p.find_by_name("below").unwrap();
        let below_center = p.get(below).bounds.center();
        // The button under the modal is unreachable even at its own center
        // (unless the modal happens to cover it, in which case the modal's
        // own widgets win; either way "below" is not hit).
        assert_ne!(p.hit_test(below_center), Some(below));
        let yes = p.find_by_name("yes").unwrap();
        assert_eq!(p.hit_test(p.get(yes).bounds.center()), Some(yes));
        assert_eq!(p.active_modal(), Some(p.find_by_name("confirm").unwrap()));
    }

    #[test]
    fn invisible_subtrees_are_skipped() {
        let mut p = sample_page();
        let form_id = p.find_by_name("issue-form").unwrap();
        p.get_mut(form_id).visible = false;
        let title = p.find_by_name("title").unwrap();
        assert!(!p.is_shown(title));
        assert!(!p.visible_iter().any(|w| w.id == title));
    }

    #[test]
    fn duplicate_labels_are_all_found() {
        let mut b = PageBuilder::new("dup", "/dup");
        b.button("a", "Delete");
        b.button("b", "Delete");
        let p = b.finish();
        assert_eq!(p.find_all_by_label("Delete").len(), 2);
    }

    #[test]
    fn table_builder_produces_cells_and_links() {
        let mut b = PageBuilder::new("t", "/t");
        b.table(
            &["Name", "Status"],
            &[
                vec![
                    ("proj-alpha".into(), Some("open-alpha".into())),
                    ("active".into(), None),
                ],
                vec![
                    ("proj-beta".into(), Some("open-beta".into())),
                    ("archived".into(), None),
                ],
            ],
        );
        let p = b.finish();
        assert!(p.find_by_name("open-alpha").is_some());
        let link = p.find_by_label("proj-beta", true).unwrap();
        assert_eq!(p.get(link).kind, WidgetKind::Link);
    }

    #[test]
    fn remove_subtree_vacates_and_reuses_slots() {
        let mut p = sample_page();
        let len_before = p.len();
        let form = p.find_by_name("issue-form").unwrap();
        let nid = p.node_id(form).unwrap();
        assert!(p.remove_subtree(form));
        assert!(p.resolve(nid).is_none(), "stale NodeId no longer resolves");
        assert!(p.find_by_name("title").is_none(), "descendants removed too");
        assert_eq!(p.len(), len_before, "slots tombstoned, not compacted");
        // A later injection reuses vacated slots instead of growing.
        let modal = p.inject_modal("late", "hello", "ok", "OK");
        assert!(modal.index() < len_before, "vacated slot reused");
        assert_eq!(p.len(), len_before, "arena did not grow");
        assert!(p.resolve(nid).is_none(), "old key stays dead after reuse");
        assert!(p
            .hit_test(p.get(p.find_by_name("ok").unwrap()).bounds.center())
            .is_some());
    }

    #[test]
    fn paint_order_puts_modals_last() {
        let mut b = PageBuilder::new("m", "/m");
        b.modal("dialog", |b| {
            b.button("in-modal", "OK");
        });
        b.button("after", "After");
        let p = b.finish();
        let order = p.paint_order();
        let modal_pos = order
            .iter()
            .position(|&id| p.get(id).name == "dialog")
            .unwrap();
        let after_pos = order
            .iter()
            .position(|&id| p.get(id).name == "after")
            .unwrap();
        assert!(modal_pos > after_pos, "modal painted after page content");
    }
}

//! The GUI boundary abstraction: what an agent needs from "a browser".
//!
//! [`crate::session::Session`] is the real (simulated) boundary. Fault
//! injectors (`eclair-chaos`) wrap it and perturb what crosses: stale
//! frames, shifted clicks, dropped events, injected dialogs. The executor
//! is written against this trait so the same loop runs on a pristine
//! session and on an adversarially perturbed one.

use std::sync::Arc;

use crate::event::{Dispatch, UserEvent};
use crate::screenshot::Screenshot;
use crate::session::Session;
use crate::tree::Page;

/// One injected fault, reported by a perturbing surface so the executor
/// can record it in the trace. Plain data: the step it was scheduled at
/// and a stable name for the fault kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultNote {
    /// Executor step (1-based) the fault was armed at.
    pub step: u64,
    /// Stable fault-kind name (e.g. `"layout-shift"`).
    pub fault: String,
}

/// A surface an agent drives: screenshots in, events out. Implemented by
/// [`Session`] directly and by fault-injecting wrappers around it.
///
/// `screenshot` takes `&mut self` because perturbing surfaces maintain
/// frame caches (stale-frame delivery) and schedules; the plain session
/// ignores the mutability.
pub trait GuiSurface {
    /// Called by the executor at the top of each loop iteration with the
    /// 1-based step index. Perturbing surfaces arm scheduled faults here;
    /// the plain session does nothing.
    fn begin_step(&mut self, _step: u64) {}

    /// Capture the current frame (or, under fault injection, a stale one).
    /// Frames are shared (`Arc`): an unchanged page re-observed at the
    /// same scroll/caret state may return the same allocation.
    fn screenshot(&mut self) -> Arc<Screenshot>;

    /// Turn the caching layer (frame cache, incremental relayout) on or
    /// off beneath this surface. Must be observationally transparent:
    /// only `eclair_trace::perf` counters may notice. Wrappers forward to
    /// the inner session.
    fn set_cache_enabled(&mut self, _on: bool) {}

    /// Deliver one raw user event (or drop/duplicate/translate it, under
    /// fault injection).
    fn dispatch(&mut self, event: UserEvent) -> Dispatch;

    /// The live page (HTML source for set-of-marks grounding).
    fn page(&self) -> &Page;

    /// Current scroll offset.
    fn scroll_y(&self) -> i32;

    /// The current URL (agents can read it off the browser chrome).
    fn url(&self) -> String;

    /// Faults armed since the last drain, for trace recording. Empty on
    /// a pristine surface.
    fn drain_fault_notes(&mut self) -> Vec<FaultNote> {
        Vec::new()
    }
}

impl GuiSurface for Session {
    fn screenshot(&mut self) -> Arc<Screenshot> {
        Session::screenshot(self)
    }

    fn set_cache_enabled(&mut self, on: bool) {
        Session::set_cache_enabled(self, on)
    }

    fn dispatch(&mut self, event: UserEvent) -> Dispatch {
        Session::dispatch(self, event)
    }

    fn page(&self) -> &Page {
        Session::page(self)
    }

    fn scroll_y(&self) -> i32 {
        Session::scroll_y(self)
    }

    fn url(&self) -> String {
        Session::url(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EffectKind;
    use crate::tree::{Page, PageBuilder};
    use crate::SemanticEvent;

    struct One;
    impl crate::session::GuiApp for One {
        fn name(&self) -> &str {
            "one"
        }
        fn url(&self) -> String {
            "/one".into()
        }
        fn build(&self) -> Page {
            let mut b = PageBuilder::new("One", "/one");
            b.button("go", "Go");
            b.finish()
        }
        fn on_event(&mut self, _: SemanticEvent) -> bool {
            false
        }
    }

    #[test]
    fn session_implements_the_surface() {
        fn drive<S: GuiSurface>(s: &mut S) -> EffectKind {
            s.begin_step(1);
            assert!(s.drain_fault_notes().is_empty(), "pristine surface");
            let shot = s.screenshot();
            let btn = shot.items.iter().find(|i| i.text == "Go").unwrap();
            s.dispatch(UserEvent::Click(btn.rect.center())).effect
        }
        let mut s = Session::new(Box::new(One));
        assert_eq!(drive(&mut s), EffectKind::Activated);
        assert_eq!(GuiSurface::url(&s), "/one");
        assert_eq!(GuiSurface::scroll_y(&s), 0);
    }
}

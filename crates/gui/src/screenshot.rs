//! Screenshots: the *only* observation channel agents get.
//!
//! A [`Screenshot`] is a list of [`PaintItem`]s — geometry, a coarse visual
//! class (what the pixels would look like), drawn text, and styling — plus
//! the browser chrome (URL bar). It deliberately drops everything pixels
//! would not carry: widget ids, programmatic names, HTML tags, semantic
//! kinds, and (crucially for the paper's integrity-constraint finding)
//! *focus state*, which is only observable as a caret bar in frames where
//! the blink phase happens to be on.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::geometry::{Point, Rect, Size};
use crate::intern::Sym;
use crate::widget::{Widget, WidgetKind};
use crate::VIEWPORT;

/// What a painted region's pixels look like, at the granularity a vision
/// model could plausibly classify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VisualClass {
    /// Plain rendered text (body text, headings, labels, table cells).
    Text,
    /// Underlined/colored text (links, tabs, menu entries).
    TextLink,
    /// A filled rounded rectangle with a caption (buttons).
    BoxButton,
    /// A bordered box possibly containing text (inputs, selects, areas).
    InputBox,
    /// A small square with or without a check mark.
    CheckGlyph,
    /// A small circle with or without a dot.
    RadioGlyph,
    /// A non-text pictograph.
    IconGlyph,
    /// A raster image region.
    ImageBlob,
    /// A panel border / rule (modal frame, toast bar, divider).
    PanelEdge,
    /// The blinking text caret (present only in some frames).
    CaretBar,
}

/// One painted region of a screenshot, in viewport coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaintItem {
    /// Viewport-space rectangle (scroll already applied).
    pub rect: Rect,
    /// Coarse visual classification.
    pub visual: VisualClass,
    /// The text pixels show (interned — rendering a frame allocates no
    /// per-item strings). Empty for icons, images, carets, edges — and
    /// masked (`•`) for password boxes.
    pub text: Sym,
    /// Bold / primary-color styling (headings, primary buttons, checked
    /// glyphs).
    pub emphasis: bool,
    /// Grayed-out rendering (disabled widgets *are* visibly gray).
    pub grayed: bool,
}

/// A captured frame.
///
/// Frames are content-addressed by [`Screenshot::frame_hash`], which is
/// memoized after the first call. Frames are immutable once rendered in
/// every production path; code that *does* mutate one (tests, mostly)
/// must mutate a fresh [`Clone`] — cloning resets the memo, so a mutated
/// clone can never carry its parent's stale hash.
#[derive(Debug)]
pub struct Screenshot {
    /// Viewport size (always [`crate::VIEWPORT`] in the experiments).
    pub viewport: Size,
    /// The URL shown in the browser chrome (agents can read this).
    pub url: String,
    /// Window title shown in the chrome.
    pub title: String,
    /// Scroll offset the frame was taken at.
    pub scroll_y: i32,
    /// Painted regions in paint order (later items overlay earlier ones).
    pub items: Vec<PaintItem>,
    /// Lazily computed frame hash. Never serialized or compared; reset on
    /// clone.
    hash_memo: OnceLock<u64>,
}

// Manual serde impls (the vendored derive has no `skip`): identical to the
// derive's field-order map, minus the hash memo — a deserialized frame
// re-earns its hash on first use.
impl Serialize for Screenshot {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (String::from("viewport"), self.viewport.to_value()),
            (String::from("url"), self.url.to_value()),
            (String::from("title"), self.title.to_value()),
            (String::from("scroll_y"), self.scroll_y.to_value()),
            (String::from("items"), self.items.to_value()),
        ])
    }
}

impl Deserialize for Screenshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::from_value(v.field(name))
                .map_err(|e| serde::Error::custom(format!("Screenshot.{name}: {e}")))
        }
        Ok(Screenshot {
            viewport: field(v, "viewport")?,
            url: field(v, "url")?,
            title: field(v, "title")?,
            scroll_y: field(v, "scroll_y")?,
            items: field(v, "items")?,
            hash_memo: OnceLock::new(),
        })
    }
}

impl Clone for Screenshot {
    fn clone(&self) -> Self {
        Self {
            viewport: self.viewport,
            url: self.url.clone(),
            title: self.title.clone(),
            scroll_y: self.scroll_y,
            items: self.items.clone(),
            // A clone is the mutation escape hatch: it must re-earn its
            // hash.
            hash_memo: OnceLock::new(),
        }
    }
}

impl PartialEq for Screenshot {
    fn eq(&self, other: &Self) -> bool {
        self.viewport == other.viewport
            && self.url == other.url
            && self.title == other.title
            && self.scroll_y == other.scroll_y
            && self.items == other.items
    }
}

/// Number of signature-grid columns (1280 / 20px cells).
pub const GRID_COLS: usize = 64;
/// Number of signature-grid rows (720 / 20px cells).
pub const GRID_ROWS: usize = 36;

impl Screenshot {
    /// Render a page region into a screenshot.
    ///
    /// * `widgets`, `paint_order` — the page being rendered.
    /// * `scroll_y` — vertical scroll offset in page coordinates.
    /// * `caret` — the page-space caret rectangle to draw, if the focused
    ///   widget's blink phase is "on" for this frame.
    pub fn render(
        url: &str,
        title: &str,
        widgets: &[Widget],
        paint_order: &[crate::widget::WidgetId],
        scroll_y: i32,
        caret: Option<Rect>,
    ) -> Self {
        let viewport_rect = Rect::new(0, scroll_y, VIEWPORT.w, VIEWPORT.h);
        let mut items = Vec::new();
        for &id in paint_order {
            let w = &widgets[id.index()];
            if !w.visible || w.bounds.w == 0 || w.bounds.h == 0 {
                continue;
            }
            if !w.bounds.intersects(&viewport_rect) {
                continue;
            }
            if let Some(item) = Self::paint_widget(w, scroll_y) {
                items.push(item);
            }
        }
        if let Some(c) = caret {
            if c.intersects(&viewport_rect) {
                items.push(PaintItem {
                    rect: c.offset(0, -scroll_y),
                    visual: VisualClass::CaretBar,
                    text: Sym::EMPTY,
                    emphasis: false,
                    grayed: false,
                });
            }
        }
        Self::new(VIEWPORT, url, title, scroll_y, items)
    }

    /// Assemble a frame from parts (the hash memo starts unset).
    pub fn new(
        viewport: Size,
        url: impl Into<String>,
        title: impl Into<String>,
        scroll_y: i32,
        items: Vec<PaintItem>,
    ) -> Self {
        Self {
            viewport,
            url: url.into(),
            title: title.into(),
            scroll_y,
            items,
            hash_memo: OnceLock::new(),
        }
    }

    fn paint_widget(w: &Widget, scroll_y: i32) -> Option<PaintItem> {
        let rect = w.bounds.offset(0, -scroll_y);
        let grayed = !w.enabled;
        let (visual, text, emphasis) = match w.kind {
            WidgetKind::Heading => (VisualClass::Text, w.label, true),
            WidgetKind::Text | WidgetKind::Badge | WidgetKind::TableCell => {
                if w.label.is_empty() {
                    return None;
                }
                (VisualClass::Text, w.label, false)
            }
            WidgetKind::Link | WidgetKind::MenuItem | WidgetKind::Tab => {
                (VisualClass::TextLink, w.label, false)
            }
            WidgetKind::Button => (VisualClass::BoxButton, w.label, true),
            WidgetKind::TextInput | WidgetKind::TextArea | WidgetKind::Select => {
                (VisualClass::InputBox, w.display_sym(), false)
            }
            WidgetKind::PasswordInput => (
                VisualClass::InputBox,
                Sym::from("•".repeat(w.value.chars().count())),
                false,
            ),
            WidgetKind::Checkbox => (VisualClass::CheckGlyph, w.label, w.is_checked()),
            WidgetKind::Radio => (VisualClass::RadioGlyph, w.label, w.is_checked()),
            // Icons paint a glyph. The `text` carries the glyph's *identity*
            // (a gear, a bell) — pixels do convey that — but it is not
            // rendered text: `visible_text` excludes it and only GUI-literate
            // models recover it during perception.
            WidgetKind::Icon => (VisualClass::IconGlyph, w.label, false),
            WidgetKind::Image => (VisualClass::ImageBlob, Sym::EMPTY, false),
            WidgetKind::Modal => (VisualClass::PanelEdge, Sym::EMPTY, false),
            WidgetKind::Toast => (VisualClass::PanelEdge, w.label, true),
            WidgetKind::Divider => (VisualClass::PanelEdge, Sym::EMPTY, false),
            // Pure layout containers have no pixels of their own.
            WidgetKind::Root
            | WidgetKind::Section
            | WidgetKind::Row
            | WidgetKind::Form
            | WidgetKind::TableRow => return None,
        };
        Some(PaintItem {
            rect,
            visual,
            text,
            emphasis,
            grayed,
        })
    }

    /// Stable FNV-1a content hash of the frame: every byte of pixel-visible
    /// state (chrome, geometry, visual class, text, styling) feeds the
    /// digest, so two frames hash equal iff they would rasterize to the
    /// same pixels. This is the content-address the session frame cache and
    /// the perception memo key on.
    ///
    /// Deliberately hashes item text *bytes*, never interned `Sym` ids:
    /// the hash seeds simulated FM perception, so it must be identical
    /// across processes and across fleet/sequential runs, while intern ids
    /// depend on first-intern order (thread scheduling). Folding ids is
    /// reserved for in-process signatures (build sig, layout sig).
    ///
    /// Memoized: frames are immutable once rendered (mutate a clone — the
    /// memo resets on clone — never a frame that has already been hashed).
    pub fn frame_hash(&self) -> u64 {
        *self.hash_memo.get_or_init(|| self.compute_hash())
    }

    fn compute_hash(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |b: u64| {
            h ^= b;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.viewport.w as u64);
        mix(self.viewport.h as u64);
        mix(self.scroll_y as u32 as u64);
        for by in self.url.bytes() {
            mix(by as u64);
        }
        mix(0xFF); // field separator (URL is free text)
        for by in self.title.bytes() {
            mix(by as u64);
        }
        mix(0xFF);
        mix(self.items.len() as u64);
        for item in &self.items {
            mix(item.rect.x as u32 as u64);
            mix(item.rect.y as u32 as u64);
            mix(item.rect.w as u64);
            mix(item.rect.h as u64);
            mix(item.visual as u64);
            mix(item.emphasis as u64 | (item.grayed as u64) << 1);
            mix(item.text.len() as u64);
            for by in item.text.bytes() {
                mix(by as u64);
            }
        }
        h
    }

    /// Items whose rect contains `p` (topmost last).
    pub fn items_at(&self, p: Point) -> Vec<&PaintItem> {
        self.items.iter().filter(|i| i.rect.contains(p)).collect()
    }

    /// Concatenated visible text (reading order), handy for goal predicates
    /// that check "the confirmation screen says X".
    pub fn visible_text(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            if item.visual == VisualClass::IconGlyph {
                continue; // glyph identity is not rendered text
            }
            if !item.text.is_empty() {
                if !out.is_empty() {
                    out.push('\n');
                }
                out.push_str(&item.text);
            }
        }
        out
    }

    /// Whether any visible text contains `needle` (case-insensitive).
    pub fn contains_text(&self, needle: &str) -> bool {
        let needle = needle.to_lowercase();
        self.items
            .iter()
            .filter(|i| i.visual != VisualClass::IconGlyph)
            .any(|i| i.text.to_lowercase().contains(&needle))
    }

    /// A coarse perceptual signature: a 64×36 grid of cell hashes. Two
    /// screenshots differing in any painted content produce different cell
    /// values, and the *number* of differing cells approximates how much of
    /// the screen changed — the primitive the actuation validator uses.
    pub fn grid_signature(&self) -> Vec<u64> {
        let mut grid = vec![0xcbf2_9ce4_8422_2325u64; GRID_COLS * GRID_ROWS];
        let cell_w = (self.viewport.w as usize / GRID_COLS).max(1);
        let cell_h = (self.viewport.h as usize / GRID_ROWS).max(1);
        for item in &self.items {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            let mut mix = |b: u64| {
                h ^= b;
                h = h.wrapping_mul(0x1000_0000_01b3);
            };
            mix(item.visual as u64);
            mix(item.emphasis as u64 | (item.grayed as u64) << 1);
            for by in item.text.bytes() {
                mix(by as u64);
            }
            mix(item.rect.x as u64);
            mix(item.rect.y as u64);
            // Stamp the item hash into every grid cell it overlaps.
            let x0 = (item.rect.x.max(0) as usize / cell_w).min(GRID_COLS - 1);
            let y0 = (item.rect.y.max(0) as usize / cell_h).min(GRID_ROWS - 1);
            let x1 =
                ((item.rect.right().max(0) as usize).saturating_sub(1) / cell_w).min(GRID_COLS - 1);
            let y1 = ((item.rect.bottom().max(0) as usize).saturating_sub(1) / cell_h)
                .min(GRID_ROWS - 1);
            for gy in y0..=y1 {
                for gx in x0..=x1 {
                    let cell = &mut grid[gy * GRID_COLS + gx];
                    *cell = cell.wrapping_mul(0x100_0000_01b3).wrapping_add(h) ^ h.rotate_left(17);
                }
            }
        }
        grid
    }

    /// Fraction of signature cells that differ between two frames (0.0 =
    /// visually identical, 1.0 = everything changed).
    pub fn diff_fraction(&self, other: &Screenshot) -> f64 {
        if self.url != other.url {
            return 1.0;
        }
        let a = self.grid_signature();
        let b = other.grid_signature();
        let changed = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        changed as f64 / a.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::PageBuilder;

    fn shoot(page: &crate::tree::Page, scroll: i32) -> Screenshot {
        Screenshot::render(
            &page.url,
            &page.title,
            page.widgets(),
            &page.paint_order(),
            scroll,
            None,
        )
    }

    fn sample() -> crate::tree::Page {
        let mut b = PageBuilder::new("Shot", "/shot");
        b.heading(1, "Create issue");
        b.text_input("title", "Title", "Issue title");
        b.icon_button("gear", "Settings");
        b.button("submit", "Create issue");
        b.finish()
    }

    #[test]
    fn screenshot_drops_semantics_keeps_pixels() {
        let p = sample();
        let s = shoot(&p, 0);
        // Button caption is visible...
        assert!(s.contains_text("Create issue"));
        // ...the input shows its placeholder...
        assert!(s.contains_text("Issue title"));
        // ...but the icon's accessible label is NOT painted.
        assert!(!s.visible_text().contains("Settings"));
        // And no item exposes a programmatic name anywhere.
        assert!(!s.visible_text().contains("gear"));
    }

    #[test]
    fn password_is_masked() {
        let mut b = PageBuilder::new("pw", "/pw");
        let id = b.password("pw", "Password");
        let mut p = b.finish();
        p.get_mut(id).value = "hunter2".into();
        let s = shoot(&p, 0);
        assert!(s.contains_text("•••••••"));
        assert!(!s.contains_text("hunter2"));
    }

    #[test]
    fn scrolling_moves_items_up() {
        let p = sample();
        let s0 = shoot(&p, 0);
        let s1 = shoot(&p, 50);
        let first_y0 = s0.items[0].rect.y;
        let first_y1 = s1.items[0].rect.y;
        assert_eq!(first_y1, first_y0 - 50);
    }

    #[test]
    fn offscreen_items_are_culled() {
        let mut b = PageBuilder::new("long", "/long");
        for i in 0..100 {
            b.text(format!("row {i}"));
        }
        let p = b.finish();
        let top = shoot(&p, 0);
        assert!(top.contains_text("row 0"));
        assert!(!top.contains_text("row 99"));
        let max_scroll = p.content_height as i32 - 720;
        let bottom = shoot(&p, max_scroll);
        assert!(bottom.contains_text("row 99"));
        assert!(!bottom.contains_text("row 0"));
    }

    #[test]
    fn identical_frames_have_zero_diff() {
        let p = sample();
        let a = shoot(&p, 0);
        let b = shoot(&p, 0);
        assert_eq!(a.diff_fraction(&b), 0.0);
    }

    #[test]
    fn typed_text_changes_signature_locally() {
        let mut p = sample();
        let before = shoot(&p, 0);
        let title = p.find_by_name("title").unwrap();
        p.get_mut(title).value = "Login broken".into();
        let after = shoot(&p, 0);
        let frac = before.diff_fraction(&after);
        assert!(frac > 0.0, "a visible change must change the signature");
        assert!(
            frac < 0.25,
            "one input changing should be a local change, got {frac}"
        );
    }

    #[test]
    fn url_change_is_total_diff() {
        let p = sample();
        let a = shoot(&p, 0);
        let mut b = a.clone();
        b.url = "/elsewhere".into();
        assert_eq!(a.diff_fraction(&b), 1.0);
    }

    #[test]
    fn caret_renders_only_when_provided() {
        let p = sample();
        let title = p.find_by_name("title").unwrap();
        let caret_rect = Rect::new(p.get(title).bounds.x + 4, p.get(title).bounds.y + 6, 2, 20);
        let with = Screenshot::render(
            &p.url,
            &p.title,
            p.widgets(),
            &p.paint_order(),
            0,
            Some(caret_rect),
        );
        let without = shoot(&p, 0);
        assert!(with.items.iter().any(|i| i.visual == VisualClass::CaretBar));
        assert!(!without
            .items
            .iter()
            .any(|i| i.visual == VisualClass::CaretBar));
        assert!(with.diff_fraction(&without) > 0.0);
    }

    #[test]
    fn frame_hash_is_content_addressed() {
        let p = sample();
        // Two independent renders of the same page state hash equal.
        assert_eq!(shoot(&p, 0).frame_hash(), shoot(&p, 0).frame_hash());
        // Scroll, URL, text, and styling changes all move the hash.
        let base = shoot(&p, 0);
        assert_ne!(base.frame_hash(), shoot(&p, 50).frame_hash());
        let mut relabeled = base.clone();
        relabeled.url = "/elsewhere".into();
        assert_ne!(base.frame_hash(), relabeled.frame_hash());
        let mut edited = base.clone();
        edited.items[0].text = Sym::from(format!("{}!", edited.items[0].text));
        assert_ne!(base.frame_hash(), edited.frame_hash());
        let mut styled = base.clone();
        styled.items[0].grayed = !styled.items[0].grayed;
        assert_ne!(base.frame_hash(), styled.frame_hash());
    }

    #[test]
    fn frame_hash_matches_structural_equality() {
        let p = sample();
        let a = shoot(&p, 0);
        let b = shoot(&p, 0);
        assert_eq!(a, b);
        assert_eq!(a.frame_hash(), b.frame_hash());
    }

    #[test]
    fn disabled_widgets_render_grayed() {
        let mut b = PageBuilder::new("g", "/g");
        let id = b.button("save", "Save");
        let mut p = b.finish();
        p.get_mut(id).enabled = false;
        let s = shoot(&p, 0);
        let item = s.items.iter().find(|i| i.text == "Save").unwrap();
        assert!(item.grayed);
    }

    mod hash_soundness {
        use super::*;
        use proptest::prelude::*;

        const VISUALS: [VisualClass; 10] = [
            VisualClass::Text,
            VisualClass::TextLink,
            VisualClass::BoxButton,
            VisualClass::InputBox,
            VisualClass::CheckGlyph,
            VisualClass::RadioGlyph,
            VisualClass::IconGlyph,
            VisualClass::ImageBlob,
            VisualClass::PanelEdge,
            VisualClass::CaretBar,
        ];

        fn arb_item() -> impl Strategy<Value = PaintItem> {
            (
                (-40..1280i32, -40..720i32, 1..400u32, 1..80u32),
                0..VISUALS.len(),
                "[a-z •]{0,12}",
                0..4u8,
            )
                .prop_map(|((x, y, w, h), v, text, style)| PaintItem {
                    rect: Rect { x, y, w, h },
                    visual: VISUALS[v],
                    text: Sym::from(text),
                    emphasis: style & 1 != 0,
                    grayed: style & 2 != 0,
                })
        }

        fn arb_shot() -> impl Strategy<Value = Screenshot> {
            (
                proptest::collection::vec(arb_item(), 0..14),
                0..600i32,
                "/[a-z/]{0,10}",
                "[A-Za-z ]{0,10}",
            )
                .prop_map(|(items, scroll_y, url, title)| {
                    Screenshot::new(VIEWPORT, url, title, scroll_y, items)
                })
        }

        proptest! {
            // Completeness: equal content always hashes equal (the cache
            // may only ever *reuse*; it can never wrongly split).
            #[test]
            fn equal_frames_hash_equal(shot in arb_shot()) {
                prop_assert_eq!(shot.frame_hash(), shot.clone().frame_hash());
            }

            // Soundness over randomized frames: every kind of visible
            // perturbation — chrome, scroll, text, styling, geometry,
            // paint order, item count — moves the content address, so a
            // cached frame can never be served for a frame that would
            // rasterize differently.
            #[test]
            fn any_visible_perturbation_moves_the_hash(
                shot in arb_shot(),
                which in 0usize..7,
            ) {
                let base = shot.frame_hash();
                let mut m = shot.clone();
                match which {
                    0 => m.scroll_y += 1,
                    1 => m.url.push('x'),
                    2 => m.title.push('x'),
                    3 => m.items.push(PaintItem {
                        rect: Rect { x: 5, y: 5, w: 9, h: 9 },
                        visual: VisualClass::Text,
                        text: Sym::from("q"),
                        emphasis: false,
                        grayed: false,
                    }),
                    4 if !m.items.is_empty() => m.items[0].grayed = !m.items[0].grayed,
                    5 if !m.items.is_empty() => m.items[0].rect.x += 1,
                    6 if m.items.len() >= 2 && m.items[0] != m.items[1] => m.items.swap(0, 1),
                    _ => m.title.push('y'),
                }
                prop_assert_ne!(base, m.frame_hash());
            }

            // Field separators hold: bytes sliding between adjacent free-text
            // fields (url/title) must not alias into the same digest.
            #[test]
            fn adjacent_text_fields_do_not_alias(a in "[a-z]{0,6}", b in "[a-z]{0,6}") {
                prop_assume!(a != b);
                let mk = |url: &str, title: &str| {
                    Screenshot::new(VIEWPORT, url, title, 0, vec![])
                };
                prop_assert_ne!(mk(&a, &b).frame_hash(), mk(&b, &a).frame_hash());
            }
        }
    }
}

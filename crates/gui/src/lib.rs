//! # eclair-gui
//!
//! A from-scratch graphical-user-interface *simulator*: the substrate on
//! which every experiment in the ECLAIR reproduction runs.
//!
//! The paper's agents operate on real browsers purely through pixels
//! (screenshots in, mouse/keyboard out). This crate reproduces that contract:
//!
//! * applications are **widget trees** ([`widget`], [`tree`]) laid out into
//!   pixel rectangles by a flow [`layout`] engine inside a 1280×720 viewport;
//! * agents interact through **raw user events** ([`event`]) — clicks at
//!   points, typed text, key presses, scrolling — dispatched by a
//!   [`session::Session`] that owns focus, scrolling and form state;
//! * agents observe only **screenshots** ([`screenshot`]): a lossy rendering
//!   that keeps what pixels would carry (geometry, glyph class, drawn text,
//!   gray-out) and drops what they would not (widget ids, field names, focus
//!   flags, HTML tags);
//! * a simplified **HTML serialization** ([`html`]) exists for the
//!   set-of-marks grounding experiments, with per-widget *render tags* that
//!   may diverge from semantics (an icon button rendering as `<svg>`), the
//!   exact failure mode Section 4.2.1 of the paper describes;
//! * **themes and UI drift** ([`theme`]) mutate built pages (relabel, retag,
//!   reorder, re-pad, inject banners) to reproduce the brittleness that
//!   breaks the RPA baseline in the Section 3 case studies.
//!
//! Determinism: nothing in this crate consults wall-clock time or global
//! RNGs; "animation" (the blinking caret) is a pure function of an explicit
//! frame counter.

pub mod arena;
pub mod event;
pub mod geometry;
pub mod html;
pub mod intern;
pub mod layout;
pub mod screenshot;
pub mod session;
pub mod surface;
pub mod theme;
pub mod tree;
pub mod widget;

pub use arena::{ChildVec, NodeId, SlotArena};
pub use event::{Key, SemanticEvent, UserEvent};
pub use geometry::{Point, Rect, Size, SizeBucket};
pub use intern::{intern, Sym};
pub use screenshot::{PaintItem, Screenshot, VisualClass};
pub use session::{no_cache_env, GuiApp, Session};
pub use surface::{FaultNote, GuiSurface};
pub use theme::{DriftOp, Theme};
pub use tree::{Page, PageBuilder};
pub use widget::{Widget, WidgetId, WidgetKind};

/// Default viewport used by all experiments: 1280×720, the resolution the
/// paper's screenshots were captured at.
pub const VIEWPORT: Size = Size { w: 1280, h: 720 };

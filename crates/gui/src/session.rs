//! The session: owns a running application, a live page, focus, scroll, and
//! the dispatch loop translating raw pixel-level events into application
//! semantics.

use std::sync::Arc;

use crate::event::{Dispatch, EffectKind, Key, SemanticEvent, UserEvent};
use crate::geometry::{Point, Rect};
use crate::screenshot::Screenshot;
use crate::theme::Theme;
use crate::tree::Page;
use crate::widget::{WidgetId, WidgetKind};
use crate::VIEWPORT;

use eclair_trace::perf;

/// Whether `ECLAIR_NO_CACHE=1` is set: the global kill switch that turns
/// off the frame cache, incremental relayout, and perception memoization
/// everywhere. The cache-transparency invariant says flipping this must
/// not change a single serialized byte.
pub fn no_cache_env() -> bool {
    std::env::var("ECLAIR_NO_CACHE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Most distinct `(scroll, caret)` frames kept per page epoch. Probing
/// loops revisit only a handful of scroll offsets; the cap just bounds
/// memory on pathological drivers.
const FRAME_CACHE_CAP: usize = 32;

/// A simulated application. Implementations hold their domain state (issues,
/// products, invoices, ...) and rebuild their current screen on demand.
///
/// The contract mirrors an Elm-style loop: `build` is a pure render of the
/// current state; `on_event` is the state transition, returning `true` when
/// the state changed in a way that requires re-rendering (navigation,
/// mutation, modal open/close).
pub trait GuiApp {
    /// A short identifier ("gitlab", "magento", ...).
    fn name(&self) -> &str;

    /// The current route.
    fn url(&self) -> String;

    /// Render the current state into a page.
    fn build(&self) -> Page;

    /// Apply a semantic event. Return `true` to have the session rebuild
    /// the page from `build()`.
    fn on_event(&mut self, ev: SemanticEvent) -> bool;

    /// Advance app-side timers (spontaneous popups, toast expiry). Returns
    /// `true` if the screen must be rebuilt. Default: nothing happens.
    fn tick(&mut self) -> bool {
        false
    }

    /// Inspect application state for auditing. Task success predicates and
    /// test oracles query domain facts through string keys (e.g.
    /// `"issue_state:webapp:Login broken"`); agents never call this.
    fn probe(&self, _key: &str) -> Option<String> {
        None
    }
}

/// The accessible name an OS-level recorder resolves for a widget: its
/// label, else (for fields) its placeholder — the same fallback chain
/// screen readers use.
fn accessible_name(w: &crate::widget::Widget) -> String {
    if !w.label.is_empty() {
        w.label.to_string()
    } else if w.kind.is_editable() && !w.placeholder.is_empty() {
        w.placeholder.to_string()
    } else {
        w.label.to_string()
    }
}

/// A live browsing session over a [`GuiApp`].
///
/// The session is the boundary between the pixel world and the application
/// world: it hit-tests clicks, maintains focus and uncommitted form state,
/// applies the [`Theme`] (and its drift) after each rebuild, clamps
/// scrolling, and renders screenshots whose caret blinks as a pure function
/// of the event counter.
pub struct Session {
    app: Box<dyn GuiApp>,
    theme: Theme,
    page: Page,
    scroll_y: i32,
    focus: Option<WidgetId>,
    /// Monotonic event counter; drives caret blink phase.
    frame: u64,
    nav_count: u32,
    /// Names of editable widgets holding uncommitted edits. Rebuilds on
    /// the same URL transplant these values unconditionally — a re-render
    /// (a popup appearing, a widget toggling) must not revert what the
    /// user has typed, even over a prefilled value.
    edited: std::collections::HashSet<crate::intern::Sym>,
    /// Whether the frame cache and incremental relayout are on. Defaults
    /// to `!no_cache_env()`; flipping it must be unobservable in any
    /// serialized artifact (the transparency invariant).
    cache_enabled: bool,
    /// Bumped every time the live page is mutated in place or replaced.
    /// Scroll-only dispatches leave it alone — the dirty-tracking signal
    /// the frame cache and the tests key off.
    page_epoch: u64,
    /// FNV signature of the last *un-themed* `app.build()` output that the
    /// live page was produced from. `None` means the live page has local
    /// mutations a fresh build would not reproduce (typed drafts, locally
    /// toggled widgets, locally hidden toasts), so the next rebuild must
    /// take the full transplant path.
    build_sig: Option<u64>,
    /// Rendered frames for the current page epoch, keyed by what else
    /// feeds `Screenshot::render`: scroll offset and caret rect.
    frame_cache: std::collections::HashMap<(i32, Option<Rect>), Arc<Screenshot>>,
    /// Insertion order of `frame_cache` keys: at capacity the oldest
    /// single frame is evicted, never the whole map (a wholesale clear
    /// turns the 33rd distinct frame into a hit-rate cliff).
    frame_order: std::collections::VecDeque<(i32, Option<Rect>)>,
}

impl Session {
    /// Start a session on `app` with the default (un-drifted) theme.
    pub fn new(app: Box<dyn GuiApp>) -> Self {
        Self::with_theme(app, Theme::default())
    }

    /// Start a session with an explicit theme (used by the drift studies).
    pub fn with_theme(app: Box<dyn GuiApp>, theme: Theme) -> Self {
        let cache_enabled = !no_cache_env();
        let _cache_off = (!cache_enabled).then(crate::layout::scoped_cache_off);
        let mut page = app.build();
        let sig = page_structural_sig(&page);
        theme.apply(&mut page);
        Self {
            app,
            theme,
            page,
            scroll_y: 0,
            focus: None,
            frame: 0,
            nav_count: 0,
            edited: std::collections::HashSet::new(),
            cache_enabled,
            page_epoch: 0,
            build_sig: Some(sig),
            frame_cache: std::collections::HashMap::new(),
            frame_order: std::collections::VecDeque::new(),
        }
    }

    /// The live page (tests and oracles may inspect it; agents must not).
    pub fn page(&self) -> &Page {
        &self.page
    }

    /// The application's current URL.
    pub fn url(&self) -> String {
        self.app.url()
    }

    /// Direct access to the app for success-predicate evaluation.
    pub fn app(&self) -> &dyn GuiApp {
        self.app.as_ref()
    }

    /// Current scroll offset.
    pub fn scroll_y(&self) -> i32 {
        self.scroll_y
    }

    /// How many navigations (URL changes) happened so far.
    pub fn nav_count(&self) -> u32 {
        self.nav_count
    }

    /// The focused widget, if any (oracle-only knowledge: screenshots do
    /// not expose this except through the caret).
    pub fn focus(&self) -> Option<WidgetId> {
        self.focus
    }

    /// Swap in a new theme (e.g. a quarterly UI update) and rebuild.
    pub fn set_theme(&mut self, theme: Theme) {
        self.theme = theme;
        self.rebuild(true);
    }

    fn max_scroll(&self) -> i32 {
        (self.page.content_height as i32 - VIEWPORT.h as i32).max(0)
    }

    /// Turn the frame cache and incremental relayout on or off for this
    /// session (the `ECLAIR_NO_CACHE=1` path, and per-run toggles).
    pub fn set_cache_enabled(&mut self, on: bool) {
        if self.cache_enabled != on {
            self.cache_enabled = on;
            self.invalidate_frames();
            self.build_sig = None;
        }
    }

    /// Whether the frame cache and incremental relayout are on.
    pub fn cache_enabled(&self) -> bool {
        self.cache_enabled
    }

    /// Dirty-tracking epoch: bumped by every page mutation, untouched by
    /// scroll-only dispatches and skipped relayouts.
    pub fn page_epoch(&self) -> u64 {
        self.page_epoch
    }

    /// Drop every cached frame. Called on page mutation, and by fault
    /// injectors whose faults displace the page out from under the cache
    /// (layout shifts, stale-frame delivery).
    pub fn invalidate_frames(&mut self) {
        if !self.frame_cache.is_empty() {
            perf::record(|c| c.frame_cache_invalidations += 1);
            self.frame_cache.clear();
            self.frame_order.clear();
        }
    }

    /// Record an in-place mutation of the live page: bump the epoch, drop
    /// cached frames, and forget the build signature so the next rebuild
    /// takes the full transplant path (a fresh build no longer reproduces
    /// the live page).
    fn touch_page(&mut self) {
        self.page_epoch += 1;
        self.build_sig = None;
        self.invalidate_frames();
    }

    fn rebuild(&mut self, url_changed: bool) {
        // While this session runs cache-disabled, the layout engine below
        // must neither consult nor seed the process-wide layout cache.
        let _cache_off = (!self.cache_enabled).then(crate::layout::scoped_cache_off);
        let fresh = self.app.build();
        let sig = page_structural_sig(&fresh);
        if self.cache_enabled && !url_changed && self.build_sig == Some(sig) {
            // Incremental relayout: the app re-rendered a structurally
            // identical screen and the live page has no local mutations a
            // transplant would need to reconcile (`build_sig` is `Some`),
            // so layout, theming, and transplanting would reproduce the
            // page we already hold. Mirror only the session-state
            // transitions a full rebuild performs so the skip is
            // unobservable.
            self.focus = None;
            self.scroll_y = self.scroll_y.clamp(0, self.max_scroll());
            perf::record(|c| c.relayouts_avoided += 1);
            return;
        }
        self.page_epoch += 1;
        self.invalidate_frames();
        self.build_sig = Some(sig);
        let old = std::mem::replace(&mut self.page, fresh);
        self.theme.apply(&mut self.page);
        self.focus = None;
        if url_changed {
            // Navigation unloads the page; drafts do not survive it.
            self.scroll_y = 0;
            self.edited.clear();
        } else {
            // Same screen re-rendered: keep scroll position and transplant
            // uncommitted form values the rebuild would otherwise wipe.
            // Fields the user actively edited carry over unconditionally
            // (their draft beats whatever the app re-renders, prefilled or
            // not); untouched fields only fill in where the rebuild left
            // them empty.
            self.scroll_y = self.scroll_y.clamp(0, self.max_scroll());
            let names: Vec<(crate::intern::Sym, crate::intern::Sym)> = old
                .iter()
                .filter(|w| !w.name.is_empty() && (w.kind.is_editable() || w.kind.is_toggleable()))
                .map(|w| (w.name, w.value))
                .collect();
            for (name, value) in names {
                if let Some(id) = self.page.find_by_name(&name) {
                    let w = self.page.get_mut(id);
                    if self.edited.contains(&name) || (w.value.is_empty() && !value.is_empty()) {
                        w.value = value;
                    }
                }
            }
        }
    }

    /// Let app-side time pass (popups may appear).
    pub fn tick(&mut self) {
        self.frame += 1;
        if self.app.tick() {
            let url_changed = self.app.url() != self.page.url;
            self.rebuild(url_changed);
        }
    }

    /// Dispatch one raw event and return what it did.
    pub fn dispatch(&mut self, event: UserEvent) -> Dispatch {
        self.frame += 1;
        let url_before = self.app.url();
        let (hit, effect) = match &event {
            UserEvent::Click(p) => self.handle_click(*p),
            UserEvent::Type(text) => (self.focus_hit(), self.handle_type(text)),
            UserEvent::Press(key) => self.handle_key(*key),
            UserEvent::Scroll(dy) => {
                let before = self.scroll_y;
                self.scroll_y = (self.scroll_y + dy).clamp(0, self.max_scroll());
                let eff = if self.scroll_y != before {
                    EffectKind::Scrolled
                } else {
                    EffectKind::NoOp
                };
                (None, eff)
            }
        };
        let url_after = self.app.url();
        if url_after != url_before {
            self.nav_count += 1;
        }
        Dispatch {
            event,
            hit,
            effect,
            url_after,
        }
    }

    fn focus_hit(&self) -> Option<(String, String)> {
        self.focus.map(|id| {
            let w = self.page.get(id);
            (w.name.to_string(), accessible_name(w))
        })
    }

    fn handle_click(&mut self, viewport_pt: Point) -> (Option<(String, String)>, EffectKind) {
        let page_pt = viewport_pt.offset(0, self.scroll_y);
        let Some(id) = self.page.hit_test(page_pt) else {
            self.focus = None;
            return (None, EffectKind::NoOp);
        };
        let w = self.page.get(id);
        let hit = Some((w.name.to_string(), accessible_name(w)));
        let kind = w.kind;
        if kind.is_editable() {
            self.focus = Some(id);
            return (hit, EffectKind::Focused);
        }
        if kind.is_toggleable() {
            self.focus = None;
            let (name, label, checked) = {
                let w = self.page.get_mut(id);
                let now = w.value != "true";
                w.value = if now { "true" } else { "false" }.into();
                (w.name, w.label, now)
            };
            if kind == WidgetKind::Radio && checked {
                // Uncheck sibling radios sharing the group name.
                let others: Vec<WidgetId> = self
                    .page
                    .iter()
                    .filter(|o| {
                        o.kind == WidgetKind::Radio
                            && o.name == name
                            && o.id != id
                            // Already-unchecked siblings stay untouched (no
                            // dirty mark for a write that changes nothing).
                            && o.value != "false"
                    })
                    .map(|o| o.id)
                    .collect();
                for o in others {
                    self.page.get_mut(o).value = "false".into();
                }
            }
            self.touch_page();
            let rebuild = self.app.on_event(SemanticEvent::Toggled {
                name: name.to_string(),
                label: label.to_string(),
                checked,
            });
            if rebuild {
                self.after_app_event();
            }
            return (hit, EffectKind::Toggled);
        }
        if kind.is_activatable() {
            self.focus = None;
            let fields_root = self.page.enclosing_form(id).unwrap_or(self.page.root());
            let fields = self.page.field_values(fields_root);
            let (name, label) = {
                let w = self.page.get(id);
                (w.name.to_string(), w.label.to_string())
            };
            let rebuild = self.app.on_event(SemanticEvent::Activated {
                name,
                label,
                fields,
            });
            self.edited.clear();
            if rebuild {
                self.after_app_event();
            }
            return (hit, EffectKind::Activated);
        }
        (hit, EffectKind::NoOp)
    }

    fn after_app_event(&mut self) {
        let url_changed = self.app.url() != self.page.url;
        self.rebuild(url_changed);
    }

    fn handle_type(&mut self, text: &str) -> EffectKind {
        let Some(id) = self.focus else {
            // Typing with nothing focused: keystrokes vanish. This is the
            // exact actuation failure the Validate experiments detect.
            return EffectKind::NoOp;
        };
        if !self.page.get(id).enabled || !self.page.get(id).kind.is_editable() {
            return EffectKind::NoOp;
        }
        let before = self.page.get(id).value;
        let w = self.page.get_mut(id);
        if w.kind == WidgetKind::Select {
            // Combo-box behaviour: snap to the best-matching option. Try
            // the accumulated text first; if the field already held a full
            // option (prefilled select), the fresh keystrokes alone are the
            // query — typing "Disabled" over "Enabled" switches options.
            let accumulated = format!("{}{}", w.value, text);
            let find = |query: &str| {
                let lower = query.to_lowercase();
                w.options
                    .iter()
                    .find(|o| o.to_lowercase() == lower)
                    .or_else(|| {
                        w.options
                            .iter()
                            .find(|o| o.to_lowercase().starts_with(&lower))
                    })
                    .or_else(|| w.options.iter().find(|o| o.to_lowercase().contains(&lower)))
                    .copied()
            };
            w.value = find(&accumulated)
                .or_else(|| find(text))
                .unwrap_or_else(|| accumulated.into());
        } else {
            w.value = format!("{}{}", w.value, text).into();
        }
        let name = self.page.get(id).name;
        if !name.is_empty() {
            self.edited.insert(name);
        }
        // Identical-value write (a select snapping back to its current
        // option, an empty text event): the screen cannot have changed, so
        // evicting every cached frame would be pure waste.
        if self.page.get(id).value != before {
            self.touch_page();
        }
        EffectKind::Typed
    }

    fn handle_key(&mut self, key: Key) -> (Option<(String, String)>, EffectKind) {
        match key {
            Key::Backspace => {
                if let Some(id) = self.focus {
                    let w = self.page.get(id);
                    if w.kind.is_editable() && !w.value.is_empty() {
                        let mut value = w.value.to_string();
                        value.pop();
                        let w = self.page.get_mut(id);
                        w.value = value.into();
                        let name = w.name;
                        if !name.is_empty() {
                            self.edited.insert(name);
                        }
                        self.touch_page();
                        return (self.focus_hit(), EffectKind::Typed);
                    }
                }
                (None, EffectKind::NoOp)
            }
            Key::Tab => {
                let editables: Vec<WidgetId> = self
                    .page
                    .paint_order()
                    .into_iter()
                    .filter(|&id| {
                        let w = self.page.get(id);
                        w.kind.is_editable() && w.enabled
                    })
                    .collect();
                if editables.is_empty() {
                    return (None, EffectKind::NoOp);
                }
                let next = match self
                    .focus
                    .and_then(|f| editables.iter().position(|&e| e == f))
                {
                    Some(pos) => editables[(pos + 1) % editables.len()],
                    None => editables[0],
                };
                self.focus = Some(next);
                (self.focus_hit(), EffectKind::FocusMoved)
            }
            Key::Escape => {
                // Dismiss the topmost modal, else the first visible toast.
                let target = self.page.active_modal().or_else(|| {
                    self.page
                        .iter()
                        .find(|w| w.kind == WidgetKind::Toast && w.visible)
                        .map(|w| w.id)
                });
                let Some(id) = target else {
                    return (None, EffectKind::NoOp);
                };
                let name = self.page.get(id).name.to_string();
                let label = self.page.get(id).label.to_string();
                let rebuild = self
                    .app
                    .on_event(SemanticEvent::Dismissed { name: name.clone() });
                if rebuild {
                    self.after_app_event();
                } else {
                    // App does not track it; excise the subtree locally.
                    // Removal (not hiding) vacates the arena slots, so the
                    // next injected popup reuses them instead of growing
                    // the arena for the life of the page.
                    let _cache_off = (!self.cache_enabled).then(crate::layout::scoped_cache_off);
                    self.page.remove_subtree(id);
                    self.page.relayout_incremental();
                    self.touch_page();
                }
                (Some((name, label)), EffectKind::Dismissed)
            }
            Key::Enter => {
                let Some(focused) = self.focus else {
                    return (None, EffectKind::NoOp);
                };
                if self.page.get(focused).kind == WidgetKind::TextArea {
                    let w = self.page.get_mut(focused);
                    w.value = format!("{}\n", w.value).into();
                    self.touch_page();
                    return (self.focus_hit(), EffectKind::Typed);
                }
                // Submit: activate the enclosing form's first enabled button.
                let Some(form) = self.page.enclosing_form(focused) else {
                    return (None, EffectKind::NoOp);
                };
                let submit = self.find_submit_button(form);
                let Some(btn) = submit else {
                    return (None, EffectKind::NoOp);
                };
                let center = self.page.get(btn).bounds.center();
                let viewport_pt = center.offset(0, -self.scroll_y);
                self.handle_click(viewport_pt)
            }
        }
    }

    fn find_submit_button(&self, form: WidgetId) -> Option<WidgetId> {
        self.page.paint_order().into_iter().find(|&id| {
            let w = self.page.get(id);
            w.kind == WidgetKind::Button && w.enabled && self.page.is_within(id, form)
        })
    }

    /// Page-space caret rect for the focused widget, when blink phase is on.
    fn caret(&self, phase_on: bool) -> Option<Rect> {
        if !phase_on {
            return None;
        }
        let id = self.focus?;
        let w = self.page.get(id);
        if !w.kind.is_editable() {
            return None;
        }
        let text_w = (w.value.chars().count() as i32) * crate::layout::CHAR_W as i32;
        Some(Rect::new(
            w.bounds.x + 6 + text_w.min(w.bounds.w as i32 - 10),
            w.bounds.y + 6,
            2,
            w.bounds.h.saturating_sub(12).max(4),
        ))
    }

    /// Capture a screenshot at the current blink phase (alternates with
    /// every dispatched event, like a ~2 Hz caret under a steady action
    /// rate). A *static* screenshot therefore may or may not show the caret
    /// — the paper's stated reason step-level integrity checking is hard.
    ///
    /// Frames are content-addressed and shared: re-observing an unchanged
    /// page at a scroll/caret state seen this epoch returns the same
    /// `Arc` without re-rendering. The cached frame is byte-identical to
    /// a fresh render (`screenshot_at_phase` is a pure function of page,
    /// scroll, and caret, and every page mutation drops the cache), so
    /// the cache is unobservable except through [`perf`] counters.
    pub fn screenshot(&mut self) -> Arc<Screenshot> {
        let caret_on = self.frame.is_multiple_of(2);
        if !self.cache_enabled {
            return Arc::new(self.screenshot_at_phase(caret_on));
        }
        let key = (self.scroll_y, self.caret(caret_on));
        if let Some(shot) = self.frame_cache.get(&key) {
            perf::record(|c| c.frame_cache_hits += 1);
            return Arc::clone(shot);
        }
        perf::record(|c| c.frame_cache_misses += 1);
        let shot = Arc::new(self.screenshot_at_phase(caret_on));
        if self.frame_cache.len() >= FRAME_CACHE_CAP {
            if let Some(oldest) = self.frame_order.pop_front() {
                self.frame_cache.remove(&oldest);
            }
        }
        if self.frame_cache.insert(key, Arc::clone(&shot)).is_none() {
            self.frame_order.push_back(key);
        }
        shot
    }

    /// Capture with an explicit caret phase (tests and the oracle use this).
    pub fn screenshot_at_phase(&self, caret_on: bool) -> Screenshot {
        Screenshot::render(
            &self.page.url,
            &self.page.title,
            self.page.widgets(),
            &self.page.paint_order(),
            self.scroll_y,
            self.caret(caret_on),
        )
    }

    /// Convenience for oracles/replayers: click the center of the widget
    /// with `name`, scrolling it into view first. Returns `false` when no
    /// such widget exists or it is not interactive.
    pub fn click_by_name(&mut self, name: &str) -> bool {
        let Some(id) = self.page.find_by_name(name) else {
            return false;
        };
        if !self.page.get(id).kind.is_interactive() {
            return false;
        }
        self.scroll_into_view(id);
        let center = self.page.get(id).bounds.center().offset(0, -self.scroll_y);
        let d = self.dispatch(UserEvent::Click(center));
        d.effect != EffectKind::NoOp
    }

    /// Scroll so the widget is inside the viewport.
    pub fn scroll_into_view(&mut self, id: WidgetId) {
        let b = self.page.get(id).bounds;
        let view_top = self.scroll_y;
        let view_bottom = self.scroll_y + VIEWPORT.h as i32;
        if b.y < view_top {
            self.scroll_y = (b.y - 20).clamp(0, self.max_scroll());
        } else if b.bottom() > view_bottom {
            self.scroll_y = (b.bottom() - VIEWPORT.h as i32 + 20).clamp(0, self.max_scroll());
        }
    }
}

/// FNV-1a signature over everything layout and theming consume from a
/// freshly built (un-themed) page. Two builds with equal signatures laid
/// out and themed under the same theme produce identical pages, which is
/// what licenses [`Session::rebuild`] to skip the reconstruction.
fn page_structural_sig(page: &Page) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let eat_u64 = |h: &mut u64, v: u64| {
        for b in v.to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(PRIME);
        }
    };
    fn eat_str(h: &mut u64, s: &str) {
        for &b in s.as_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(PRIME);
        }
        // Separator so ("ab","c") and ("a","bc") differ.
        *h ^= 0xFF;
        *h = h.wrapping_mul(PRIME);
    }
    eat_str(&mut h, &page.url);
    eat_str(&mut h, &page.title);
    for w in page.iter() {
        eat_u64(&mut h, w.kind as u64);
        // Interned ids are collision-free stand-ins for the strings (equal
        // ids iff equal contents) and never leave the process, so folding
        // them is sound here — unlike in `frame_hash`, which crosses runs.
        eat_u64(&mut h, (w.tag.id() as u64) | ((w.label.id() as u64) << 32));
        eat_u64(&mut h, (w.name.id() as u64) | ((w.value.id() as u64) << 32));
        eat_u64(&mut h, w.placeholder.id() as u64);
        eat_u64(&mut h, w.options.len() as u64);
        for o in &w.options {
            eat_u64(&mut h, o.id() as u64);
        }
        eat_u64(
            &mut h,
            w.level as u64 | (w.enabled as u64) << 8 | (w.visible as u64) << 9,
        );
        eat_u64(&mut h, w.parent.map_or(u64::MAX, |p| p.0 as u64));
        eat_u64(&mut h, w.children.len() as u64);
        for c in &w.children {
            eat_u64(&mut h, c.0 as u64);
        }
        eat_u64(&mut h, w.fixed_w.map_or(u64::MAX, u64::from));
        eat_u64(&mut h, w.fixed_h.map_or(u64::MAX, u64::from));
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{Page, PageBuilder};

    /// A miniature two-screen app used by the session tests: a form that,
    /// on submit, stores the value and navigates to a confirmation screen.
    struct MiniApp {
        route: String,
        saved_title: Option<String>,
        modal_open: bool,
        ticks: u32,
    }

    impl MiniApp {
        fn new() -> Self {
            Self {
                route: "/form".into(),
                saved_title: None,
                modal_open: false,
                ticks: 0,
            }
        }
    }

    impl GuiApp for MiniApp {
        fn name(&self) -> &str {
            "mini"
        }
        fn url(&self) -> String {
            self.route.clone()
        }
        fn build(&self) -> Page {
            match self.route.as_str() {
                "/done" => {
                    let mut b = PageBuilder::new("Done", "/done");
                    b.heading(1, "Saved");
                    b.text(format!(
                        "Created: {}",
                        self.saved_title.clone().unwrap_or_default()
                    ));
                    b.link("back", "Back");
                    b.finish()
                }
                _ => {
                    let mut b = PageBuilder::new("Form", "/form");
                    b.heading(1, "New item");
                    b.form("item-form", |b| {
                        b.text_input("title", "Title", "enter title");
                        b.button("save", "Save");
                    });
                    b.button("help", "Help");
                    if self.modal_open {
                        b.modal("promo", |b| {
                            b.text("Subscribe to our newsletter!");
                            b.button("promo-close", "No thanks");
                        });
                    }
                    b.finish()
                }
            }
        }
        fn on_event(&mut self, ev: SemanticEvent) -> bool {
            match ev {
                SemanticEvent::Activated { name, fields, .. } => match name.as_str() {
                    "save" => {
                        let title = fields
                            .iter()
                            .find(|(n, _)| n == "title")
                            .map(|(_, v)| v.clone())
                            .unwrap_or_default();
                        self.saved_title = Some(title);
                        self.route = "/done".into();
                        true
                    }
                    "back" => {
                        self.route = "/form".into();
                        true
                    }
                    "promo-close" => {
                        self.modal_open = false;
                        true
                    }
                    _ => false,
                },
                SemanticEvent::Dismissed { name } if name == "promo" => {
                    self.modal_open = false;
                    true
                }
                _ => false,
            }
        }
        fn tick(&mut self) -> bool {
            self.ticks += 1;
            if self.ticks == 3 && self.route == "/form" {
                self.modal_open = true;
                return true;
            }
            false
        }
    }

    fn click_widget(s: &mut Session, name: &str) -> Dispatch {
        let id = s.page().find_by_name(name).unwrap();
        let pt = s.page().get(id).bounds.center().offset(0, -s.scroll_y());
        s.dispatch(UserEvent::Click(pt))
    }

    #[test]
    fn full_form_flow() {
        let mut s = Session::new(Box::new(MiniApp::new()));
        // Click the input, type, submit.
        let d = click_widget(&mut s, "title");
        assert_eq!(d.effect, EffectKind::Focused);
        let d = s.dispatch(UserEvent::Type("Quarterly report".into()));
        assert_eq!(d.effect, EffectKind::Typed);
        let d = click_widget(&mut s, "save");
        assert_eq!(d.effect, EffectKind::Activated);
        assert_eq!(s.url(), "/done");
        assert_eq!(s.nav_count(), 1);
        assert!(s.screenshot().contains_text("Created: Quarterly report"));
    }

    #[test]
    fn typing_without_focus_is_noop() {
        let mut s = Session::new(Box::new(MiniApp::new()));
        let before = s.screenshot_at_phase(false);
        let d = s.dispatch(UserEvent::Type("lost keystrokes".into()));
        assert_eq!(d.effect, EffectKind::NoOp);
        let after = s.screenshot_at_phase(false);
        assert_eq!(before.diff_fraction(&after), 0.0, "screen unchanged");
    }

    #[test]
    fn enter_submits_enclosing_form() {
        let mut s = Session::new(Box::new(MiniApp::new()));
        click_widget(&mut s, "title");
        s.dispatch(UserEvent::Type("via enter".into()));
        let d = s.dispatch(UserEvent::Press(Key::Enter));
        assert_eq!(d.effect, EffectKind::Activated);
        assert_eq!(s.url(), "/done");
    }

    #[test]
    fn spontaneous_modal_blocks_then_escape_recovers() {
        let mut s = Session::new(Box::new(MiniApp::new()));
        s.tick();
        s.tick();
        s.tick(); // modal appears
        assert!(s.page().active_modal().is_some());
        // Clicking "save" through the modal does nothing useful.
        let d = click_widget(&mut s, "save");
        assert_ne!(d.effect, EffectKind::Activated);
        // Escape dismisses it (the paper's "common sense to error correct").
        let d = s.dispatch(UserEvent::Press(Key::Escape));
        assert_eq!(d.effect, EffectKind::Dismissed);
        assert!(s.page().active_modal().is_none());
        // And now the form is usable again.
        let d = click_widget(&mut s, "title");
        assert_eq!(d.effect, EffectKind::Focused);
    }

    #[test]
    fn caret_blinks_with_event_parity() {
        let mut s = Session::new(Box::new(MiniApp::new()));
        click_widget(&mut s, "title");
        let on = s.screenshot_at_phase(true);
        let off = s.screenshot_at_phase(false);
        use crate::screenshot::VisualClass;
        assert!(on.items.iter().any(|i| i.visual == VisualClass::CaretBar));
        assert!(!off.items.iter().any(|i| i.visual == VisualClass::CaretBar));
    }

    #[test]
    fn tab_cycles_focus() {
        let mut s = Session::new(Box::new(MiniApp::new()));
        let d = s.dispatch(UserEvent::Press(Key::Tab));
        assert_eq!(d.effect, EffectKind::FocusMoved);
        assert!(s.focus().is_some());
        s.dispatch(UserEvent::Type("tabbed text".into()));
        let title = s.page().find_by_name("title").unwrap();
        assert_eq!(s.page().get(title).value, "tabbed text");
    }

    #[test]
    fn backspace_edits_focused_value() {
        let mut s = Session::new(Box::new(MiniApp::new()));
        click_widget(&mut s, "title");
        s.dispatch(UserEvent::Type("abc".into()));
        s.dispatch(UserEvent::Press(Key::Backspace));
        let title = s.page().find_by_name("title").unwrap();
        assert_eq!(s.page().get(title).value, "ab");
    }

    #[test]
    fn draft_in_a_prefilled_field_survives_a_same_url_rebuild() {
        /// Settings screen with a prefilled field; a banner appears on
        /// tick — a same-URL re-render, like a chaos modal or a toast
        /// expiring mid-edit.
        struct PrefilledApp {
            banner: bool,
        }
        impl GuiApp for PrefilledApp {
            fn name(&self) -> &str {
                "prefilled"
            }
            fn url(&self) -> String {
                "/settings".into()
            }
            fn build(&self) -> Page {
                let mut b = PageBuilder::new("Settings", "/settings");
                let mut rate = None;
                b.form("settings", |b| {
                    rate = Some(b.text_input("rate", "Tax rate", ""));
                    b.button("apply", "Apply");
                });
                if self.banner {
                    b.toast("Connection restored");
                }
                let mut page = b.finish();
                page.get_mut(rate.unwrap()).value = "0.00".into();
                page
            }
            fn on_event(&mut self, _: SemanticEvent) -> bool {
                false
            }
            fn tick(&mut self) -> bool {
                if !self.banner {
                    self.banner = true;
                    return true;
                }
                false
            }
        }

        let mut s = Session::new(Box::new(PrefilledApp { banner: false }));
        let rate = s.page().find_by_name("rate").unwrap();
        assert_eq!(
            s.page().get(rate).value,
            "0.00",
            "fixture prefills the field"
        );
        click_widget(&mut s, "rate");
        for _ in 0..4 {
            s.dispatch(UserEvent::Press(Key::Backspace));
        }
        s.dispatch(UserEvent::Type("7.25".into()));
        s.tick(); // banner appears: same-URL rebuild mid-edit
        let rate = s.page().find_by_name("rate").unwrap();
        assert_eq!(
            s.page().get(rate).value,
            "7.25",
            "a same-URL re-render must not revert an actively edited field to its prefill"
        );
    }

    /// App whose `tick` always requests a rebuild but whose screen never
    /// changes — the pattern (polling re-render) incremental relayout
    /// exists for.
    struct SteadyApp;
    impl GuiApp for SteadyApp {
        fn name(&self) -> &str {
            "steady"
        }
        fn url(&self) -> String {
            "/steady".into()
        }
        fn build(&self) -> Page {
            let mut b = PageBuilder::new("Steady", "/steady");
            b.form("f", |b| {
                b.text_input("q", "Query", "type here");
                b.button("go", "Go");
            });
            for i in 0..60 {
                b.text(format!("row {i}"));
            }
            b.finish()
        }
        fn on_event(&mut self, _: SemanticEvent) -> bool {
            false
        }
        fn tick(&mut self) -> bool {
            true
        }
    }

    #[test]
    fn unchanged_rebuild_is_skipped_but_edit_dirties_it() {
        // Engine-level counters (relayouts_full / layout_cache_hits) are
        // asserted as deltas: the global layout cache is shared across
        // tests in this binary, so whether a given build walks or replays
        // depends on what ran before.
        eclair_trace::perf::reset();
        let mut s = Session::new(Box::new(SteadyApp));
        assert!(s.cache_enabled());
        let epoch = s.page_epoch();
        let base = eclair_trace::perf::snapshot();
        s.tick(); // app requests a rebuild; nothing changed
        let c = eclair_trace::perf::snapshot();
        assert_eq!(
            c.relayouts_avoided - base.relayouts_avoided,
            1,
            "identical build skips relayout"
        );
        assert_eq!(s.page_epoch(), epoch, "skip leaves the epoch alone");

        // Scroll-only dispatch stays clean: the next rebuild still skips.
        s.dispatch(UserEvent::Scroll(120));
        s.tick();
        assert_eq!(
            eclair_trace::perf::snapshot().relayouts_avoided - base.relayouts_avoided,
            2
        );
        assert_eq!(s.page_epoch(), epoch, "scrolling does not dirty the page");

        // An edit dirties the subtree: the next rebuild must transplant.
        click_widget(&mut s, "q");
        s.dispatch(UserEvent::Type("draft".into()));
        assert!(s.page_epoch() > epoch, "typing dirties the page");
        let before = eclair_trace::perf::snapshot();
        s.tick();
        let c = eclair_trace::perf::snapshot();
        assert_eq!(
            c.relayouts_avoided, before.relayouts_avoided,
            "dirty page cannot skip"
        );
        assert_eq!(
            (c.relayouts_full + c.layout_cache_hits)
                - (before.relayouts_full + before.layout_cache_hits),
            1,
            "dirty page ran exactly one layout (walked or replayed)"
        );
        let q = s.page().find_by_name("q").unwrap();
        assert_eq!(s.page().get(q).value, "draft", "transplant kept the draft");
        // ... and once reconciled, the next identical build skips again.
        s.tick();
        assert_eq!(
            eclair_trace::perf::snapshot().relayouts_avoided,
            before.relayouts_avoided + 1
        );
    }

    #[test]
    fn repeated_screenshots_share_one_frame() {
        eclair_trace::perf::reset();
        let mut s = Session::new(Box::new(SteadyApp));
        let a = s.screenshot();
        let b = s.screenshot();
        assert!(Arc::ptr_eq(&a, &b), "unchanged page re-serves the frame");
        let c = eclair_trace::perf::snapshot();
        assert_eq!((c.frame_cache_hits, c.frame_cache_misses), (1, 1));

        // Scrolling away misses, scrolling back hits the cached frame.
        s.dispatch(UserEvent::Scroll(200));
        let far = s.screenshot();
        assert!(!Arc::ptr_eq(&a, &far));
        s.dispatch(UserEvent::Scroll(-200));
        let back = s.screenshot();
        assert_eq!(*back, *a, "same state renders the same bytes");
        assert!(eclair_trace::perf::snapshot().frame_cache_hits >= 2);
    }

    #[test]
    fn cached_frames_match_fresh_renders_and_die_with_mutations() {
        let mut s = Session::new(Box::new(MiniApp::new()));
        let cached = s.screenshot();
        assert_eq!(
            *cached,
            s.screenshot_at_phase(true),
            "cache serves exactly what a fresh render produces"
        );
        // Mutate the page (type into the form): the cache must not serve
        // the pre-edit frame.
        click_widget(&mut s, "title");
        s.dispatch(UserEvent::Type("x".into()));
        let after = s.screenshot();
        assert!(
            after.contains_text("x"),
            "post-mutation screenshot reflects the edit"
        );
    }

    #[test]
    fn identical_value_write_does_not_evict_frames() {
        // A write that leaves the value unchanged — here a select snapping
        // back to its current option — must not invalidate the frame
        // cache: the screen cannot have changed, so eviction would turn
        // no-op keystrokes into render storms.
        struct SelectApp;
        impl GuiApp for SelectApp {
            fn name(&self) -> &str {
                "sel"
            }
            fn url(&self) -> String {
                "/sel".into()
            }
            fn build(&self) -> Page {
                let mut b = PageBuilder::new("Sel", "/sel");
                b.form("f", |b| {
                    b.select("state", "State", &["Enabled", "Disabled"], Some("Enabled"));
                });
                b.finish()
            }
            fn on_event(&mut self, _: SemanticEvent) -> bool {
                false
            }
        }
        eclair_trace::perf::reset();
        let mut s = Session::new(Box::new(SelectApp));
        click_widget(&mut s, "state");
        s.screenshot();
        let inv_before = eclair_trace::perf::snapshot().frame_cache_invalidations;
        let epoch = s.page_epoch();
        let d = s.dispatch(UserEvent::Type("enabled".into()));
        assert_eq!(d.effect, EffectKind::Typed);
        let state = s.page().find_by_name("state").unwrap();
        assert_eq!(
            s.page().get(state).value,
            "Enabled",
            "snap landed on the already-selected option"
        );
        assert_eq!(s.page_epoch(), epoch, "no-op write leaves the page clean");
        assert_eq!(
            eclair_trace::perf::snapshot().frame_cache_invalidations,
            inv_before,
            "no-op write must not evict cached frames"
        );
        // A real edit still invalidates.
        s.dispatch(UserEvent::Type("dis".into()));
        assert_eq!(s.page().get(state).value, "Disabled");
        assert!(s.page_epoch() > epoch, "a value change dirties the page");
    }

    #[test]
    fn disabling_the_cache_renders_every_frame() {
        eclair_trace::perf::reset();
        let mut s = Session::new(Box::new(SteadyApp));
        s.set_cache_enabled(false);
        let a = s.screenshot();
        let b = s.screenshot();
        assert!(!Arc::ptr_eq(&a, &b), "cache off: every frame is fresh");
        assert_eq!(*a, *b, "but the bytes are identical either way");
        let c = eclair_trace::perf::snapshot();
        assert_eq!(
            (c.frame_cache_hits, c.frame_cache_misses),
            (0, 0),
            "cache-off lookups never touch the counters"
        );
        // And rebuilds always take the full path: a real walk, with the
        // global layout cache neither consulted nor seeded.
        let before = eclair_trace::perf::snapshot();
        s.tick();
        let after = eclair_trace::perf::snapshot();
        assert_eq!(after.relayouts_avoided, before.relayouts_avoided);
        assert_eq!(
            after.relayouts_full - before.relayouts_full,
            1,
            "cache off: the walk really ran"
        );
        assert_eq!(
            after.layout_cache_hits, before.layout_cache_hits,
            "cache off: the global layout cache is not consulted"
        );
    }

    #[test]
    fn click_by_name_scrolls_into_view() {
        struct TallApp;
        impl GuiApp for TallApp {
            fn name(&self) -> &str {
                "tall"
            }
            fn url(&self) -> String {
                "/tall".into()
            }
            fn build(&self) -> Page {
                let mut b = PageBuilder::new("Tall", "/tall");
                for i in 0..80 {
                    b.text(format!("filler {i}"));
                }
                b.button("bottom", "Bottom button");
                b.finish()
            }
            fn on_event(&mut self, _: SemanticEvent) -> bool {
                false
            }
        }
        let mut s = Session::new(Box::new(TallApp));
        assert!(s.click_by_name("bottom"));
        assert!(s.scroll_y() > 0, "session scrolled to reach the button");
    }

    #[test]
    fn frame_cache_eviction_has_no_cliff_at_capacity() {
        // 33 distinct frames against a 32-entry cap: the 33rd insertion
        // must evict exactly the oldest frame. The old wholesale `clear()`
        // turned it into a cliff — every revisit after frame 33 missed.
        struct TallSteady;
        impl GuiApp for TallSteady {
            fn name(&self) -> &str {
                "tall-steady"
            }
            fn url(&self) -> String {
                "/tall-steady".into()
            }
            fn build(&self) -> Page {
                let mut b = PageBuilder::new("TallSteady", "/tall-steady");
                for i in 0..80 {
                    b.text(format!("filler {i}"));
                }
                b.finish()
            }
            fn on_event(&mut self, _: SemanticEvent) -> bool {
                false
            }
        }
        eclair_trace::perf::reset();
        let mut s = Session::new(Box::new(TallSteady));
        s.screenshot(); // offset 0
        for _ in 0..32 {
            s.dispatch(UserEvent::Scroll(1));
            s.screenshot(); // offsets 1..=32 — one past the cap
        }
        assert_eq!(eclair_trace::perf::snapshot().frame_cache_misses, 33);
        // Walk back down: every offset except the single evicted oldest
        // (offset 0) is still resident.
        for _ in 0..32 {
            s.dispatch(UserEvent::Scroll(-1));
            s.screenshot(); // offsets 31, 30, ..., 0
        }
        let c = eclair_trace::perf::snapshot();
        assert_eq!(
            c.frame_cache_hits, 31,
            "offsets 31..=1 survive the 33rd insertion (no hit-rate cliff)"
        );
        assert_eq!(
            c.frame_cache_misses, 34,
            "only the evicted offset re-renders"
        );
        assert_eq!(
            c.frame_cache_invalidations, 0,
            "eviction is not invalidation"
        );
    }
}

//! Generational slot arena for long-lived widget nodes, plus a SmallVec
//! style child list with inline storage.
//!
//! The arena keeps its values in one dense `Vec<T>` so the layout engine
//! and the renderer can keep borrowing a plain `&[T]` slice and indexing by
//! slot — vacated slots hold an inert tombstone value rather than punching
//! holes in the storage. Occupancy is tracked by generation parity (odd =
//! occupied, even = vacant), so a [`NodeId`] captured before a removal can
//! never resolve again: removal bumps the slot's generation, and every
//! lookup checks it.

use serde::{Deserialize, Serialize, Value};

use eclair_trace::perf;

use crate::widget::WidgetId;

/// A generational key into a [`SlotArena`]: slot index plus the generation
/// the slot had when this key was handed out. Stale keys (the slot was
/// since vacated, or vacated and reused) fail the generation check and
/// resolve to `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    slot: u32,
    gen: u32,
}

impl NodeId {
    /// The slot index this key addresses.
    pub fn slot(self) -> u32 {
        self.slot
    }

    /// The generation this key was minted with.
    pub fn gen(self) -> u32 {
        self.gen
    }

    /// The slot as a plain dense-storage index (the pre-arena id type).
    pub fn widget_id(self) -> WidgetId {
        WidgetId(self.slot)
    }
}

/// Dense generational arena. Slot `i` of [`data`](Self::data) holds either
/// the live value inserted there or the tombstone left by its removal;
/// `gens[i]` parity says which.
#[derive(Debug, Clone)]
pub struct SlotArena<T> {
    data: Vec<T>,
    /// Per-slot generation; odd = occupied, even = vacant. A fresh insert
    /// into slot `i` bumps `gens[i]` from even to odd, a removal from odd
    /// to even — so a key's generation matches at most one occupancy span.
    gens: Vec<u32>,
    /// Vacant slots available for reuse, most recently vacated last.
    free: Vec<u32>,
}

impl<T> Default for SlotArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SlotArena<T> {
    pub fn new() -> Self {
        Self {
            data: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of slots (live + tombstoned). This is the length of the
    /// dense slice views.
    pub fn slot_count(&self) -> usize {
        self.data.len()
    }

    /// Number of live values.
    pub fn live_count(&self) -> usize {
        self.data.len() - self.free.len()
    }

    /// Insert a value, reusing the most recently vacated slot if one
    /// exists (generation bumped so stale keys stay stale).
    pub fn insert(&mut self, value: T) -> NodeId {
        if let Some(slot) = self.free.pop() {
            let i = slot as usize;
            self.data[i] = value;
            self.gens[i] += 1; // even -> odd: occupied again
            perf::record(|c| c.arena_slots_reused += 1);
            NodeId {
                slot,
                gen: self.gens[i],
            }
        } else {
            let slot = u32::try_from(self.data.len()).expect("arena overflow");
            self.data.push(value);
            self.gens.push(1); // first occupancy
            NodeId { slot, gen: 1 }
        }
    }

    /// Remove the value `id` points at, leaving `tombstone` in the slot
    /// and freeing it for reuse. Returns the removed value, or `None` if
    /// `id` is stale.
    pub fn remove(&mut self, id: NodeId, tombstone: T) -> Option<T> {
        if !self.contains(id) {
            return None;
        }
        let i = id.slot as usize;
        self.gens[i] += 1; // odd -> even: vacant
        self.free.push(id.slot);
        Some(std::mem::replace(&mut self.data[i], tombstone))
    }

    /// Whether `id` still resolves (slot occupied at the same generation).
    pub fn contains(&self, id: NodeId) -> bool {
        let i = id.slot as usize;
        i < self.gens.len() && self.gens[i] == id.gen && self.gens[i] % 2 == 1
    }

    /// Resolve a generational key.
    pub fn get(&self, id: NodeId) -> Option<&T> {
        if self.contains(id) {
            Some(&self.data[id.slot as usize])
        } else {
            None
        }
    }

    /// Resolve a generational key mutably.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        if self.contains(id) {
            Some(&mut self.data[id.slot as usize])
        } else {
            None
        }
    }

    /// Whether the slot at `slot` is currently occupied.
    pub fn slot_occupied(&self, slot: u32) -> bool {
        (slot as usize) < self.gens.len() && self.gens[slot as usize] % 2 == 1
    }

    /// The current generational key for an occupied slot.
    pub fn id_at_slot(&self, slot: u32) -> Option<NodeId> {
        if self.slot_occupied(slot) {
            Some(NodeId {
                slot,
                gen: self.gens[slot as usize],
            })
        } else {
            None
        }
    }

    /// Dense view over all slots, tombstones included. Callers that must
    /// skip tombstones pair this with [`slot_occupied`](Self::slot_occupied).
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable dense view over all slots, tombstones included.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Iterate live `(slot, &value)` pairs in slot order.
    pub fn iter_live(&self) -> impl Iterator<Item = (u32, &T)> {
        self.data
            .iter()
            .enumerate()
            .filter(|(i, _)| self.gens[*i] % 2 == 1)
            .map(|(i, v)| (i as u32, v))
    }
}

// Pages serialize as a plain widget list (the pre-arena JSON shape).
// Deserialization treats every slot as occupied with no free list; any
// serialized tombstones come back as unreachable-but-live junk, which no
// root-walking consumer can observe.
impl<T: Serialize> Serialize for SlotArena<T> {
    fn to_value(&self) -> Value {
        self.data.to_value()
    }
}

impl<T: Deserialize> Deserialize for SlotArena<T> {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let data = Vec::<T>::from_value(v)?;
        let gens = vec![1u32; data.len()];
        Ok(Self {
            data,
            gens,
            free: Vec::new(),
        })
    }
}

/// Inline capacity of [`ChildVec`]: child lists up to this long live inside
/// the widget itself, no heap allocation.
pub const CHILD_INLINE: usize = 8;

/// A widget's child list. Stores up to [`CHILD_INLINE`] ids inline and
/// spills to a heap `Vec` beyond that; derefs to `[WidgetId]` so read
/// paths (iteration, indexing, `contains`) look exactly like a `Vec`.
#[derive(Debug, Clone)]
pub struct ChildVec {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Inline {
        len: u8,
        buf: [WidgetId; CHILD_INLINE],
    },
    Heap(Vec<WidgetId>),
}

impl ChildVec {
    pub fn new() -> Self {
        Self {
            repr: Repr::Inline {
                len: 0,
                buf: [WidgetId(0); CHILD_INLINE],
            },
        }
    }

    pub fn push(&mut self, id: WidgetId) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if (*len as usize) < CHILD_INLINE {
                    buf[*len as usize] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(CHILD_INLINE * 2);
                    v.extend_from_slice(&buf[..]);
                    v.push(id);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(id),
        }
    }

    pub fn insert(&mut self, index: usize, id: WidgetId) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                assert!(index <= n, "insert index out of bounds");
                if n < CHILD_INLINE {
                    buf.copy_within(index..n, index + 1);
                    buf[index] = id;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(CHILD_INLINE * 2);
                    v.extend_from_slice(&buf[..]);
                    v.insert(index, id);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.insert(index, id),
        }
    }

    /// Remove and return the id at `index`, shifting later children left.
    pub fn remove(&mut self, index: usize) -> WidgetId {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                assert!(index < n, "remove index out of bounds");
                let out = buf[index];
                buf.copy_within(index + 1..n, index);
                *len -= 1;
                out
            }
            Repr::Heap(v) => v.remove(index),
        }
    }

    /// Remove the first occurrence of `id`, if present.
    pub fn remove_item(&mut self, id: WidgetId) -> bool {
        if let Some(pos) = self.iter().position(|&c| c == id) {
            self.remove(pos);
            true
        } else {
            false
        }
    }

    pub fn as_slice(&self) -> &[WidgetId] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v.as_slice(),
        }
    }

    pub fn as_mut_slice(&mut self) -> &mut [WidgetId] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Whether the list has spilled to the heap.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }
}

impl Default for ChildVec {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for ChildVec {
    type Target = [WidgetId];

    fn deref(&self) -> &[WidgetId] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for ChildVec {
    fn deref_mut(&mut self) -> &mut [WidgetId] {
        self.as_mut_slice()
    }
}

impl PartialEq for ChildVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ChildVec {}

impl From<Vec<WidgetId>> for ChildVec {
    fn from(v: Vec<WidgetId>) -> Self {
        if v.len() <= CHILD_INLINE {
            let mut cv = ChildVec::new();
            for id in v {
                cv.push(id);
            }
            cv
        } else {
            Self {
                repr: Repr::Heap(v),
            }
        }
    }
}

impl FromIterator<WidgetId> for ChildVec {
    fn from_iter<I: IntoIterator<Item = WidgetId>>(iter: I) -> Self {
        let mut cv = ChildVec::new();
        for id in iter {
            cv.push(id);
        }
        cv
    }
}

impl<'a> IntoIterator for &'a ChildVec {
    type Item = &'a WidgetId;
    type IntoIter = std::slice::Iter<'a, WidgetId>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl Serialize for ChildVec {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(|id| id.to_value()).collect())
    }
}

impl Deserialize for ChildVec {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(Vec::<WidgetId>::from_value(v)?.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut a = SlotArena::new();
        let id = a.insert("alpha");
        assert_eq!(a.get(id), Some(&"alpha"));
        assert_eq!(a.live_count(), 1);
        assert_eq!(a.remove(id, ""), Some("alpha"));
        assert_eq!(a.get(id), None);
        assert_eq!(a.live_count(), 0);
        assert_eq!(a.slot_count(), 1, "tombstone keeps the slot");
    }

    #[test]
    fn stale_id_never_resolves_after_reuse() {
        let mut a = SlotArena::new();
        let first = a.insert("first");
        a.remove(first, "");
        let second = a.insert("second");
        assert_eq!(second.slot(), first.slot(), "slot is reused");
        assert_ne!(second.gen(), first.gen());
        assert_eq!(a.get(first), None, "stale key must not see the new value");
        assert_eq!(a.get(second), Some(&"second"));
        assert!(!a.contains(first));
    }

    #[test]
    fn double_remove_is_a_no_op() {
        let mut a = SlotArena::new();
        let id = a.insert(1);
        assert_eq!(a.remove(id, 0), Some(1));
        assert_eq!(a.remove(id, 0), None);
        assert_eq!(a.free.len(), 1, "slot freed exactly once");
    }

    #[test]
    fn dense_view_keeps_slot_indexing() {
        let mut a = SlotArena::new();
        let x = a.insert(10);
        let y = a.insert(20);
        a.remove(x, 0);
        assert_eq!(a.data().len(), 2);
        assert_eq!(a.data()[y.slot() as usize], 20);
        assert!(!a.slot_occupied(x.slot()));
        assert!(a.slot_occupied(y.slot()));
        let live: Vec<_> = a.iter_live().collect();
        assert_eq!(live, vec![(y.slot(), &20)]);
    }

    #[test]
    fn child_vec_spills_past_inline_capacity() {
        let mut cv = ChildVec::new();
        for i in 0..CHILD_INLINE as u32 {
            cv.push(WidgetId(i));
        }
        assert!(!cv.spilled());
        cv.push(WidgetId(99));
        assert!(cv.spilled());
        assert_eq!(cv.len(), CHILD_INLINE + 1);
        assert_eq!(cv[CHILD_INLINE], WidgetId(99));
    }

    #[test]
    fn child_vec_insert_remove_and_rotate() {
        let mut cv: ChildVec = (0..5).map(WidgetId).collect();
        cv.insert(1, WidgetId(42));
        assert_eq!(cv.as_slice()[..3], [WidgetId(0), WidgetId(42), WidgetId(1)]);
        assert_eq!(cv.remove(1), WidgetId(42));
        cv.rotate_left(2); // via DerefMut to [WidgetId]
        assert_eq!(cv[0], WidgetId(2));
        assert!(cv.remove_item(WidgetId(3)));
        assert!(!cv.remove_item(WidgetId(3)));
        assert_eq!(cv.len(), 4);
    }

    #[test]
    fn child_vec_serde_matches_vec_json() {
        let cv: ChildVec = (0..10).map(WidgetId).collect();
        let json = serde_json::to_string(&cv).unwrap();
        let as_vec: Vec<WidgetId> = (0..10).map(WidgetId).collect();
        assert_eq!(json, serde_json::to_string(&as_vec).unwrap());
        let back: ChildVec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cv);
    }
}

//! Simplified HTML serialization of a page.
//!
//! Two consumers: (1) the set-of-marks grounding strategy that labels
//! elements using "ground-truth" HTML bounding boxes (Table 3's `HTML` bbox
//! source), and (2) text-only LLM baselines that read markup instead of
//! pixels. Tags come from each widget's `tag` field, which may diverge from
//! its semantic kind — icon buttons serialize as `<svg>`, the exact
//! mismatch the paper blames for grounding failures.

use serde::{Deserialize, Serialize};

use crate::geometry::Rect;
use crate::tree::Page;
use crate::widget::{WidgetId, WidgetKind};
use crate::VIEWPORT;

/// One element extracted from the HTML rendering, with its layout box.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HtmlElement {
    /// The widget this element came from (oracle-only; graders use it).
    pub id: WidgetId,
    /// Rendered tag (`button`, `a`, `input`, `svg`, ...).
    pub tag: String,
    /// Inner text / value attribute as serialized.
    pub text: String,
    /// `name` attribute (empty when absent).
    pub name: String,
    /// Bounding box in viewport coordinates.
    pub rect: Rect,
    /// Whether the underlying widget is interactive.
    pub interactive: bool,
}

/// Escape text for use in an attribute value or element body.
fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Serialize the page to an indented HTML-ish string.
pub fn serialize(page: &Page) -> String {
    let mut out = String::new();
    write_node(page, page.root(), 0, &mut out);
    out
}

fn write_node(page: &Page, id: WidgetId, depth: usize, out: &mut String) {
    let w = page.get(id);
    if !w.visible {
        return;
    }
    let indent = "  ".repeat(depth);
    let mut attrs = String::new();
    if !w.name.is_empty() {
        attrs.push_str(&format!(" name=\"{}\"", escape(&w.name)));
    }
    if w.kind.is_editable() && !w.value.is_empty() {
        attrs.push_str(&format!(" value=\"{}\"", escape(&w.value)));
    }
    if w.kind.is_toggleable() && w.is_checked() {
        attrs.push_str(" checked");
    }
    if !w.enabled {
        attrs.push_str(" disabled");
    }
    if !w.placeholder.is_empty() {
        attrs.push_str(&format!(" placeholder=\"{}\"", escape(&w.placeholder)));
    }
    // Icons carry their accessible label as aria-label (pixels don't show
    // it, but markup does).
    if w.kind == WidgetKind::Icon && !w.label.is_empty() {
        attrs.push_str(&format!(" aria-label=\"{}\"", escape(&w.label)));
    }
    let inner_text = match w.kind {
        WidgetKind::Icon | WidgetKind::Image => String::new(),
        _ if w.kind.is_editable() => String::new(),
        _ => escape(&w.label),
    };
    if w.children.is_empty() && inner_text.is_empty() {
        out.push_str(&format!("{indent}<{}{attrs}/>\n", w.tag));
    } else {
        out.push_str(&format!("{indent}<{}{attrs}>{inner_text}", w.tag));
        if w.children.is_empty() {
            out.push_str(&format!("</{}>\n", w.tag));
        } else {
            out.push('\n');
            for &c in &w.children {
                write_node(page, c, depth + 1, out);
            }
            out.push_str(&format!("{indent}</{}>\n", w.tag));
        }
    }
}

/// Extract visible elements with their viewport-space boxes, skipping pure
/// layout containers. `interactive_only` restricts to clickable/editable
/// elements (the candidate set for set-of-marks).
pub fn element_boxes(page: &Page, scroll_y: i32, interactive_only: bool) -> Vec<HtmlElement> {
    let viewport = Rect::new(0, scroll_y, VIEWPORT.w, VIEWPORT.h);
    page.paint_order()
        .into_iter()
        .filter_map(|id| {
            let w = page.get(id);
            if w.kind.is_container() && w.kind != WidgetKind::Modal {
                return None;
            }
            if interactive_only && !w.kind.is_interactive() {
                return None;
            }
            if w.bounds.w == 0 || w.bounds.h == 0 || !w.bounds.intersects(&viewport) {
                return None;
            }
            Some(HtmlElement {
                id,
                tag: w.tag.to_string(),
                text: match w.kind {
                    // Icons and images have no *visible* text for a mark
                    // caption, whatever their markup attributes say.
                    WidgetKind::Icon | WidgetKind::Image => String::new(),
                    k if k.is_editable() => w.display_text().to_string(),
                    _ => w.label.to_string(),
                },
                name: w.name.to_string(),
                rect: w.bounds.offset(0, -scroll_y),
                interactive: w.kind.is_interactive(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::PageBuilder;

    fn sample() -> Page {
        let mut b = PageBuilder::new("Html", "/html");
        b.heading(1, "Profile");
        b.form("profile", |b| {
            b.text_input("display-name", "Display name", "your name");
            b.checkbox("newsletter", "Subscribe", true);
            b.button("save", "Save changes");
        });
        b.icon_button("avatar", "Open profile menu");
        b.finish()
    }

    #[test]
    fn serialization_contains_tags_names_and_text() {
        let html = serialize(&sample());
        assert!(html.contains("<form name=\"profile\">"));
        assert!(html.contains("name=\"display-name\""));
        assert!(html.contains("placeholder=\"your name\""));
        assert!(html.contains("<button name=\"save\">Save changes</button>"));
        assert!(html.contains("checked"));
    }

    #[test]
    fn icon_serializes_as_svg_with_aria_label() {
        let html = serialize(&sample());
        assert!(
            html.contains("<svg name=\"avatar\" aria-label=\"Open profile menu\"/>"),
            "got: {html}"
        );
    }

    #[test]
    fn invisible_widgets_are_omitted() {
        let mut p = sample();
        let save = p.find_by_name("save").unwrap();
        p.get_mut(save).visible = false;
        let html = serialize(&p);
        assert!(!html.contains("Save changes"));
    }

    #[test]
    fn element_boxes_skip_containers_and_offscreen() {
        let p = sample();
        let all = element_boxes(&p, 0, false);
        assert!(all.iter().all(|e| e.tag != "div" || !e.text.is_empty()));
        assert!(all.iter().any(|e| e.name == "save"));
        // Scrolled far past content: nothing visible.
        let none = element_boxes(&p, 10_000, false);
        assert!(none.is_empty());
    }

    #[test]
    fn interactive_filter_works() {
        let p = sample();
        let inter = element_boxes(&p, 0, true);
        assert!(inter.iter().all(|e| e.interactive));
        assert!(
            inter.iter().any(|e| e.tag == "svg"),
            "icons count as interactive"
        );
        assert!(!inter.iter().any(|e| e.tag == "h1"));
    }

    #[test]
    fn markup_special_characters_are_escaped() {
        let mut b = PageBuilder::new("esc", "/esc");
        b.button("x", "Say \"hi\" <now> & go");
        let p = b.finish();
        let html = serialize(&p);
        assert!(
            html.contains("Say &quot;hi&quot; &lt;now&gt; &amp; go"),
            "{html}"
        );
        assert!(!html.contains("<now>"));
    }

    #[test]
    fn boxes_are_viewport_relative() {
        let p = sample();
        let at0 = element_boxes(&p, 0, true);
        let save0 = at0.iter().find(|e| e.name == "save").unwrap().rect;
        let at30 = element_boxes(&p, 30, true);
        let save30 = at30.iter().find(|e| e.name == "save").unwrap().rect;
        assert_eq!(save30.y, save0.y - 30);
    }
}

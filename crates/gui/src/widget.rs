//! Widgets: the nodes of a simulated page.
//!
//! A [`Widget`] carries both *semantic* identity (its [`WidgetKind`] and
//! programmatic `name`) and *presentation* (its visible `label`, current
//! `value`, and the HTML `tag` it renders as). The distinction matters:
//! screenshots expose only presentation, the HTML serialization exposes tags
//! and names, and only the application itself sees kinds. The paper's
//! "profile button rendered as `<svg>`" grounding failure is representable
//! precisely because `tag` can diverge from `kind`.

use serde::{Deserialize, Serialize};

use crate::arena::ChildVec;
use crate::geometry::Rect;
use crate::intern::Sym;

/// Index of a widget in its [`crate::tree::Page`] arena. Ids are stable only
/// within one build of a page; navigation or rebuild invalidates them, which
/// is why gold traces and agents address widgets semantically instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WidgetId(pub u32);

impl WidgetId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a widget *is* (semantics, invisible to agents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WidgetKind {
    /// The page root.
    Root,
    /// Vertical grouping container.
    Section,
    /// Horizontal grouping container.
    Row,
    /// A form container: descendants' values are gathered on submit.
    Form,
    /// Heading text; the payload level is stored in `Widget::level`.
    Heading,
    /// Static body text.
    Text,
    /// A push button.
    Button,
    /// A hyperlink.
    Link,
    /// Single-line text entry.
    TextInput,
    /// Multi-line text entry.
    TextArea,
    /// Masked text entry.
    PasswordInput,
    /// Two-state toggle; `value` is `"true"`/`"false"`.
    Checkbox,
    /// One-of-many choice chip; checking it unchecks siblings with the same
    /// `name`.
    Radio,
    /// Combo box; permitted options live in `Widget::options`.
    Select,
    /// A row of a data table.
    TableRow,
    /// A cell of a data table.
    TableCell,
    /// An entry in a menu or dropdown.
    MenuItem,
    /// A tab header.
    Tab,
    /// A non-text pictograph (avatar, gear, bell, ...).
    Icon,
    /// A raster image placeholder.
    Image,
    /// A floating dialog; blocks interaction with everything below it.
    Modal,
    /// A transient notification bar.
    Toast,
    /// A small status pill ("open", "merged", ...).
    Badge,
    /// A horizontal rule.
    Divider,
}

impl WidgetKind {
    /// Whether a click on this widget activates application logic.
    pub fn is_activatable(self) -> bool {
        matches!(
            self,
            WidgetKind::Button
                | WidgetKind::Link
                | WidgetKind::MenuItem
                | WidgetKind::Tab
                | WidgetKind::Icon
        )
    }

    /// Whether typing can edit this widget (once focused).
    pub fn is_editable(self) -> bool {
        matches!(
            self,
            WidgetKind::TextInput
                | WidgetKind::TextArea
                | WidgetKind::PasswordInput
                | WidgetKind::Select
        )
    }

    /// Whether clicking toggles the widget's boolean value.
    pub fn is_toggleable(self) -> bool {
        matches!(self, WidgetKind::Checkbox | WidgetKind::Radio)
    }

    /// Whether the widget participates in hit-testing at all.
    pub fn is_interactive(self) -> bool {
        self.is_activatable() || self.is_editable() || self.is_toggleable()
    }

    /// Whether this kind is a container laid out around children.
    pub fn is_container(self) -> bool {
        matches!(
            self,
            WidgetKind::Root
                | WidgetKind::Section
                | WidgetKind::Row
                | WidgetKind::Form
                | WidgetKind::TableRow
                | WidgetKind::Modal
        )
    }

    /// Default HTML tag this kind renders as (overridable per widget).
    pub fn default_tag(self) -> &'static str {
        match self {
            WidgetKind::Root => "body",
            WidgetKind::Section | WidgetKind::Row => "div",
            WidgetKind::Form => "form",
            WidgetKind::Heading => "h2",
            WidgetKind::Text => "p",
            WidgetKind::Button => "button",
            WidgetKind::Link => "a",
            WidgetKind::TextInput | WidgetKind::PasswordInput => "input",
            WidgetKind::TextArea => "textarea",
            WidgetKind::Checkbox | WidgetKind::Radio => "input",
            WidgetKind::Select => "select",
            WidgetKind::TableRow => "tr",
            WidgetKind::TableCell => "td",
            WidgetKind::MenuItem => "li",
            WidgetKind::Tab => "a",
            WidgetKind::Icon => "svg",
            WidgetKind::Image => "img",
            WidgetKind::Modal => "dialog",
            WidgetKind::Toast => "div",
            WidgetKind::Badge => "span",
            WidgetKind::Divider => "hr",
        }
    }
}

/// One node of a page.
#[derive(Debug, Clone)]
pub struct Widget {
    /// Arena index (assigned by the page builder).
    pub id: WidgetId,
    /// Semantic role.
    pub kind: WidgetKind,
    /// HTML tag rendered in the serialization. Usually
    /// `kind.default_tag()`, but icon buttons etc. may override it.
    pub tag: Sym,
    /// Visible caption (button text, link text, field label, heading text).
    pub label: Sym,
    /// Programmatic name (form field name / automation id). *Not* visible in
    /// screenshots.
    pub name: Sym,
    /// Current value (input contents, checkbox state, select choice).
    pub value: Sym,
    /// Ghost text shown in an empty input.
    pub placeholder: Sym,
    /// Permitted options for a [`WidgetKind::Select`].
    pub options: Vec<Sym>,
    /// Heading level (1–3) for [`WidgetKind::Heading`].
    pub level: u8,
    /// Whether the widget accepts interaction; disabled widgets render
    /// grayed out (observable) but ignore events.
    pub enabled: bool,
    /// Whether the widget is rendered at all.
    pub visible: bool,
    /// Child widget ids, in layout order. Inline up to 8, heap beyond.
    pub children: ChildVec,
    /// Parent widget id; `None` only for the root.
    pub parent: Option<WidgetId>,
    /// Fixed width in pixels, if the builder pinned one.
    pub fixed_w: Option<u32>,
    /// Fixed height in pixels, if the builder pinned one.
    pub fixed_h: Option<u32>,
    /// Computed bounds in page coordinates (filled by layout).
    pub bounds: Rect,
    /// The flow inputs this widget was last placed with, captured by the
    /// layout engine so a dirty-subtree relayout can re-place it without
    /// walking from the root. Not serialized; invalid until first layout.
    pub(crate) layin: LayIn,
}

// Manual serde impls (the vendored derive has no `skip`): identical to the
// derive's field-order map, minus the layout-internal `layin` cache.
impl Serialize for Widget {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (String::from("id"), self.id.to_value()),
            (String::from("kind"), self.kind.to_value()),
            (String::from("tag"), self.tag.to_value()),
            (String::from("label"), self.label.to_value()),
            (String::from("name"), self.name.to_value()),
            (String::from("value"), self.value.to_value()),
            (String::from("placeholder"), self.placeholder.to_value()),
            (String::from("options"), self.options.to_value()),
            (String::from("level"), self.level.to_value()),
            (String::from("enabled"), self.enabled.to_value()),
            (String::from("visible"), self.visible.to_value()),
            (String::from("children"), self.children.to_value()),
            (String::from("parent"), self.parent.to_value()),
            (String::from("fixed_w"), self.fixed_w.to_value()),
            (String::from("fixed_h"), self.fixed_h.to_value()),
            (String::from("bounds"), self.bounds.to_value()),
        ])
    }
}

impl Deserialize for Widget {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn field<T: Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            T::from_value(v.field(name))
                .map_err(|e| serde::Error::custom(format!("Widget.{name}: {e}")))
        }
        Ok(Widget {
            id: field(v, "id")?,
            kind: field(v, "kind")?,
            tag: field(v, "tag")?,
            label: field(v, "label")?,
            name: field(v, "name")?,
            value: field(v, "value")?,
            placeholder: field(v, "placeholder")?,
            options: field(v, "options")?,
            level: field(v, "level")?,
            enabled: field(v, "enabled")?,
            visible: field(v, "visible")?,
            children: field(v, "children")?,
            parent: field(v, "parent")?,
            fixed_w: field(v, "fixed_w")?,
            fixed_h: field(v, "fixed_h")?,
            bounds: field(v, "bounds")?,
            layin: LayIn::default(),
        })
    }
}

/// Layout inputs recorded per placed widget: position and available width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct LayIn {
    pub x: i32,
    pub y: i32,
    pub avail_w: u32,
    /// False until the widget has been placed at least once.
    pub valid: bool,
}

impl Widget {
    /// A bare widget of `kind` with defaults everywhere else. The page
    /// builder assigns the real id.
    pub fn new(kind: WidgetKind) -> Self {
        Self {
            id: WidgetId(u32::MAX),
            kind,
            tag: Sym::from(kind.default_tag()),
            label: Sym::EMPTY,
            name: Sym::EMPTY,
            value: Sym::EMPTY,
            placeholder: Sym::EMPTY,
            options: Vec::new(),
            level: 2,
            enabled: true,
            visible: true,
            children: ChildVec::new(),
            parent: None,
            fixed_w: None,
            fixed_h: None,
            bounds: Rect::default(),
            layin: LayIn::default(),
        }
    }

    /// The inert value left in a vacated arena slot: invisible, unnamed,
    /// childless, and unreachable from the root (no parent link points at
    /// it), so no walk, search, or render can observe it.
    pub(crate) fn tombstone(slot: WidgetId) -> Self {
        let mut w = Widget::new(WidgetKind::Root);
        w.id = slot;
        w.visible = false;
        w
    }

    /// Whether this widget is a checked checkbox/radio.
    pub fn is_checked(&self) -> bool {
        self.kind.is_toggleable() && self.value == "true"
    }

    /// The text pixels would show for this widget: the value if it has one,
    /// else the placeholder, else the label.
    pub fn display_text(&self) -> &'static str {
        self.display_sym().as_str()
    }

    /// [`Widget::display_text`] as an interned handle (no resolve needed).
    pub fn display_sym(&self) -> Sym {
        if self.kind.is_editable() {
            if !self.value.is_empty() {
                self.value
            } else {
                self.placeholder
            }
        } else {
            self.label
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates_are_disjoint_where_expected() {
        for kind in [
            WidgetKind::Button,
            WidgetKind::Link,
            WidgetKind::TextInput,
            WidgetKind::Checkbox,
            WidgetKind::Section,
            WidgetKind::Text,
        ] {
            let groups = [
                kind.is_activatable(),
                kind.is_editable(),
                kind.is_toggleable(),
            ];
            assert!(
                groups.iter().filter(|&&g| g).count() <= 1,
                "{kind:?} belongs to more than one interaction group"
            );
        }
    }

    #[test]
    fn interactive_covers_all_groups() {
        assert!(WidgetKind::Button.is_interactive());
        assert!(WidgetKind::TextInput.is_interactive());
        assert!(WidgetKind::Radio.is_interactive());
        assert!(!WidgetKind::Text.is_interactive());
        assert!(!WidgetKind::Divider.is_interactive());
    }

    #[test]
    fn default_tags_sane() {
        assert_eq!(WidgetKind::Button.default_tag(), "button");
        assert_eq!(WidgetKind::Icon.default_tag(), "svg");
        let w = Widget::new(WidgetKind::Button);
        assert_eq!(w.tag, "button");
    }

    #[test]
    fn display_text_prefers_value_then_placeholder() {
        let mut w = Widget::new(WidgetKind::TextInput);
        w.placeholder = "Search...".into();
        assert_eq!(w.display_text(), "Search...");
        w.value = "gitlab".into();
        assert_eq!(w.display_text(), "gitlab");
        let mut b = Widget::new(WidgetKind::Button);
        b.label = "Submit".into();
        b.value = "ignored".into();
        assert_eq!(b.display_text(), "Submit");
    }

    #[test]
    fn checkbox_checked_state() {
        let mut c = Widget::new(WidgetKind::Checkbox);
        assert!(!c.is_checked());
        c.value = "true".into();
        assert!(c.is_checked());
        let mut t = Widget::new(WidgetKind::TextInput);
        t.value = "true".into();
        assert!(!t.is_checked(), "non-toggleable never counts as checked");
    }
}

//! Pixel geometry: points, rectangles, and the small/medium/large element
//! buckets the paper's Table 3 reports grounding accuracy over.

use serde::{Deserialize, Serialize};

/// A pixel coordinate. The origin is the top-left of the page (layout space)
/// or of the viewport (screenshot space); y grows downward.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Point {
    pub x: i32,
    pub y: i32,
}

impl Point {
    pub fn new(x: i32, y: i32) -> Self {
        Self { x, y }
    }

    /// Translate by (dx, dy).
    pub fn offset(self, dx: i32, dy: i32) -> Self {
        Self {
            x: self.x + dx,
            y: self.y + dy,
        }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        let dx = (self.x - other.x) as f64;
        let dy = (self.y - other.y) as f64;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Width/height pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Size {
    pub w: u32,
    pub h: u32,
}

impl Size {
    pub fn new(w: u32, h: u32) -> Self {
        Self { w, h }
    }

    pub fn area(self) -> u64 {
        self.w as u64 * self.h as u64
    }
}

/// An axis-aligned rectangle in pixel space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    pub x: i32,
    pub y: i32,
    pub w: u32,
    pub h: u32,
}

impl Rect {
    pub fn new(x: i32, y: i32, w: u32, h: u32) -> Self {
        Self { x, y, w, h }
    }

    /// The rectangle spanning from `origin` with `size`.
    pub fn at(origin: Point, size: Size) -> Self {
        Self {
            x: origin.x,
            y: origin.y,
            w: size.w,
            h: size.h,
        }
    }

    pub fn right(&self) -> i32 {
        self.x + self.w as i32
    }

    pub fn bottom(&self) -> i32 {
        self.y + self.h as i32
    }

    pub fn size(&self) -> Size {
        Size {
            w: self.w,
            h: self.h,
        }
    }

    pub fn area(&self) -> u64 {
        self.size().area()
    }

    pub fn center(&self) -> Point {
        Point {
            x: self.x + (self.w / 2) as i32,
            y: self.y + (self.h / 2) as i32,
        }
    }

    /// Whether `p` lies inside (inclusive of the top/left edge, exclusive of
    /// bottom/right — half-open like pixel grids).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.bottom()
    }

    /// Intersection rectangle, if the two rectangles overlap.
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x = self.x.max(other.x);
        let y = self.y.max(other.y);
        let r = self.right().min(other.right());
        let b = self.bottom().min(other.bottom());
        if r > x && b > y {
            Some(Rect::new(x, y, (r - x) as u32, (b - y) as u32))
        } else {
            None
        }
    }

    /// Whether the rectangles overlap at all.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.intersect(other).is_some()
    }

    /// Intersection-over-union; 0.0 for disjoint rectangles.
    pub fn iou(&self, other: &Rect) -> f64 {
        match self.intersect(other) {
            None => 0.0,
            Some(i) => {
                let inter = i.area() as f64;
                let union = (self.area() + other.area()) as f64 - inter;
                if union == 0.0 {
                    0.0
                } else {
                    inter / union
                }
            }
        }
    }

    /// Translate by (dx, dy).
    pub fn offset(&self, dx: i32, dy: i32) -> Rect {
        Rect {
            x: self.x + dx,
            y: self.y + dy,
            ..*self
        }
    }

    /// Grow (or shrink with negative `d`) by `d` pixels on every side,
    /// clamping width/height at zero.
    pub fn inflate(&self, d: i32) -> Rect {
        let w = (self.w as i64 + 2 * d as i64).max(0) as u32;
        let h = (self.h as i64 + 2 * d as i64).max(0) as u32;
        Rect {
            x: self.x - d,
            y: self.y - d,
            w,
            h,
        }
    }

    /// The paper's element-size bucket for this rectangle.
    pub fn size_bucket(&self) -> SizeBucket {
        SizeBucket::of_area(self.area())
    }
}

/// Element-size buckets used in Table 3 ("S | M | L").
///
/// The paper does not publish its thresholds; we follow the WebUI dataset's
/// convention of bucketing by on-screen area, with cutoffs chosen so icons
/// and small links land in `Small`, ordinary buttons/inputs in `Medium`, and
/// hero buttons, cards, and banners in `Large`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SizeBucket {
    /// area < 1,600 px² (e.g. a 24×24 icon, a short link).
    Small,
    /// 1,600 px² ≤ area < 12,000 px² (typical buttons and inputs).
    Medium,
    /// area ≥ 12,000 px².
    Large,
}

impl SizeBucket {
    /// Bucket an area in square pixels.
    pub fn of_area(area: u64) -> Self {
        if area < 1_600 {
            SizeBucket::Small
        } else if area < 12_000 {
            SizeBucket::Medium
        } else {
            SizeBucket::Large
        }
    }

    /// Display label matching the paper's column headers.
    pub fn label(&self) -> &'static str {
        match self {
            SizeBucket::Small => "S",
            SizeBucket::Medium => "M",
            SizeBucket::Large => "L",
        }
    }

    /// All buckets in display order.
    pub fn all() -> [SizeBucket; 3] {
        [SizeBucket::Small, SizeBucket::Medium, SizeBucket::Large]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_is_half_open() {
        let r = Rect::new(10, 10, 5, 5);
        assert!(r.contains(Point::new(10, 10)));
        assert!(r.contains(Point::new(14, 14)));
        assert!(!r.contains(Point::new(15, 14)));
        assert!(!r.contains(Point::new(14, 15)));
        assert!(!r.contains(Point::new(9, 10)));
    }

    #[test]
    fn center_inside_nonempty_rect() {
        let r = Rect::new(3, 4, 7, 9);
        assert!(r.contains(r.center()));
    }

    #[test]
    fn intersect_and_iou() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Rect::new(5, 5, 5, 5));
        // IoU = 25 / (100 + 100 - 25)
        assert!((a.iou(&b) - 25.0 / 175.0).abs() < 1e-12);
        let c = Rect::new(100, 100, 5, 5);
        assert_eq!(a.intersect(&c), None);
        assert_eq!(a.iou(&c), 0.0);
    }

    #[test]
    fn iou_of_identical_rects_is_one() {
        let a = Rect::new(2, 3, 40, 20);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inflate_clamps_at_zero() {
        let r = Rect::new(10, 10, 4, 4);
        let shrunk = r.inflate(-3);
        assert_eq!(shrunk.w, 0);
        assert_eq!(shrunk.h, 0);
        let grown = r.inflate(2);
        assert_eq!(grown, Rect::new(8, 8, 8, 8));
    }

    #[test]
    fn size_buckets_match_thresholds() {
        assert_eq!(Rect::new(0, 0, 24, 24).size_bucket(), SizeBucket::Small);
        assert_eq!(Rect::new(0, 0, 120, 32).size_bucket(), SizeBucket::Medium);
        assert_eq!(Rect::new(0, 0, 400, 60).size_bucket(), SizeBucket::Large);
        assert_eq!(SizeBucket::of_area(1_600), SizeBucket::Medium);
        assert_eq!(SizeBucket::of_area(12_000), SizeBucket::Large);
    }

    #[test]
    fn distance_is_euclidean() {
        assert!((Point::new(0, 0).distance(Point::new(3, 4)) - 5.0).abs() < 1e-12);
    }
}

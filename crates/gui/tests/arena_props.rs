//! Property tests for the arena-backed GUI core.
//!
//! Three contracts, each load-bearing for the incremental-relayout design:
//!
//! 1. **Interner determinism** — equal strings always intern to the same
//!    [`Sym`], distinct strings never alias, and serde round-trips the
//!    *string* (ids must never leak into artifacts).
//! 2. **Generation safety** — a [`NodeId`] that survived a removal can
//!    never resolve again, no matter how its slot is reused.
//! 3. **Partial/full equivalence** — any sequence of widget mutations
//!    followed by [`Page::relayout_incremental`] produces byte-identical
//!    pages and frames to the same mutations followed by a full
//!    [`Page::relayout`]. This is the property that makes dirty-subtree
//!    relayout an optimization rather than a behavior change.

use eclair_gui::{intern, NodeId, Page, PageBuilder, SlotArena, Sym, WidgetId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn interner_round_trips_and_never_aliases(
        strings in proptest::collection::vec("[a-z0-9 _-]{0,24}", 1..30),
    ) {
        let syms: Vec<Sym> = strings.iter().map(|s| intern(s)).collect();
        for (s, sym) in strings.iter().zip(&syms) {
            prop_assert_eq!(sym.as_str(), s.as_str());
            // Re-interning is idempotent: same handle, forever.
            prop_assert_eq!(intern(s), *sym);
        }
        for i in 0..strings.len() {
            for j in 0..strings.len() {
                prop_assert_eq!(
                    strings[i] == strings[j],
                    syms[i] == syms[j],
                    "content equality and handle equality must coincide"
                );
            }
        }
    }

    #[test]
    fn interner_serde_writes_the_string_not_the_id(s in "[a-zA-Z0-9 ./-]{0,24}") {
        let sym = intern(&s);
        let json = serde_json::to_string(&sym).unwrap();
        prop_assert_eq!(&json, &serde_json::to_string(&s).unwrap());
        let back: Sym = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, sym);
    }

    #[test]
    fn arena_generations_protect_stale_ids(
        ops in proptest::collection::vec((0u8..2, 0usize..16), 1..60),
    ) {
        let mut arena: SlotArena<u64> = SlotArena::new();
        let mut live: Vec<(NodeId, u64)> = Vec::new();
        let mut dead: Vec<NodeId> = Vec::new();
        let mut next = 0u64;
        for (op, pick) in ops {
            if op == 0 || live.is_empty() {
                let id = arena.insert(next);
                live.push((id, next));
                next += 1;
            } else {
                let (id, _) = live.remove(pick % live.len());
                prop_assert!(arena.remove(id, u64::MAX).is_some());
                dead.push(id);
            }
            for (id, v) in &live {
                prop_assert!(arena.contains(*id));
                prop_assert_eq!(arena.get(*id), Some(v));
            }
            for id in &dead {
                // A dead id stays dead even after its slot is reused: the
                // generation check, not the slot index, decides liveness.
                prop_assert!(!arena.contains(*id));
                prop_assert!(arena.get(*id).is_none());
            }
            prop_assert_eq!(arena.live_count(), live.len());
        }
    }
}

/// A page with enough structure for mutations to matter: nested sections,
/// a form, a row (horizontal flow), and leaf text.
fn build_page() -> Page {
    let mut b = PageBuilder::new("Props", "/props");
    b.heading(1, "Arena proptest");
    b.section(|b| {
        b.text("intro text");
        b.form("form-a", |b| {
            b.text_input("name", "Name", "your name");
            b.text_input("email", "Email", "you@example.com");
            b.checkbox("subscribe", "Subscribe", false);
            b.button("save", "Save");
        });
    });
    b.section(|b| {
        b.row(|b| {
            b.button("one", "One");
            b.button("two", "Two");
            b.button("three", "Three");
        });
        b.text("footer text");
    });
    b.finish()
}

/// Non-root ids whose slot is still occupied (mutation candidates).
fn live_ids(p: &Page) -> Vec<WidgetId> {
    (0..p.len() as u32)
        .map(WidgetId)
        .filter(|&id| id != p.root() && p.node_id(id).is_some())
        .collect()
}

proptest! {
    #[test]
    fn incremental_relayout_matches_full_relayout(
        ops in proptest::collection::vec((0u8..4, 0usize..64, 0usize..8), 0..10),
    ) {
        let mut inc = build_page();
        let mut full = build_page();
        for (kind, pick, payload) in ops {
            let candidates = live_ids(&inc);
            if candidates.is_empty() {
                break;
            }
            let id = candidates[pick % candidates.len()];
            match kind {
                0 => {
                    let v: Sym = format!("v{payload}").into();
                    inc.get_mut(id).value = v;
                    full.get_mut(id).value = v;
                }
                1 => {
                    let l: Sym = format!("relabeled {payload}").into();
                    inc.get_mut(id).label = l;
                    full.get_mut(id).label = l;
                }
                2 => {
                    let vis = !inc.get(id).visible;
                    inc.get_mut(id).visible = vis;
                    full.get_mut(id).visible = vis;
                }
                _ => {
                    prop_assert_eq!(inc.remove_subtree(id), full.remove_subtree(id));
                }
            }
            inc.relayout_incremental();
            full.relayout();
            // Byte equivalence after *every* step, not just at the end:
            // an intermediate divergence that later self-corrects would
            // still have served a wrong frame.
            prop_assert_eq!(inc.content_height, full.content_height);
            let fa = inc.screenshot_at(0);
            let fb = full.screenshot_at(0);
            prop_assert_eq!(fa.frame_hash(), fb.frame_hash());
            prop_assert_eq!(&fa, &fb);
            prop_assert_eq!(
                serde_json::to_string(&inc).unwrap(),
                serde_json::to_string(&full).unwrap()
            );
        }
    }
}

//! Minimal ASCII/markdown table renderer for the bench harnesses, so every
//! `table{1..4}` binary can print output shaped like the paper's tables.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A simple rectangular table: a header row plus data rows of equal arity.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Build a table with the given column headers; all columns default to
    /// left alignment (use [`Table::align`] to adjust).
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; header.len()];
        Self {
            header,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Set the alignment of column `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn align(mut self, idx: usize, align: Align) -> Self {
        self.aligns[idx] = align;
        self
    }

    /// Right-align every column except the first (the usual shape for a
    /// metrics table with a label column).
    pub fn numeric(mut self) -> Self {
        for a in self.aligns.iter_mut().skip(1) {
            *a = Align::Right;
        }
        self
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics if the row arity differs from the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let fill = width.saturating_sub(len);
        match align {
            Align::Left => format!("{cell}{}", " ".repeat(fill)),
            Align::Right => format!("{}{cell}", " ".repeat(fill)),
        }
    }

    /// Render as a boxed ASCII table.
    pub fn to_ascii(&self) -> String {
        let widths = self.widths();
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(line, " {} |", Self::pad(cell, widths[i], self.aligns[i]));
            }
            line
        };
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }

    /// Render as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let widths = self.widths();
        let mut out = String::from("|");
        for (i, h) in self.header.iter().enumerate() {
            let _ = write!(out, " {} |", Self::pad(h, widths[i], self.aligns[i]));
        }
        out.push_str("\n|");
        for (i, w) in widths.iter().enumerate() {
            match self.aligns[i] {
                Align::Left => {
                    let _ = write!(out, "{}|", "-".repeat(w + 2));
                }
                Align::Right => {
                    let _ = write!(out, "{}:|", "-".repeat(w + 1));
                }
            }
        }
        for row in &self.rows {
            out.push_str("\n|");
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, " {} |", Self::pad(cell, widths[i], self.aligns[i]));
            }
        }
        out
    }
}

/// Format a fraction as the paper does: two decimal places (`0.93`).
pub fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a mean step count as the paper does in Table 1 (`9.63`).
pub fn fmt_steps(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["Method", "Precision", "Recall"]).numeric();
        t.row(vec!["WD", "0.75", "0.81"]);
        t.row(vec!["WD+KF+ACT", "0.94", "0.95"]);
        t
    }

    #[test]
    fn ascii_has_all_cells_and_borders() {
        let s = sample().to_ascii();
        assert!(s.contains("WD+KF+ACT"));
        assert!(s.contains("0.94"));
        assert!(s.starts_with('+'));
        assert_eq!(s.lines().count(), 6); // 3 separators + header + 2 rows
    }

    #[test]
    fn markdown_aligns_numeric_columns() {
        let s = sample().to_markdown();
        assert!(
            s.contains("---:"),
            "numeric columns should right-align: {s}"
        );
        assert!(s.starts_with("| Method"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn widths_account_for_long_cells() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["a-very-long-cell"]);
        let ascii = t.to_ascii();
        for line in ascii.lines() {
            assert_eq!(
                line.chars().count(),
                ascii.lines().next().unwrap().chars().count(),
                "all lines same width"
            );
        }
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt2(0.934_9), "0.93");
        assert_eq!(fmt_steps(9.625), "9.62"); // f64 banker's-ish rounding of display
    }
}

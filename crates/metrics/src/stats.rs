//! Streaming summary statistics (Welford's algorithm) used when averaging
//! per-workflow measurements across the 30-task evaluation set.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator with min/max tracking.
///
/// Numerically stable for long streams (Welford update) though the streams in
/// this repository are short (tens to hundreds of observations).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Summarize a slice in one call.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator); 0.0 with fewer than two points.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Standard error of the mean; 0.0 with fewer than two points.
    pub fn std_err(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }
}

/// Fraction of `true` values in a slice (the paper's per-task "accuracy").
pub fn fraction(values: &[bool]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v).count() as f64 / values.len() as f64
}

/// Exclusive percentile via linear interpolation on a *sorted copy* of the
/// input. `q` in `[0, 1]`. Returns `None` on an empty slice.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4; sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary_is_safe() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
    }

    #[test]
    fn fraction_counts_trues() {
        assert_eq!(fraction(&[]), 0.0);
        assert_eq!(fraction(&[true, false, true, true]), 0.75);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 1.0), Some(4.0));
        assert_eq!(percentile(&v, 0.5), Some(2.5));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn welford_matches_two_pass() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let s = Summary::of(&values);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
    }
}

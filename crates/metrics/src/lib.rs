//! # eclair-metrics
//!
//! Shared measurement infrastructure for the ECLAIR reproduction
//! (Wornow et al., *Automating the Enterprise with Foundation Models*,
//! VLDB 2024).
//!
//! Every experiment in the paper reports one of a small set of quantities:
//! binary-classification precision/recall/F1 (Table 4), per-example accuracy
//! averaged over a task set (Tables 2 and 3), or per-SOP step counts averaged
//! over workflows (Table 1). This crate provides those quantities once, with
//! deterministic bootstrap confidence intervals and ASCII/markdown table
//! rendering used by the `eclair-bench` harnesses.
//!
//! ## Quick example
//!
//! ```
//! use eclair_metrics::classification::BinaryConfusion;
//!
//! let mut cm = BinaryConfusion::default();
//! for (predicted, actual) in [(true, true), (true, false), (false, true), (true, true)] {
//!     cm.observe(predicted, actual);
//! }
//! assert!((cm.precision() - 2.0 / 3.0).abs() < 1e-12);
//! assert!((cm.recall() - 2.0 / 3.0).abs() < 1e-12);
//! ```

pub mod bootstrap;
pub mod classification;
pub mod report;
pub mod stats;
pub mod table;

pub use classification::BinaryConfusion;
pub use report::{PaperComparison, PaperRow};
pub use stats::Summary;
pub use table::Table;

//! Deterministic nonparametric bootstrap confidence intervals.
//!
//! The paper reports point estimates over 30 workflows with no error bars;
//! the reproduction attaches percentile-bootstrap CIs so the bench output can
//! show whether a measured value is statistically compatible with the paper's
//! operating point.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A two-sided confidence interval around a point estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The statistic computed on the full sample.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile bootstrap of an arbitrary statistic.
///
/// Resamples `values` with replacement `resamples` times using a seeded RNG
/// so the same seed always yields the same interval. Degenerate inputs
/// (empty, or a single point) collapse to a zero-width interval at the point
/// estimate.
pub fn bootstrap_ci<F>(
    values: &[f64],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval
where
    F: Fn(&[f64]) -> f64,
{
    let point = statistic(values);
    if values.len() < 2 || resamples == 0 {
        return ConfidenceInterval {
            point,
            lo: point,
            hi: point,
            level,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0; values.len()];
    for _ in 0..resamples {
        for slot in scratch.iter_mut() {
            *slot = values[rng.gen_range(0..values.len())];
        }
        stats.push(statistic(&scratch));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("NaN bootstrap statistic"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((stats.len() as f64 * alpha).floor() as usize).min(stats.len() - 1);
    let hi_idx = ((stats.len() as f64 * (1.0 - alpha)).ceil() as usize)
        .saturating_sub(1)
        .min(stats.len() - 1);
    ConfidenceInterval {
        point,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        level,
    }
}

/// Bootstrap CI for a mean of real values.
pub fn mean_ci(values: &[f64], resamples: usize, level: f64, seed: u64) -> ConfidenceInterval {
    bootstrap_ci(
        values,
        |v| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        },
        resamples,
        level,
        seed,
    )
}

/// Bootstrap CI for a proportion of boolean outcomes (success rates).
pub fn proportion_ci(
    outcomes: &[bool],
    resamples: usize,
    level: f64,
    seed: u64,
) -> ConfidenceInterval {
    let values: Vec<f64> = outcomes
        .iter()
        .map(|&b| if b { 1.0 } else { 0.0 })
        .collect();
    mean_ci(&values, resamples, level, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let values: Vec<f64> = (0..40).map(|i| (i % 7) as f64).collect();
        let a = mean_ci(&values, 500, 0.95, 42);
        let b = mean_ci(&values, 500, 0.95, 42);
        assert_eq!(a, b);
        let c = mean_ci(&values, 500, 0.95, 43);
        // Different seed virtually always gives a (slightly) different interval.
        assert!(a.lo != c.lo || a.hi != c.hi);
    }

    #[test]
    fn interval_brackets_point_estimate() {
        let values: Vec<f64> = (0..60).map(|i| ((i * 31) % 17) as f64).collect();
        let ci = mean_ci(&values, 1000, 0.95, 7);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.width() > 0.0);
        assert!(ci.contains(ci.point));
    }

    #[test]
    fn degenerate_inputs_collapse() {
        let ci = mean_ci(&[], 100, 0.95, 1);
        assert_eq!(ci.point, 0.0);
        assert_eq!(ci.width(), 0.0);
        let ci = mean_ci(&[5.0], 100, 0.95, 1);
        assert_eq!(ci.point, 5.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn constant_data_has_zero_width() {
        let values = vec![0.4; 30];
        let ci = mean_ci(&values, 200, 0.95, 9);
        assert!((ci.point - 0.4).abs() < 1e-12);
        assert!(ci.width() < 1e-12);
    }

    #[test]
    fn proportion_ci_matches_manual_encoding() {
        let outcomes: Vec<bool> = (0..50).map(|i| i % 5 != 0).collect();
        let ci = proportion_ci(&outcomes, 300, 0.9, 11);
        assert!((ci.point - 0.8).abs() < 1e-12);
        assert!(ci.lo <= 0.8 && 0.8 <= ci.hi);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let values: Vec<f64> = (0..80).map(|i| ((i * 13) % 23) as f64).collect();
        let narrow = mean_ci(&values, 2000, 0.5, 3);
        let wide = mean_ci(&values, 2000, 0.99, 3);
        assert!(wide.width() >= narrow.width());
    }
}

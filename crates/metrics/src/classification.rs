//! Binary-classification counts and the derived precision/recall/F1 metrics
//! reported throughout the paper's Table 4 (Validate experiments).

use serde::{Deserialize, Serialize};

/// Accumulated outcome counts of a binary classifier.
///
/// Conventions follow the paper: a "positive" example is one where the true
/// label is positive (e.g. the action *was* executed, the workflow *was*
/// completed). `observe(predicted, actual)` files the outcome into the right
/// quadrant.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// Predicted positive, actually positive.
    pub tp: u64,
    /// Predicted positive, actually negative.
    pub fp: u64,
    /// Predicted negative, actually positive.
    pub fn_: u64,
    /// Predicted negative, actually negative.
    pub tn: u64,
}

impl BinaryConfusion {
    /// A confusion matrix built directly from quadrant counts.
    pub fn from_counts(tp: u64, fp: u64, fn_: u64, tn: u64) -> Self {
        Self { tp, fp, fn_, tn }
    }

    /// Record one prediction against its true label.
    pub fn observe(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Merge another confusion matrix into this one (e.g. across shards).
    pub fn merge(&mut self, other: &BinaryConfusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Number of actually-positive observations.
    pub fn positives(&self) -> u64 {
        self.tp + self.fn_
    }

    /// Number of actually-negative observations.
    pub fn negatives(&self) -> u64 {
        self.fp + self.tn
    }

    /// TP / (TP + FP). Returns 0.0 when the classifier never predicted
    /// positive — the harnesses treat "no predictions" as zero credit rather
    /// than undefined, matching how the paper's annotators scored empty
    /// outputs.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// TP / (TP + FN). Returns 0.0 when there were no positive examples.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall; 0.0 when both are zero.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// (TP + TN) / total; 0.0 on an empty matrix.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// TN / (TN + FP); the recall of the negative class.
    pub fn specificity(&self) -> f64 {
        ratio(self.tn, self.tn + self.fp)
    }

    /// Balanced accuracy: mean of recall and specificity. Useful because the
    /// actuation experiment samples three negatives per positive.
    pub fn balanced_accuracy(&self) -> f64 {
        (self.recall() + self.specificity()) / 2.0
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Convenience: score a slice of `(predicted, actual)` pairs.
pub fn score_pairs(pairs: &[(bool, bool)]) -> BinaryConfusion {
    let mut cm = BinaryConfusion::default();
    for &(p, a) in pairs {
        cm.observe(p, a);
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix_is_all_zero() {
        let cm = BinaryConfusion::default();
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn perfect_classifier() {
        let cm = BinaryConfusion::from_counts(10, 0, 0, 30);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.balanced_accuracy(), 1.0);
    }

    #[test]
    fn always_positive_classifier_has_unit_recall() {
        // 3 negatives per positive, as in the actuation experiment set-up.
        let cm = BinaryConfusion::from_counts(10, 30, 0, 0);
        assert_eq!(cm.recall(), 1.0);
        assert!((cm.precision() - 0.25).abs() < 1e-12);
        assert!((cm.accuracy() - 0.25).abs() < 1e-12);
        assert!((cm.balanced_accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn observe_routes_to_quadrants() {
        let cm = score_pairs(&[(true, true), (true, false), (false, true), (false, false)]);
        assert_eq!(cm, BinaryConfusion::from_counts(1, 1, 1, 1));
        assert_eq!(cm.accuracy(), 0.5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BinaryConfusion::from_counts(1, 2, 3, 4);
        let b = BinaryConfusion::from_counts(10, 20, 30, 40);
        a.merge(&b);
        assert_eq!(a, BinaryConfusion::from_counts(11, 22, 33, 44));
    }

    #[test]
    fn f1_matches_known_value() {
        // Paper Table 4, "Actuation": P=0.95, R=0.85 -> F1=0.897...
        let p: f64 = 0.95;
        let r: f64 = 0.85;
        let f1 = 2.0 * p * r / (p + r);
        assert!((f1 - 0.8972).abs() < 1e-3);
    }
}

//! Paper-vs-measured comparison reports.
//!
//! Each bench harness produces a [`PaperComparison`]: a list of named metrics
//! with the value the paper reports, the value this reproduction measured,
//! and a tolerance band. The band encodes "same shape", not "same number" —
//! our substrate is a simulator, not the authors' GPT-4 testbed, so the
//! question each row answers is *does the reproduced system land in the same
//! operating regime?*

use serde::{Deserialize, Serialize};

use crate::table::{fmt2, Table};

/// One metric compared against the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperRow {
    /// Metric name, e.g. `"Table 2 / completion with SOP"`.
    pub name: String,
    /// The value printed in the paper.
    pub paper: f64,
    /// The value this reproduction measured.
    pub measured: f64,
    /// Absolute tolerance for the "within band" verdict.
    pub tolerance: f64,
}

impl PaperRow {
    /// Absolute deviation from the paper's value.
    pub fn abs_error(&self) -> f64 {
        (self.measured - self.paper).abs()
    }

    /// Whether the measurement lands within the tolerance band.
    pub fn within_band(&self) -> bool {
        self.abs_error() <= self.tolerance + 1e-12
    }
}

/// A named collection of [`PaperRow`]s with rendering helpers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PaperComparison {
    /// Report title, e.g. `"Table 4 (Validate)"`.
    pub title: String,
    /// The compared metrics.
    pub rows: Vec<PaperRow>,
}

impl PaperComparison {
    /// Start an empty comparison with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Append a metric row.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        paper: f64,
        measured: f64,
        tolerance: f64,
    ) -> &mut Self {
        self.rows.push(PaperRow {
            name: name.into(),
            paper,
            measured,
            tolerance,
        });
        self
    }

    /// Number of rows within their tolerance band.
    pub fn passed(&self) -> usize {
        self.rows.iter().filter(|r| r.within_band()).count()
    }

    /// Whether every row lands within its band.
    pub fn all_within_band(&self) -> bool {
        self.passed() == self.rows.len()
    }

    /// Rows that missed their band (for diagnostics).
    pub fn failures(&self) -> Vec<&PaperRow> {
        self.rows.iter().filter(|r| !r.within_band()).collect()
    }

    /// Render the comparison as an ASCII table plus a verdict line.
    pub fn render(&self) -> String {
        let mut t =
            Table::new(vec!["metric", "paper", "measured", "|err|", "band", "ok"]).numeric();
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                fmt2(r.paper),
                fmt2(r.measured),
                fmt2(r.abs_error()),
                format!("±{}", fmt2(r.tolerance)),
                if r.within_band() { "yes" } else { "NO" }.to_string(),
            ]);
        }
        format!(
            "== {} ==\n{}\n{}/{} metrics within band\n",
            self.title,
            t.to_ascii(),
            self.passed(),
            self.rows.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_band_logic() {
        let row = PaperRow {
            name: "x".into(),
            paper: 0.40,
            measured: 0.45,
            tolerance: 0.05,
        };
        assert!(row.within_band());
        let row = PaperRow {
            name: "x".into(),
            paper: 0.40,
            measured: 0.47,
            tolerance: 0.05,
        };
        assert!(!row.within_band());
    }

    #[test]
    fn comparison_counts_and_renders() {
        let mut c = PaperComparison::new("Table 2 (Execute)");
        c.push("completion w/o SOP", 0.17, 0.19, 0.08);
        c.push("completion w/ SOP", 0.40, 0.60, 0.10);
        assert_eq!(c.passed(), 1);
        assert!(!c.all_within_band());
        assert_eq!(c.failures().len(), 1);
        let rendered = c.render();
        assert!(rendered.contains("Table 2 (Execute)"));
        assert!(rendered.contains("NO"));
        assert!(rendered.contains("1/2 metrics within band"));
    }

    #[test]
    fn exact_boundary_is_within() {
        let row = PaperRow {
            name: "edge".into(),
            paper: 0.5,
            measured: 0.6,
            tolerance: 0.1,
        };
        assert!(row.within_band());
    }

    #[test]
    fn serde_round_trip() {
        let mut c = PaperComparison::new("t");
        c.push("m", 1.0, 1.1, 0.2);
        let json = serde_json::to_string(&c).unwrap();
        let back: PaperComparison = serde_json::from_str(&json).unwrap();
        assert_eq!(back.rows.len(), 1);
        assert_eq!(back.title, "t");
    }
}

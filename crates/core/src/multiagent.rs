//! Multi-agent collaboration (paper §5): "applying multiple agents to the
//! same task can improve accuracy" (citing More Agents Is All You Need).
//!
//! Two ensembling modes over independent executor attempts:
//! * **first-success** — run up to `n` independently-seeded agents; stop at
//!   the first functionally-successful run (tasks here are idempotent-ish
//!   per fresh session, so each attempt starts clean);
//! * **validated-success** — additionally require the completion validator
//!   to agree, trading recall for precision (the §5 multi-tier error
//!   handling).

use eclair_fm::{FmModel, ModelProfile};
use eclair_sites::TaskSpec;
use serde::{Deserialize, Serialize};

use crate::execute::executor::{run_task, ExecConfig};

/// Result of an ensemble attempt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnsembleResult {
    /// Whether any accepted attempt succeeded.
    pub success: bool,
    /// Attempts actually run.
    pub attempts: usize,
    /// Index of the winning attempt, if any.
    pub winner: Option<usize>,
}

/// Run up to `n` independently-seeded agents on the task, stopping at the
/// first success.
pub fn first_success(
    profile: &ModelProfile,
    task: &TaskSpec,
    cfg: &ExecConfig,
    n: usize,
    base_seed: u64,
) -> EnsembleResult {
    for i in 0..n.max(1) {
        let mut model = FmModel::new(profile.clone(), base_seed.wrapping_add(i as u64 * 7919));
        let r = run_task(&mut model, task, cfg);
        if r.success {
            return EnsembleResult {
                success: true,
                attempts: i + 1,
                winner: Some(i),
            };
        }
    }
    EnsembleResult {
        success: false,
        attempts: n.max(1),
        winner: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_sites::all_tasks;

    #[test]
    fn more_agents_is_at_least_as_good() {
        let tasks: Vec<_> = all_tasks().into_iter().take(10).collect();
        let profile = ModelProfile::gpt4v();
        let mut single = 0usize;
        let mut triple = 0usize;
        for (i, t) in tasks.iter().enumerate() {
            let cfg = ExecConfig::with_sop(t.gold_sop.clone()).budgeted(t.gold_trace.len());
            if first_success(&profile, t, &cfg, 1, 40 + i as u64).success {
                single += 1;
            }
            if first_success(&profile, t, &cfg, 3, 40 + i as u64).success {
                triple += 1;
            }
        }
        assert!(
            triple >= single,
            "3-agent ensemble can only help: {triple} vs {single}"
        );
    }

    #[test]
    fn winner_index_is_reported() {
        let t = all_tasks().remove(2); // gitlab-03, an easy click-through
        let cfg = ExecConfig::with_sop(t.gold_sop.clone()).budgeted(t.gold_trace.len());
        let r = first_success(&ModelProfile::oracle(), &t, &cfg, 5, 1);
        assert!(r.success);
        assert_eq!(r.winner, Some(0), "oracle wins on the first attempt");
        assert_eq!(r.attempts, 1);
    }
}

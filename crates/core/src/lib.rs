//! # eclair-core
//!
//! **ECLAIR** — *Enterprise sCaLe AI for woRkflows* — the system proposed by
//! Wornow et al. (VLDB 2024), built on the simulated substrates of this
//! workspace. The three stages mirror the paper's Figure 1:
//!
//! * [`demonstrate`] — learn a workflow by watching a recorded human
//!   demonstration and/or reading its description, emitting an SOP
//!   (paper §4.1, Table 1);
//! * [`execute`] — run a workflow on a live GUI: suggest the next action,
//!   ground it to pixels, actuate, and recover from pop-ups
//!   (paper §4.2, Tables 2–3);
//! * [`validate`] — self-monitor: did the last action execute, is the next
//!   action viable, did the workflow complete, did the trajectory follow
//!   the SOP (paper §4.3, Table 4).
//!
//! Cross-cutting pieces implement the paper's §5 road map: [`hitl`]
//! (human-in-the-loop gates and sensitive-action interrupts), [`skills`]
//! (a self-improvement skill library), [`multiagent`] (ensembling), and
//! [`agent`] (the orchestrator gluing the stages together).
//!
//! [`experiments`] contains the harnesses that regenerate every table and
//! figure; [`calibration`] is the single home of every tuned constant,
//! each documented with the paper operating point it targets.

pub mod agent;
pub mod calibration;
pub mod demonstrate;
pub mod execute;
pub mod experiments;
pub mod hitl;
pub mod multiagent;
pub mod skills;
pub mod validate;

pub use agent::{Eclair, EclairConfig};

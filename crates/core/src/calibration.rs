//! Every tuned constant in the reproduction, in one place.
//!
//! The simulated FM's *mechanisms* live in `eclair-fm`; the constants here
//! set their operating points so that the derived experiment results land
//! near the paper's published numbers. Each constant documents the paper
//! target it serves. EXPERIMENTS.md records how close the derived numbers
//! actually land — constants are inputs, tables are outputs, and nothing
//! writes a paper number directly into a result.

/// Default experiment seed (all harnesses are deterministic under it).
pub const SEED: u64 = 7;

// ---------------------------------------------------------------- Table 1

/// Probability that the WD-only prior emits each optional boilerplate step
/// (log-in, project selection, review screens...). Targets the paper's
/// WD row: ~3.6 incorrect steps and ~13.7 total steps per SOP.
pub const WD_PRIOR_BOILERPLATE_P: f64 = 0.30;

/// Number of boilerplate candidates the WD prior may draw from.
pub const WD_PRIOR_BOILERPLATE_POOL: usize = 6;

/// Probability the WD prior misnames a submit control with a generic verb
/// ("Submit" for "Create issue") — a prior that has never seen the real
/// page guesses button captions. Drives the WD row's correctness gap.
pub const WD_PRIOR_GENERIC_SUBMIT_P: f64 = 0.35;

/// Probability the WD prior appends a generic verification step after a
/// substantive step (verbosity → inflated totals).
pub const WD_PRIOR_VERIFY_P: f64 = 0.15;

/// Probability a key-frame transition is misattributed to the wrong
/// element when the diff region is ambiguous. Targets WD+KF's ~1.05
/// incorrect steps.
pub const KF_MISATTRIBUTION_P: f64 = 0.10;

/// Probability an action-log entry loses its accessibility target text
/// (real loggers drop events). Targets WD+KF+ACT's residual ~0.6 missing /
/// ~0.6 incorrect steps.
pub const ACT_LOG_DROPOUT_P: f64 = 0.02;

// ---------------------------------------------------------------- Table 2

/// Hard step budget for autonomous execution, as a multiple of the gold
/// trace length (the paper gives its agent bounded steps).
pub const EXEC_STEP_BUDGET_FACTOR: f64 = 2.5;

/// Probability the executor forgets the focus-click when decomposing a
/// "type X into Y" step (the paper's §1 decomposition failure), scaled by
/// (1 − decomposition_skill).
pub const DECOMPOSE_SKIP_FOCUS_P: f64 = 0.55;

/// Baseline probability the SOP follower loses its place (per-model
/// override: see `ModelProfile::tracking_noise`; this constant remains as
/// documentation of the GPT-4 operating point).
pub const SOP_TRACKING_SLIP_P: f64 = 0.075;

/// Without an SOP, probability per step that the planner inserts a
/// spurious exploratory step. Targets no-SOP suggestion accuracy ~0.83.
pub const NOSOP_SPURIOUS_STEP_P: f64 = 0.15;

// ---------------------------------------------------------------- Table 4

/// Evidence mapping for the actuation validator: diffs below this fraction
/// read as "nothing happened".
pub const ACTUATION_IDENTICAL_EPS: f64 = 1e-9;

/// Diff fraction above which an action clearly executed.
pub const ACTUATION_CLEAR_DIFF: f64 = 0.02;

/// How strongly every precondition must be visually confirmed before the
/// model declares an action viable (subtracted from the weakest-predicate
/// evidence). Drives the Table 4 integrity-constraint recall collapse.
pub const INTEGRITY_VIABILITY_BAR: f64 = 0.55;

/// Evidence assigned to a focus constraint when no caret is visible
/// (negative: the model cannot confirm focus from a static frame — the
/// §4.3.1 recall collapse).
pub const INTEGRITY_NO_CARET_EVIDENCE: f64 = -0.45;

/// Fraction of the trace that must align (in order) with the SOP for a
/// trajectory to read as faithful.
pub const TRAJECTORY_ALIGN_THRESHOLD: f64 = 0.82;

// ------------------------------------------------------------ Economics

/// Estimated manual cost per invoice-processing item (40 min of analyst
/// time at ~$55/h loaded), used by the §3.2 cost curves.
pub const MANUAL_COST_PER_ITEM_USD: f64 = 36.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_probabilities() {
        for p in [
            WD_PRIOR_BOILERPLATE_P,
            WD_PRIOR_VERIFY_P,
            KF_MISATTRIBUTION_P,
            ACT_LOG_DROPOUT_P,
            DECOMPOSE_SKIP_FOCUS_P,
            SOP_TRACKING_SLIP_P,
            NOSOP_SPURIOUS_STEP_P,
        ] {
            assert!((0.0..=1.0).contains(&p));
        }
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(EXEC_STEP_BUDGET_FACTOR > 1.0);
        }
        assert!((-1.0..=0.0).contains(&INTEGRITY_NO_CARET_EVIDENCE));
    }
}

//! Human-in-the-loop collaboration (paper §5, "Human-ECLAIR
//! Collaboration").
//!
//! Two mechanisms the paper proposes:
//! * SOP steps can be *marked* as requiring a human
//!   (`SopStep::human_gate`), e.g. "a physician sign-off before
//!   prescribing medications";
//! * a **whitelist of sensitive actions** "can be compiled to
//!   automatically force transfer of control to a human when triggered,
//!   similar to how kernels use interrupts".

use serde::{Deserialize, Serialize};

use crate::execute::parse::StepIntent;

/// What happened when control transferred to a human.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HumanDecision {
    /// The human approved; the agent proceeds.
    Approve,
    /// The human rejected; the step is skipped and logged.
    Reject,
    /// The human took over and performed the step themselves.
    TakeOver,
}

/// A compiled sensitive-action policy.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SensitivePolicy {
    /// Case-insensitive substrings of a step's target/value that trigger an
    /// interrupt ("delete", "archive", "cancel order", a payment amount…).
    pub trigger_phrases: Vec<String>,
    /// Typing into fields whose name matches these also triggers
    /// (passwords, card numbers).
    pub sensitive_fields: Vec<String>,
}

impl SensitivePolicy {
    /// A policy with trigger phrases.
    pub fn with_phrases(phrases: &[&str]) -> Self {
        Self {
            trigger_phrases: phrases.iter().map(|p| p.to_lowercase()).collect(),
            sensitive_fields: Vec::new(),
        }
    }

    /// The defaults the case studies would compile: destructive and
    /// financially-consequential verbs.
    pub fn enterprise_default() -> Self {
        Self {
            trigger_phrases: [
                "delete",
                "archive",
                "cancel order",
                "remove member",
                "merge",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            sensitive_fields: ["password", "card", "ssn"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    /// Whether an intent triggers the interrupt.
    pub fn triggers(&self, intent: &StepIntent) -> bool {
        let hay = crate::execute::suggest::intent_text(intent).to_lowercase();
        if self
            .trigger_phrases
            .iter()
            .any(|p| hay.contains(p.as_str()))
        {
            return true;
        }
        if let StepIntent::Type { field: Some(f), .. } | StepIntent::Set { field: f, .. } = intent {
            let fl = f.to_lowercase();
            if self
                .sensitive_fields
                .iter()
                .any(|s| fl.contains(s.as_str()))
            {
                return true;
            }
        }
        false
    }
}

/// A source of human decisions. Tests and examples plug in closures; a
/// real deployment would page an operator.
pub trait HumanOracle {
    /// Decide on an interrupted step.
    fn decide(&mut self, step_description: &str) -> HumanDecision;
}

/// An oracle that always answers the same way (the common test double).
#[derive(Debug, Clone, Copy)]
pub struct FixedOracle(pub HumanDecision);

impl HumanOracle for FixedOracle {
    fn decide(&mut self, _: &str) -> HumanDecision {
        self.0
    }
}

/// Audit record of one interrupt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterruptRecord {
    /// The step that triggered.
    pub step: String,
    /// The decision taken.
    pub decision: HumanDecision,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execute::parse::parse_step;

    #[test]
    fn destructive_clicks_trigger() {
        let p = SensitivePolicy::enterprise_default();
        assert!(p.triggers(&parse_step("Click the 'Archive project' button")));
        assert!(p.triggers(&parse_step("Click the 'Cancel order' button")));
        assert!(!p.triggers(&parse_step("Click the 'New issue' button")));
    }

    #[test]
    fn sensitive_fields_trigger_on_typing() {
        let p = SensitivePolicy::enterprise_default();
        assert!(p.triggers(&parse_step("Type \"hunter2\" into the Password field")));
        assert!(!p.triggers(&parse_step("Type \"hello\" into the Title field")));
    }

    #[test]
    fn custom_phrases() {
        let p = SensitivePolicy::with_phrases(&["Prescribe"]);
        assert!(p.triggers(&parse_step("Click the 'Prescribe medication' button")));
    }

    #[test]
    fn fixed_oracle_is_fixed() {
        let mut o = FixedOracle(HumanDecision::Reject);
        assert_eq!(o.decide("anything"), HumanDecision::Reject);
    }
}

//! The self-improvement skill library (paper §5, "Self-Improvement").
//!
//! "As ECLAIR repeatedly executes a workflow, it can observe the effects of
//! its actions… compile a database of common 'skills' that can later be
//! transferred to different workflows." A skill here is the smallest
//! reusable unit grounding produces: *on this screen (URL pattern), this
//! step phrase resolved to this point and worked*. Replaying a cached
//! skill skips the fallible FM grounding call entirely — both faster and
//! more reliable, the same shape as a self-driving DBMS caching a learned
//! plan.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use eclair_gui::Point;

/// One remembered grounding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Skill {
    /// The step phrase it solves.
    pub query: String,
    /// The point that worked.
    pub point: Point,
    /// How many times it has succeeded since being learned.
    pub successes: u32,
}

/// A thread-safe skill store keyed by `(url_pattern, normalized query)`.
/// Shared across agents via `Arc` (the multi-agent setting of §5).
#[derive(Debug, Default)]
pub struct SkillLibrary {
    inner: RwLock<HashMap<(String, String), Skill>>,
}

fn url_pattern(url: &str) -> String {
    // Generalize ids: digits in path segments become placeholders so a
    // skill learned on /orders/1001 transfers to /orders/1002.
    url.split('/')
        .map(|seg| {
            if !seg.is_empty() && seg.chars().all(|c| c.is_ascii_digit()) {
                "{id}"
            } else {
                seg
            }
        })
        .collect::<Vec<_>>()
        .join("/")
}

fn normalize(query: &str) -> String {
    query
        .to_lowercase()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

impl SkillLibrary {
    /// A fresh, empty library behind an `Arc` for sharing.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Number of stored skills.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().unwrap().is_empty()
    }

    /// Look up a remembered grounding for `query` on a screen at `url`.
    pub fn recall(&self, url: &str, query: &str) -> Option<Point> {
        self.inner
            .read()
            .unwrap()
            .get(&(url_pattern(url), normalize(query)))
            .map(|s| s.point)
    }

    /// Record that `query` grounded to `point` on `url` and the subsequent
    /// action succeeded.
    pub fn learn(&self, url: &str, query: &str, point: Point) {
        let mut map = self.inner.write().unwrap();
        let entry = map
            .entry((url_pattern(url), normalize(query)))
            .or_insert(Skill {
                query: query.to_string(),
                point,
                successes: 0,
            });
        entry.point = point;
        entry.successes += 1;
    }

    /// Drop a skill that stopped working (UI drift invalidates points).
    pub fn forget(&self, url: &str, query: &str) {
        self.inner
            .write()
            .unwrap()
            .remove(&(url_pattern(url), normalize(query)));
    }

    /// Total recorded successes (a crude usefulness meter for benches).
    pub fn total_successes(&self) -> u64 {
        self.inner
            .read()
            .unwrap()
            .values()
            .map(|s| s.successes as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learn_and_recall() {
        let lib = SkillLibrary::default();
        assert!(lib
            .recall("/gitlab/p/webapp/issues", "the 'New issue' button")
            .is_none());
        lib.learn(
            "/gitlab/p/webapp/issues",
            "the 'New issue' button",
            Point::new(400, 200),
        );
        assert_eq!(
            lib.recall("/gitlab/p/webapp/issues", "THE 'new issue' BUTTON"),
            Some(Point::new(400, 200)),
            "lookup is case/whitespace-insensitive"
        );
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn skills_transfer_across_ids() {
        let lib = SkillLibrary::default();
        lib.learn(
            "/magento/sales/orders/1001",
            "the 'Ship' button",
            Point::new(300, 250),
        );
        assert_eq!(
            lib.recall("/magento/sales/orders/1002", "the 'Ship' button"),
            Some(Point::new(300, 250)),
            "numeric segments generalize"
        );
    }

    #[test]
    fn forget_invalidates() {
        let lib = SkillLibrary::default();
        lib.learn("/a", "q", Point::new(1, 2));
        lib.forget("/a", "q");
        assert!(lib.recall("/a", "q").is_none());
        assert!(lib.is_empty());
    }

    #[test]
    fn successes_accumulate() {
        let lib = SkillLibrary::default();
        lib.learn("/a", "q", Point::new(1, 2));
        lib.learn("/a", "q", Point::new(1, 2));
        assert_eq!(lib.total_successes(), 2);
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn shared_across_threads() {
        let lib = SkillLibrary::shared();
        let l2 = Arc::clone(&lib);
        let handle = std::thread::spawn(move || {
            l2.learn("/x", "press go", Point::new(9, 9));
        });
        handle.join().unwrap();
        assert_eq!(lib.recall("/x", "press go"), Some(Point::new(9, 9)));
    }
}

//! The ECLAIR orchestrator: Demonstrate → Execute → Validate as one
//! object, the API a deployment would integrate against (and the one the
//! examples use).

use eclair_fm::tokens::Pricing;
use eclair_fm::{FmModel, ModelProfile};
use eclair_sites::TaskSpec;
use eclair_trace::RunSummary;
use eclair_vision::frame::Recording;
use eclair_workflow::Sop;
use serde::{Deserialize, Serialize};

use crate::demonstrate::{generate_sop, record_gold_demo, EvidenceLevel};
use crate::execute::executor::{run_task, ExecConfig, RunResult};
use crate::execute::GroundingStrategy;
use crate::validate::{check_completion, check_trajectory};

/// Agent configuration.
#[derive(Debug, Clone)]
pub struct EclairConfig {
    /// The FM profile to run on.
    pub profile: ModelProfile,
    /// Evidence level used when learning SOPs from demonstrations.
    pub evidence: EvidenceLevel,
    /// Grounding pipeline for execution.
    pub strategy: GroundingStrategy,
    /// Seed for the whole agent.
    pub seed: u64,
}

impl Default for EclairConfig {
    fn default() -> Self {
        Self {
            profile: ModelProfile::gpt4v(),
            evidence: EvidenceLevel::WdKfAct,
            strategy: GroundingStrategy::SomHtml,
            seed: crate::calibration::SEED,
        }
    }
}

/// A full Demonstrate→Execute→Validate pass over one workflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowReport {
    /// The SOP the agent learned (or was given).
    pub sop_text: String,
    /// Execution outcome.
    pub success: bool,
    /// Actions attempted during execution.
    pub actions_attempted: usize,
    /// Actions whose grounding or actuation failed during execution.
    pub failures: usize,
    /// Failed actions later recovered (escape and/or in-step retry).
    pub recoveries: usize,
    /// The completion validator's verdict on the agent's own run.
    pub self_reported_complete: bool,
    /// The trajectory validator's verdict against the learned SOP.
    pub trajectory_faithful: bool,
    /// Execution narration.
    pub log: Vec<String>,
    /// Per-phase trace rollup (FM calls, tokens, steps, grounding,
    /// retries) for this workflow.
    pub summary: RunSummary,
    /// Dollar cost of the FM calls under GPT-4 Turbo list pricing.
    pub fm_cost_usd: f64,
}

/// The agent.
pub struct Eclair {
    config: EclairConfig,
    model: FmModel,
}

impl Eclair {
    /// Build an agent.
    pub fn new(config: EclairConfig) -> Self {
        let model = FmModel::new(config.profile.clone(), config.seed);
        Self { config, model }
    }

    /// Direct model access (benches read the token meter).
    pub fn model(&self) -> &FmModel {
        &self.model
    }

    /// **Demonstrate**: learn an SOP from a recorded human demonstration.
    pub fn learn_sop(&mut self, wd: &str, recording: &Recording) -> Sop {
        generate_sop(&mut self.model, wd, Some(recording), self.config.evidence)
    }

    /// **Execute**: run a task following `sop`.
    pub fn execute(&mut self, task: &TaskSpec, sop: Sop) -> RunResult {
        let cfg = ExecConfig {
            sop: Some(sop),
            strategy: self.config.strategy,
            max_steps: 0,
            retry_failed: true,
            escape_popups: true,
            relogin_expired: true,
            use_cache: true,
        }
        .budgeted(task.gold_trace.len());
        run_task(&mut self.model, task, &cfg)
    }

    /// The full loop on one task: record a demonstration, learn the SOP,
    /// execute it on a fresh session, then self-validate. This is ECLAIR's
    /// end-to-end story in one call.
    pub fn automate(&mut self, task: &TaskSpec) -> WorkflowReport {
        let trace_start = self.model.trace().events().len();
        let demo = record_gold_demo(task);
        let sop = self.learn_sop(&task.intent, &demo);
        let result = self.execute(task, sop.clone());

        // Validate the agent's *own* run: re-record what it did by
        // replaying its log? The executor drove a private session; for
        // self-auditing we validate the demonstration + learned SOP pair
        // (completion of demo is ground truth true) and the agent's
        // outcome via the completion validator on its final state — here
        // approximated by the demo recording when the run failed early.
        let self_complete = check_completion(&mut self.model, &demo, &task.intent).verdict;
        let trajectory_ok = check_trajectory(&mut self.model, &demo, &sop).verdict;
        let summary = RunSummary::from_events(&self.model.trace().events()[trace_start..]);
        let pricing = Pricing::gpt4_turbo();
        let fm_cost_usd = summary.cost_usd(pricing.prompt_per_m, pricing.completion_per_m);
        WorkflowReport {
            sop_text: sop.format(),
            success: result.success,
            actions_attempted: result.actions_attempted,
            failures: result.failures,
            recoveries: result.recoveries,
            self_reported_complete: self_complete,
            trajectory_faithful: trajectory_ok,
            log: result.log,
            summary,
            fm_cost_usd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_sites::all_tasks;

    #[test]
    fn end_to_end_automation_with_oracle_profile() {
        let task = all_tasks().remove(2); // close-issue: short and robust
        let mut agent = Eclair::new(EclairConfig {
            profile: ModelProfile::oracle(),
            ..Default::default()
        });
        let report = agent.automate(&task);
        assert!(report.success, "{:#?}", report.log);
        assert!(report.self_reported_complete);
        assert!(report.trajectory_faithful);
        assert!(report.sop_text.contains("Close issue"));
    }

    #[test]
    fn trace_rollup_agrees_with_the_token_meter() {
        let task = all_tasks().remove(2);
        let mut agent = Eclair::new(EclairConfig {
            profile: ModelProfile::oracle(),
            ..Default::default()
        });
        let report = agent.automate(&task);
        // Every metered FM call must appear in the trace rollup, phase-
        // attributed and token-exact.
        let meter = agent.model().meter();
        assert_eq!(report.summary.fm_calls(), meter.calls);
        assert_eq!(report.summary.total().prompt_tokens, meter.prompt_tokens);
        assert_eq!(
            report.summary.total().completion_tokens,
            meter.completion_tokens
        );
        assert!(report.fm_cost_usd > 0.0);
        assert!(
            report.summary.demonstrate.fm_calls > 0,
            "{:#?}",
            report.summary
        );
        assert!(report.summary.execute.fm_calls > 0);
        assert!(report.summary.validate.fm_calls > 0);
        assert!(report.summary.execute.steps > 0);
    }

    #[test]
    fn gpt4_agent_automates_some_tasks() {
        let tasks: Vec<_> = all_tasks().into_iter().take(10).collect();
        let mut wins = 0;
        for (i, t) in tasks.iter().enumerate() {
            let mut agent = Eclair::new(EclairConfig {
                seed: 300 + i as u64,
                ..Default::default()
            });
            if agent.automate(t).success {
                wins += 1;
            }
        }
        assert!(
            wins >= 2,
            "a GPT-4-profile agent should complete some workflows end-to-end: {wins}/10"
        );
    }
}

//! Trajectory checking (paper §4.3.2): "it is not sufficient to merely
//! complete the workflow — the steps taken to complete it must align with
//! its SOP."
//!
//! Mechanism: transcribe the recorded action log into step texts (the same
//! transcription the ACT SOP generator uses), then compute an *in-order*
//! alignment against the SOP with the semantic step matcher. Shuffled
//! traces break the ordering; deleted frames leave SOP steps uncovered.

use eclair_fm::sampling::Judgment;
use eclair_fm::FmModel;
use eclair_vision::frame::Recording;
use eclair_workflow::matcher::step_similarity;
use eclair_workflow::Sop;

use crate::calibration;
use crate::demonstrate::sop_gen::steps_from_action_log;

/// Longest in-order alignment between observed steps and SOP steps, as a
/// fraction of the longer sequence (1.0 = perfect correspondence).
pub fn alignment_score(observed: &[String], sop: &Sop) -> f64 {
    if observed.is_empty() || sop.is_empty() {
        return 0.0;
    }
    // LCS over a semantic-match relation.
    let n = observed.len();
    let m = sop.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in 1..=n {
        for j in 1..=m {
            let matched = steps_compatible(&observed[i - 1], &sop.steps[j - 1].text);
            dp[i][j] = if matched {
                dp[i - 1][j - 1] + 1
            } else {
                dp[i - 1][j].max(dp[i][j - 1])
            };
        }
    }
    dp[n][m] as f64 / n.max(m) as f64
}

/// Semantic step match, relaxed for coordinate-only steps: an SOP step
/// like "Click at (40, 173)" carries no verifiable target, so any observed
/// click of the same kind is compatible with it (and vice versa).
fn steps_compatible(a: &str, b: &str) -> bool {
    // Trajectory auditing is lenient about phrasing (a transcribed step
    // drops the annotator's qualifiers) and strict about order/coverage,
    // so the per-pair threshold sits below the SOP-scoring one.
    if step_similarity(a, b) >= 0.6 {
        return true;
    }
    let coordish = |s: &str| s.contains(" at (") || s.contains("@ (");
    if coordish(a) || coordish(b) {
        use eclair_workflow::matcher::verb_class;
        let (va, vb) = (verb_class(a), verb_class(b));
        // Type-ish classes interchange when coordinates hide the target.
        use eclair_workflow::matcher::VerbClass as V;
        let typeish = |v: V| matches!(v, V::Type | V::Select);
        return va == vb || (typeish(va) && typeish(vb));
    }
    false
}

/// Judge whether the recording's actions followed the SOP.
pub fn check_trajectory(model: &mut FmModel, rec: &Recording, sop: &Sop) -> Judgment {
    let span = model
        .trace_mut()
        .open(eclair_trace::SpanKind::Validate, "trajectory");
    let observed = steps_from_action_log(rec);
    let score = alignment_score(&observed, sop);
    // Map alignment around the faithfulness threshold into evidence.
    let evidence = ((score - calibration::TRAJECTORY_ALIGN_THRESHOLD) * 5.0).clamp(-1.0, 1.0);
    let j = model.judge(evidence);
    model
        .trace_mut()
        .event(eclair_trace::EventKind::ValidatorVerdict {
            validator: "trajectory".into(),
            passed: j.verdict,
        });
    model.trace_mut().close(span);
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demonstrate::evidence::record_gold_demo;
    use eclair_fm::ModelProfile;
    use eclair_sites::all_tasks;

    #[test]
    fn faithful_traces_align_with_their_sop() {
        let tasks: Vec<_> = all_tasks().into_iter().take(8).collect();
        let mut model = FmModel::new(ModelProfile::gpt4v(), 1);
        let mut yes = 0;
        for t in &tasks {
            let rec = record_gold_demo(t);
            if check_trajectory(&mut model, &rec, &t.gold_sop).verdict {
                yes += 1;
            }
        }
        assert!(yes >= 6, "faithful traces accepted: {yes}/8");
    }

    #[test]
    fn shuffled_traces_are_rejected() {
        let tasks: Vec<_> = all_tasks().into_iter().take(8).collect();
        let mut model = FmModel::new(ModelProfile::gpt4v(), 2);
        let mut accepted = 0;
        for t in &tasks {
            let rec = record_gold_demo(t);
            let n = rec.num_actions();
            // Swap a far-apart pair to clearly violate order.
            let shuffled = rec.with_swapped(0, n - 1);
            if check_trajectory(&mut model, &shuffled, &t.gold_sop).verdict {
                accepted += 1;
            }
        }
        assert!(accepted <= 3, "shuffles mostly rejected: {accepted}/8");
    }

    #[test]
    fn deleted_steps_are_rejected() {
        let tasks: Vec<_> = all_tasks().into_iter().take(8).collect();
        let mut model = FmModel::new(ModelProfile::gpt4v(), 3);
        let mut accepted = 0;
        for t in &tasks {
            let rec = record_gold_demo(t);
            let mut cut = rec.with_deleted(0);
            if cut.num_actions() > 2 {
                cut = cut.with_deleted(cut.num_actions() / 2);
            }
            if check_trajectory(&mut model, &cut, &t.gold_sop).verdict {
                accepted += 1;
            }
        }
        assert!(accepted <= 3, "deletions mostly rejected: {accepted}/8");
    }

    #[test]
    fn alignment_score_properties() {
        let sop = Sop::from_texts(
            "t",
            &[
                "Click the 'A' button",
                "Type \"x\" into the B field",
                "Click the 'C' button",
            ],
        );
        let perfect: Vec<String> = sop.steps.iter().map(|s| s.text.clone()).collect();
        assert!((alignment_score(&perfect, &sop) - 1.0).abs() < 1e-9);
        let reversed: Vec<String> = perfect.iter().rev().cloned().collect();
        assert!(alignment_score(&reversed, &sop) < 0.5);
        assert_eq!(alignment_score(&[], &sop), 0.0);
    }

    #[test]
    fn alignment_score_single_step_and_empty_sop_edges() {
        let one = Sop::from_texts("t", &["Click the 'Save' button"]);
        // One observed step matching a one-step SOP: perfect alignment.
        let obs = vec!["Click the 'Save' button".to_string()];
        assert!((alignment_score(&obs, &one) - 1.0).abs() < 1e-9);
        // The same single step against a longer SOP covers 1 of 3.
        let three = Sop::from_texts(
            "t",
            &[
                "Click the 'Save' button",
                "Type \"x\" into the B field",
                "Click the 'C' button",
            ],
        );
        assert!((alignment_score(&obs, &three) - 1.0 / 3.0).abs() < 1e-9);
        // An empty SOP can never be aligned with, even by empty input.
        let empty = Sop::from_texts("t", &[]);
        assert_eq!(alignment_score(&obs, &empty), 0.0);
        assert_eq!(alignment_score(&[], &empty), 0.0);
    }

    #[test]
    fn empty_recording_fails_trajectory_check() {
        // Degenerate trajectory: no frames, no actions — nothing aligns,
        // so the verdict should be a near-certain rejection.
        let rec = Recording {
            workflow_description: "x".into(),
            frames: vec![],
            log: vec![],
        };
        let sop = Sop::from_texts("t", &["Click the 'Save' button"]);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 4);
        let mut accepted = 0;
        for _ in 0..100 {
            if check_trajectory(&mut model, &rec, &sop).verdict {
                accepted += 1;
            }
        }
        assert!(accepted < 10, "empty recording rejected: {accepted}/100");
    }
}

//! Workflow-completion checking (paper §4.3.2): given the trace and the
//! workflow description, decide whether the workflow finished.
//!
//! Mechanism: compare the final frame against the initial one and look for
//! the signals that distinguish a finished workflow — a confirmation
//! message, the requested entity rendered on a result screen, a settled
//! (non-form) URL. Truncated traces stop mid-form or pre-confirmation and
//! lack these.

use eclair_fm::sampling::Judgment;
use eclair_fm::text::{fuzzy_similarity, tokens};
use eclair_fm::FmModel;
use eclair_gui::VisualClass;
use eclair_vision::frame::Recording;

/// Judge whether the recorded workflow completed.
pub fn check_completion(model: &mut FmModel, rec: &Recording, wd: &str) -> Judgment {
    let span = model
        .trace_mut()
        .open(eclair_trace::SpanKind::Validate, "completion");
    let j = completion_judgment(model, rec, wd);
    model
        .trace_mut()
        .event(eclair_trace::EventKind::ValidatorVerdict {
            validator: "completion".into(),
            passed: j.verdict,
        });
    model.trace_mut().close(span);
    j
}

fn completion_judgment(model: &mut FmModel, rec: &Recording, wd: &str) -> Judgment {
    let Some(final_shot) = rec.final_frame() else {
        return model.judge(-0.9);
    };
    let first_shot = &rec.frames[0].shot;
    let percept = model.perceive(final_shot);
    let final_text = percept.full_text().to_lowercase();

    // A slight prior toward "not finished": absence of evidence is not
    // evidence of completion.
    let mut evidence: f64 = -0.2;

    // 1. A toast/notification bar on the final screen (toasts render as a
    //    panel with text; state badges in tables do NOT count — that
    //    distinction is what makes this check reliable).
    let toast_present = percept
        .elements
        .iter()
        .any(|e| e.visual == VisualClass::PanelEdge && !e.text.is_empty());
    evidence += if toast_present { 0.6 } else { -0.3 };
    // An entry form still on screen with no confirmation reads mid-flight.
    let open_inputs = percept
        .elements
        .iter()
        .filter(|e| e.visual == VisualClass::InputBox)
        .count();
    if !toast_present && open_inputs >= 2 {
        evidence -= 0.15;
    }

    // 2. The entities the WD names (quoted strings) appear on the final
    //    screen — e.g. the new issue's title on its detail page.
    let quoted = quoted_strings(wd);
    if !quoted.is_empty() {
        let seen = quoted.iter().all(|q| {
            let ql = q.to_lowercase();
            final_text.contains(&ql)
                || percept
                    .elements
                    .iter()
                    .any(|e| fuzzy_similarity(&e.text, q) > 0.8)
        });
        evidence += if seen { 0.25 } else { -0.1 };
    }

    // 3. URL shape: ending on an entry form (or never leaving the start
    //    URL on a multi-step task) reads unfinished.
    let url = &final_shot.url;
    if url.ends_with("/new") || url.contains("/new?") {
        evidence -= 0.5;
    }
    if url.contains("result") {
        evidence += 0.3;
    }
    if rec.num_actions() >= 3 && url == &first_shot.url {
        evidence -= 0.25;
    } else if url != &first_shot.url {
        evidence += 0.2;
    }

    // 4. A modal still open at the end means a step was left hanging.
    if percept.modal_seen {
        evidence -= 0.5;
    }

    // 5. Task keywords echoed on the final screen (weaker signal than
    //    quotes, still useful for tasks with no quoted entity).
    let wd_tokens = tokens(wd);
    let hits = wd_tokens
        .iter()
        .filter(|t| t.len() > 3 && final_text.contains(t.as_str()))
        .count();
    evidence += 0.15 * (hits.min(3) as f64) / 3.0;

    model.judge(evidence.clamp(-1.0, 1.0))
}

fn quoted_strings(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find('\'') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('\'') else { break };
        out.push(tail[..end].to_string());
        rest = &tail[end + 1..];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demonstrate::evidence::record_gold_demo;
    use eclair_fm::ModelProfile;
    use eclair_sites::all_tasks;

    #[test]
    fn full_traces_read_complete_truncated_do_not() {
        let tasks: Vec<_> = all_tasks().into_iter().take(10).collect();
        let mut model = FmModel::new(ModelProfile::gpt4v(), 1);
        let mut tp = 0;
        let mut fp = 0;
        for t in &tasks {
            let rec = record_gold_demo(t);
            if check_completion(&mut model, &rec, &t.intent).verdict {
                tp += 1;
            }
            let cut = rec.num_actions() / 2 + 1;
            let truncated = rec.truncated(cut);
            if check_completion(&mut model, &truncated, &t.intent).verdict {
                fp += 1;
            }
        }
        assert!(tp >= 7, "most full traces judged complete: {tp}/10");
        assert!(fp <= 3, "most truncated traces judged incomplete: {fp}/10");
    }

    #[test]
    fn empty_recording_is_incomplete() {
        let rec = Recording {
            workflow_description: "x".into(),
            frames: vec![],
            log: vec![],
        };
        let mut model = FmModel::new(ModelProfile::gpt4v(), 2);
        assert!(!check_completion(&mut model, &rec, "do a thing").verdict);
    }

    #[test]
    fn zero_and_single_action_recordings_read_incomplete() {
        // Degenerate trajectories: a recording cut to its opening frame
        // (no actions) and one cut to a single action are both still on
        // the start screen with no confirmation — the checker should
        // call them unfinished for most tasks.
        let tasks: Vec<_> = all_tasks().into_iter().take(8).collect();
        let mut model = FmModel::new(ModelProfile::gpt4v(), 5);
        let mut fp = 0;
        for t in &tasks {
            let rec = record_gold_demo(t);
            let n = rec.num_actions();
            let zero = rec.truncated(n);
            assert_eq!(zero.num_actions(), 0);
            assert_eq!(zero.frames.len(), 1, "opening frame survives the cut");
            if check_completion(&mut model, &zero, &t.intent).verdict {
                fp += 1;
            }
            let single = rec.truncated(n - 1);
            assert_eq!(single.num_actions(), 1);
            if check_completion(&mut model, &single, &t.intent).verdict {
                fp += 1;
            }
        }
        assert!(
            fp <= 4,
            "degenerate traces mostly judged incomplete: {fp}/16"
        );
    }

    #[test]
    fn quoted_extraction() {
        assert_eq!(
            quoted_strings("Create an issue titled 'A b' with label 'c'"),
            vec!["A b".to_string(), "c".into()]
        );
        assert!(quoted_strings("no quotes").is_empty());
    }
}

//! Stage 3 — **Validate** (paper §4.3).
//!
//! Four self-monitoring capabilities, all judged purely from pixels plus
//! the model's (noisy) judgment head:
//!
//! * [`actuation`] — did the last action actually execute? ((s, a, s′) vs
//!   s′ = s negatives; Table 4 row "Actuation");
//! * [`integrity`] — is an action viable in this state? (the §4.3.1
//!   integrity constraints; low recall because focus is invisible in a
//!   static frame);
//! * [`completion`] — did the workflow finish? (full vs truncated traces;
//!   Table 4 row "Workflow Completion");
//! * [`trajectory`] — did the steps taken follow the SOP? (shuffled /
//!   deleted-frame negatives; Table 4 row "Workflow Trajectory").

pub mod actuation;
pub mod completion;
pub mod integrity;
pub mod trajectory;

pub use actuation::check_actuation;
pub use completion::check_completion;
pub use integrity::check_integrity;
pub use trajectory::check_trajectory;

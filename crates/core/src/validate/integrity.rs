//! Visual integrity-constraint checking (paper §4.3.1, Table 4 row
//! "Integrity Constraint" — the weak spot: P 0.67 / R 0.36).
//!
//! The constraint language itself is in `eclair-workflow::constraints`;
//! here the model evaluates each predicate *from a static screenshot*,
//! which is exactly what the paper did and exactly why it fails: focus has
//! no pixels unless the caret's blink phase cooperates, enabledness beyond
//! gray-out is invisible, and off-screen elements cannot be confirmed.
//! Evidence combines as the weakest predicate (an action is viable only if
//! every precondition holds).

use eclair_fm::sampling::Judgment;
use eclair_fm::FmModel;
use eclair_gui::Screenshot;
use eclair_workflow::{Constraint, IntegrityConstraint};

use crate::calibration;

/// Judge whether the constraint holds in the state shown by `shot`.
pub fn check_integrity(
    model: &mut FmModel,
    constraint: &IntegrityConstraint,
    shot: &Screenshot,
) -> Judgment {
    let span = model
        .trace_mut()
        .open(eclair_trace::SpanKind::Validate, "integrity");
    let percept = model.perceive(shot);
    let mut evidence: f64 = 0.8; // vacuous constraint: viable
    for pred in &constraint.preds {
        let e = match pred {
            Constraint::Visible(t) | Constraint::InViewport(t) => {
                match percept.best_match(t, 0.5) {
                    Some(_) => 0.75,
                    None => -0.7,
                }
            }
            Constraint::Enabled(t) => match percept.best_match(t, 0.5) {
                Some((i, _)) if percept.elements[i].grayed => -0.85,
                // Looks enabled — but gray-out is the only visual cue, so
                // confidence is moderate.
                Some(_) => 0.55,
                None => -0.7,
            },
            Constraint::Focused(t) => {
                if !percept.caret_seen {
                    // Focus leaves no static trace: the model cannot
                    // confirm it (the paper's "blinking cursor" remark).
                    calibration::INTEGRITY_NO_CARET_EVIDENCE
                } else if t.is_empty() {
                    0.6 // "something is focused" — the caret shows that
                } else {
                    // Is the caret inside the element matching t?
                    match percept.best_match(t, 0.5) {
                        Some(_) => 0.5,
                        None => -0.5,
                    }
                }
            }
            Constraint::NoModal => {
                if percept.modal_seen {
                    -0.85
                } else {
                    0.7
                }
            }
            Constraint::UrlContains(u) => {
                if percept.url.contains(u.as_str()) {
                    0.9
                } else {
                    -0.9
                }
            }
        };
        evidence = evidence.min(e);
    }
    // Conservatism: the model declares an action viable only when every
    // precondition is *strongly* visually confirmed; anything it cannot
    // verify from a static frame (enabledness beyond gray-out, focus,
    // overlay state) pulls the verdict toward "not viable". This is the
    // paper's observed behaviour — recall collapses to 0.36.
    let j = model.judge((evidence - calibration::INTEGRITY_VIABILITY_BAR).clamp(-1.0, 1.0));
    model
        .trace_mut()
        .event(eclair_trace::EventKind::ValidatorVerdict {
            validator: "integrity".into(),
            passed: j.verdict,
        });
    model.trace_mut().close(span);
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_fm::ModelProfile;
    use eclair_gui::{GuiApp, Page, PageBuilder, SemanticEvent, Session, UserEvent};
    use eclair_workflow::{Action, TargetRef};

    struct FormApp;
    impl GuiApp for FormApp {
        fn name(&self) -> &str {
            "f"
        }
        fn url(&self) -> String {
            "/form".into()
        }
        fn build(&self) -> Page {
            let mut b = PageBuilder::new("f", "/form");
            b.form("f", |b| {
                b.text_input("email", "Email", "you@example.com");
                b.button("save", "Save");
            });
            b.finish()
        }
        fn on_event(&mut self, _: SemanticEvent) -> bool {
            false
        }
    }

    fn click_constraint() -> IntegrityConstraint {
        IntegrityConstraint::for_action(&Action::Click(TargetRef::Label("Save".into())))
    }

    #[test]
    fn visible_enabled_button_is_borderline_viable() {
        // Even a plainly clickable button only *borderline* clears the
        // model's conservatism bar (it cannot prove enabledness from a
        // static frame) — the mechanism behind the paper's 0.36 recall.
        let s = Session::new(Box::new(FormApp));
        let shot = s.screenshot_at_phase(false);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 1);
        let mut yes = 0;
        for _ in 0..100 {
            if check_integrity(&mut model, &click_constraint(), &shot).verdict {
                yes += 1;
            }
        }
        assert!(
            (25..=75).contains(&yes),
            "clickable button should be borderline, not certain: {yes}"
        );
    }

    #[test]
    fn vacuous_constraint_is_viable_even_on_a_blank_page() {
        // Edge case: an action with no preconditions. The evidence floor
        // (0.8) clears the viability bar regardless of what's on screen,
        // including nothing at all.
        let blank = PageBuilder::new("empty", "/empty")
            .finish()
            .screenshot_at(0);
        let ic = IntegrityConstraint {
            action_desc: "wait".into(),
            preds: vec![],
        };
        let mut model = FmModel::new(ModelProfile::gpt4v(), 8);
        let mut yes = 0;
        for _ in 0..100 {
            if check_integrity(&mut model, &ic, &blank).verdict {
                yes += 1;
            }
        }
        assert!(yes > 75, "vacuous constraint is viable: {yes}/100");
    }

    #[test]
    fn single_predicate_is_the_whole_verdict() {
        // A one-predicate constraint stands or falls on that predicate
        // alone: a decisive URL check should dominate the judge's noise.
        let s = Session::new(Box::new(FormApp));
        let shot = s.screenshot_at_phase(false);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 9);
        let hold = IntegrityConstraint {
            action_desc: "submit".into(),
            preds: vec![Constraint::UrlContains("form".into())],
        };
        let broken = IntegrityConstraint {
            action_desc: "submit".into(),
            preds: vec![Constraint::UrlContains("checkout".into())],
        };
        let (mut yes_hold, mut yes_broken) = (0, 0);
        for _ in 0..100 {
            if check_integrity(&mut model, &hold, &shot).verdict {
                yes_hold += 1;
            }
            if check_integrity(&mut model, &broken, &shot).verdict {
                yes_broken += 1;
            }
        }
        assert!(
            yes_hold > 60,
            "matching URL predicate holds: {yes_hold}/100"
        );
        assert!(
            yes_broken < 10,
            "failing URL predicate sinks it: {yes_broken}/100"
        );
    }

    #[test]
    fn focus_constraint_fails_without_caret() {
        // The field IS focused (oracle truth) but the frame caught the
        // blink-off phase: the model cannot confirm and says not-viable.
        let mut s = Session::new(Box::new(FormApp));
        let id = s.page().find_by_name("email").unwrap();
        let pt = s.page().get(id).bounds.center();
        s.dispatch(UserEvent::Click(pt));
        let ic = IntegrityConstraint::for_action(&Action::Type {
            target: None,
            text: "x".into(),
        });
        assert!(ic.holds_oracle(&s), "oracle: focused, constraint holds");
        let shot_off = s.screenshot_at_phase(false);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 2);
        let mut yes = 0;
        for _ in 0..100 {
            if check_integrity(&mut model, &ic, &shot_off).verdict {
                yes += 1;
            }
        }
        assert!(
            yes < 50,
            "without a visible caret the model mostly denies focus: {yes}"
        );
        // With the caret visible, the verdict flips.
        let shot_on = s.screenshot_at_phase(true);
        let mut yes_on = 0;
        for _ in 0..100 {
            if check_integrity(&mut model, &ic, &shot_on).verdict {
                yes_on += 1;
            }
        }
        assert!(yes_on > yes, "caret visibility helps: {yes_on} vs {yes}");
    }

    #[test]
    fn missing_target_reads_not_viable() {
        let s = Session::new(Box::new(FormApp));
        let shot = s.screenshot_at_phase(false);
        let ic = IntegrityConstraint::for_action(&Action::Click(TargetRef::Label(
            "Delete everything".into(),
        )));
        let mut model = FmModel::new(ModelProfile::gpt4v(), 3);
        let mut yes = 0;
        for _ in 0..100 {
            if check_integrity(&mut model, &ic, &shot).verdict {
                yes += 1;
            }
        }
        assert!(yes < 25, "absent target: {yes}");
    }

    #[test]
    fn modal_blocks_viability() {
        struct ModalApp;
        impl GuiApp for ModalApp {
            fn name(&self) -> &str {
                "m"
            }
            fn url(&self) -> String {
                "/m".into()
            }
            fn build(&self) -> Page {
                let mut b = PageBuilder::new("m", "/m");
                b.button("save", "Save");
                b.modal("warn", |b| {
                    b.text("Unsaved changes will be lost");
                    b.button("ok", "OK");
                });
                b.finish()
            }
            fn on_event(&mut self, _: SemanticEvent) -> bool {
                false
            }
        }
        let s = Session::new(Box::new(ModalApp));
        let shot = s.screenshot_at_phase(false);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 4);
        let mut yes = 0;
        for _ in 0..100 {
            if check_integrity(&mut model, &click_constraint(), &shot).verdict {
                yes += 1;
            }
        }
        assert!(yes < 30, "open modal should read not-viable: {yes}");
    }
}

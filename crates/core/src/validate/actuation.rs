//! Actuation checking: "detect if an action failed (e.g. typing had no
//! effect because no text field was first focused)" — paper §4.3.1.
//!
//! The model sees screenshots of s and s′ and must decide whether the
//! action between them executed. Mechanism: a perceptual diff. Identical
//! frames are strong evidence of failure; URL changes or large diffs are
//! strong evidence of success; *small* diffs (a caret, a checkbox glyph)
//! are genuinely borderline, which is where the paper's 0.85 recall is
//! lost.

use eclair_fm::sampling::Judgment;
use eclair_fm::FmModel;
use eclair_gui::Screenshot;
use eclair_vision::diff::diff;

use crate::calibration;

/// Judge whether the action described by `action_desc` executed between
/// frames `before` and `after`.
pub fn check_actuation(
    model: &mut FmModel,
    before: &Screenshot,
    _action_desc: &str,
    after: &Screenshot,
) -> Judgment {
    let span = model
        .trace_mut()
        .open(eclair_trace::SpanKind::Validate, "actuation");
    let d = diff(before, after);
    let evidence = if d.url_changed {
        0.95
    } else if d.changed_fraction <= calibration::ACTUATION_IDENTICAL_EPS {
        -0.95
    } else if d.changed_fraction >= calibration::ACTUATION_CLEAR_DIFF {
        0.85
    } else {
        // Sub-threshold change: scale into a borderline band (0.05..0.55).
        0.05 + 0.5 * (d.changed_fraction / calibration::ACTUATION_CLEAR_DIFF)
    };
    let j = model.judge(evidence);
    model
        .trace_mut()
        .event(eclair_trace::EventKind::ValidatorVerdict {
            validator: "actuation".into(),
            passed: j.verdict,
        });
    model.trace_mut().close(span);
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_fm::ModelProfile;
    use eclair_gui::{Page, PageBuilder};

    fn page() -> Page {
        let mut b = PageBuilder::new("a", "/a");
        b.heading(1, "Order #1001");
        b.text_input("note", "Note", "add note");
        b.button("ship", "Ship");
        b.finish()
    }

    #[test]
    fn identical_frames_judged_not_executed() {
        let p = page();
        let s = p.screenshot_at(0);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 1);
        let mut false_pos = 0;
        for _ in 0..200 {
            if check_actuation(&mut model, &s, "click 'Ship'", &s).verdict {
                false_pos += 1;
            }
        }
        assert!(
            false_pos < 10,
            "identical frames rarely fool it: {false_pos}/200"
        );
    }

    #[test]
    fn blank_frame_pair_judged_not_executed() {
        // Degenerate input: a page with no elements at all on both sides
        // of the action. Nothing changed, so nothing executed.
        let blank = PageBuilder::new("empty", "/empty")
            .finish()
            .screenshot_at(0);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 7);
        let mut false_pos = 0;
        for _ in 0..200 {
            if check_actuation(&mut model, &blank, "click anything", &blank).verdict {
                false_pos += 1;
            }
        }
        assert!(false_pos < 10, "blank identical frames: {false_pos}/200");
    }

    #[test]
    fn visible_change_judged_executed() {
        let mut p = page();
        let before = p.screenshot_at(0);
        let id = p.find_by_name("note").unwrap();
        p.get_mut(id).value = "called customer".into();
        let after = p.screenshot_at(0);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 2);
        let mut hits = 0;
        for _ in 0..200 {
            if check_actuation(&mut model, &before, "type note", &after).verdict {
                hits += 1;
            }
        }
        assert!(hits > 150, "typed text is detectable: {hits}/200");
    }

    #[test]
    fn url_change_is_decisive() {
        let p = page();
        let before = p.screenshot_at(0);
        let mut b2 = PageBuilder::new("b", "/b");
        b2.heading(1, "Elsewhere");
        let after = b2.finish().screenshot_at(0);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 3);
        assert!(check_actuation(&mut model, &before, "navigate", &after).verdict);
    }

    #[test]
    fn tiny_changes_are_borderline() {
        // A caret-only difference: detectable in principle, unreliable in
        // practice — verdicts split across trials.
        let p = page();
        let before = p.screenshot_at(0);
        let mut after = before.clone();
        after.items.push(eclair_gui::PaintItem {
            rect: eclair_gui::Rect::new(300, 120, 2, 20),
            visual: eclair_gui::VisualClass::CaretBar,
            text: eclair_gui::Sym::EMPTY,
            emphasis: false,
            grayed: false,
        });
        let mut model = FmModel::new(ModelProfile::gpt4v(), 4);
        let mut yes = 0;
        for _ in 0..200 {
            if check_actuation(&mut model, &before, "click field", &after).verdict {
                yes += 1;
            }
        }
        assert!(
            yes > 80 && yes < 200,
            "borderline evidence should produce mixed verdicts: {yes}/200"
        );
    }
}

//! SOP generation from demonstration evidence (the Table 1 pipelines).
//!
//! All three pipelines share one output format (combined-granularity steps:
//! `Click the '…'`, `Type "…" into the … field`, `Select '…' from the …
//! dropdown`, `Set the … field to "…"`), which is also the format the gold
//! SOPs use, so Table 1's precision/recall scoring compares like with like.
//!
//! * **WD** — recite the procedure prior ([`super::prior`]), padded with
//!   boilerplate: high-level right, detail-level wrong (hallucinated steps,
//!   unknown field values);
//! * **WD+KF** — infer one step per key-frame transition from what visibly
//!   changed: URL changes → link clicks, input deltas → typing, glyph
//!   flips → checkbox toggles, everything read through the model's noisy
//!   percepts (misses and misattributions included);
//! * **WD+KF+ACT** — transcribe the action log (clicks + keystroke bursts),
//!   merging focus-click/typing pairs; residual errors come from log
//!   dropout and ambiguous coordinate-only entries.

use eclair_fm::percept::{PerceivedElement, ScenePercept};
use eclair_fm::FmModel;
use eclair_gui::{Key, Rect, UserEvent, VisualClass};
use eclair_vision::diff::diff;
use eclair_vision::frame::Recording;
use eclair_vision::keyframes::{extract_key_frames, KeyFrameConfig};
use eclair_workflow::Sop;
use rand::Rng;

use crate::calibration;
use crate::demonstrate::evidence::{degrade_log, EvidenceLevel};
use crate::demonstrate::prior;

/// Generate an SOP for a workflow under an evidence level. `recording` is
/// required for the KF/ACT levels.
pub fn generate_sop(
    model: &mut FmModel,
    wd: &str,
    recording: Option<&Recording>,
    level: EvidenceLevel,
) -> Sop {
    let span = model
        .trace_mut()
        .open(eclair_trace::SpanKind::Demonstrate, wd);
    let steps = match level {
        EvidenceLevel::Wd => {
            let rate = model.profile().hallucination_rate;
            prior::padded_steps(wd, rate, model.rng())
        }
        EvidenceLevel::WdKf => {
            let rec = recording.expect("WD+KF requires a recording");
            steps_from_key_frames(model, rec)
        }
        EvidenceLevel::WdKfAct => {
            let rec = recording.expect("WD+KF+ACT requires a recording");
            let degraded = degrade_log(rec, model.rng());
            steps_from_action_log(&degraded)
        }
    };
    // The SOP-writing call itself: the recording's frames and the WD go
    // into the context window, the steps come out of it.
    let prompt_tokens =
        200 + (wd.len() as u64).div_ceil(4) + recording.map_or(0, |r| 90 * r.frames.len() as u64);
    let completion_tokens = steps
        .iter()
        .map(|s| 2 + (s.len() as u64).div_ceil(4))
        .sum::<u64>();
    model.account("write_sop", prompt_tokens, completion_tokens);
    model.trace_mut().close(span);
    let mut sop = Sop::new(wd);
    for s in steps {
        sop.push(s);
    }
    sop
}

// ------------------------------------------------------------------ WD+KF

fn steps_from_key_frames(model: &mut FmModel, rec: &Recording) -> Vec<String> {
    let kf_cfg = KeyFrameConfig { min_diff: 0.002 };
    let kfs = extract_key_frames(rec, kf_cfg);
    let mut steps = Vec::new();
    // First-seen text per input-box location. A field that later shows its
    // first-seen text again has *reverted* (the form reset when a submit
    // landed), not been set. Cleared on navigation: a new page, new form.
    let mut pristine: Vec<(Rect, String)> = Vec::new();
    for pair in kfs.windows(2) {
        let a = &rec.frames[pair[0].frame_index].shot;
        let b = &rec.frames[pair[1].frame_index].shot;
        let pa = model.perceive(a);
        let pb = model.perceive(b);
        if b.url != a.url {
            pristine.clear();
            steps.push(infer_navigation(model, &pa, &pb, &b.url));
            continue;
        }
        for el in pa.elements.iter().chain(pb.elements.iter()) {
            if el.visual == VisualClass::InputBox
                && !pristine.iter().any(|(r, _)| same_spot(r, &el.rect))
            {
                pristine.push((el.rect, el.text.clone()));
            }
        }
        let d = diff(a, b);
        if d.is_identical() {
            continue;
        }
        let mut emitted = false;
        // 1. Input boxes whose displayed text changed: typing.
        for (step, _) in changed_inputs(&pa, &pb, &pristine) {
            steps.push(step);
            emitted = true;
        }
        // 2. Check/radio glyphs that flipped (checked state renders as the
        //    glyph's emphasized look, which perception preserves).
        for el_b in &pb.elements {
            if !matches!(
                el_b.visual,
                VisualClass::CheckGlyph | VisualClass::RadioGlyph
            ) {
                continue;
            }
            if let Some(el_a) = find_by_location(&pa, el_b) {
                if !el_a.emphasis && el_b.emphasis {
                    steps.push(format!("Check the '{}' checkbox", el_b.text));
                    emitted = true;
                }
            }
        }
        if emitted {
            continue;
        }
        // A click that merely focuses a field draws a highlight around the
        // input box and changes nothing else; the typing step that follows
        // subsumes it. Without this guard, the click inference below would
        // attribute the highlight to whichever button the workflow
        // description happens to name — usually the final submit.
        let focus_only = d.regions.iter().all(|reg| {
            pa.elements
                .iter()
                .chain(pb.elements.iter())
                .any(|e| e.visual == VisualClass::InputBox && covers(&e.rect.inflate(12), reg))
        });
        if focus_only {
            continue;
        }
        // 3. Same-page click: something changed but no field/toggle did.
        //    Attribute the click to an interactive element near the change.
        if let Some(step) =
            infer_same_page_click(model, &rec.workflow_description, &pa, &pb, &d.regions)
        {
            steps.push(step);
        }
        // else: the transition leaves no readable trace — a missing step.
    }
    steps
}

fn infer_navigation(
    model: &mut FmModel,
    pa: &ScenePercept,
    pb: &ScenePercept,
    new_url: &str,
) -> String {
    // The new page's heading (first emphasized text) usually names what was
    // clicked ("Issues", the project name, the issue title...).
    let heading = pb
        .elements
        .iter()
        .find(|e| e.visual == VisualClass::Text && e.emphasis && !e.text.is_empty())
        .map(|e| e.text.clone())
        .unwrap_or_default();
    let url_tail = new_url
        .rsplit('/')
        .next()
        .unwrap_or("")
        .replace(['-', '_'], " ");
    let candidates: Vec<&PerceivedElement> = pa
        .elements
        .iter()
        .filter(|e| {
            e.looks_interactive() && e.visual != VisualClass::InputBox && !e.text.is_empty()
        })
        .collect();
    // Texts that are NEW on the landing page (a confirmation toast names
    // the button that triggered the navigation: "Issue created" ← "Create
    // issue"). Persisting chrome (nav links) must not count.
    let new_texts: Vec<&str> = pb
        .elements
        .iter()
        .filter(|e| !e.text.is_empty())
        .filter(|e| !pa.elements.iter().any(|o| o.text == e.text))
        .map(|e| e.text.as_str())
        .collect();
    let mut best: Option<(&PerceivedElement, f64)> = None;
    for c in &candidates {
        let s = eclair_fm::text::fuzzy_similarity(&c.text, &heading)
            .max(eclair_fm::text::fuzzy_similarity(&c.text, &url_tail))
            .max(
                new_texts
                    .iter()
                    .map(|t| {
                        // Stemmed overlap lets a past-tense confirmation
                        // name its trigger ("Issue created" ← "Create
                        // issue") despite the inflection.
                        eclair_fm::text::fuzzy_similarity(&c.text, t)
                            .max(eclair_fm::text::stem_overlap(&c.text, t))
                    })
                    .fold(0.0f64, f64::max)
                    * 0.9,
            )
            .max(if nav_semantically_related(&c.text, &heading) {
                0.5
            } else {
                0.0
            });
        if best.map(|(_, bs)| s > bs).unwrap_or(true) {
            best = Some((c, s));
        }
    }
    match best {
        Some((el, score)) if score >= 0.45 => format!("Click the '{}' link", el.text),
        _ => {
            // Ambiguous: sometimes the model guesses an element (and is
            // usually wrong), sometimes it writes a navigation step that
            // happens to parse/match well when the heading names the page.
            if !candidates.is_empty() && model.rng().gen_bool(calibration::KF_MISATTRIBUTION_P) {
                let i = model.rng().gen_range(0..candidates.len());
                format!("Click the '{}' link", candidates[i].text)
            } else if !heading.is_empty() {
                format!("Navigate to the {heading} page")
            } else {
                format!("Navigate to {url_tail}")
            }
        }
    }
}

/// Navigation labels that point at differently-named pages — world
/// knowledge a pretrained model applies ("Catalog" opens the product
/// list).
const NAV_LEXICON: &[(&str, &str)] = &[
    ("catalog", "product"),
    ("catalog", "products"),
    ("orders", "order"),
    ("issues", "issue"),
    ("members", "member"),
    ("customers", "customer"),
    ("settings", "setting"),
    ("profile", "user"),
];

fn nav_semantically_related(label: &str, heading: &str) -> bool {
    let l = eclair_fm::text::tokens(label);
    let h = eclair_fm::text::tokens(heading);
    NAV_LEXICON.iter().any(|(a, b)| {
        (l.iter().any(|t| t == a) && h.iter().any(|t| t == b))
            || (l.iter().any(|t| t == b) && h.iter().any(|t| t == a))
    })
}

/// Two rects that denote the same widget across frames (location match
/// tolerant of perception jitter).
fn same_spot(a: &Rect, b: &Rect) -> bool {
    a.iou(b) > 0.3 || a.center().distance(b.center()) < 24.0
}

/// Whether `outer` fully covers `inner`.
fn covers(outer: &Rect, inner: &Rect) -> bool {
    inner.x >= outer.x
        && inner.y >= outer.y
        && inner.right() <= outer.right()
        && inner.bottom() <= outer.bottom()
}

/// Typing steps inferred from input boxes whose rendered text changed.
fn changed_inputs(
    pa: &ScenePercept,
    pb: &ScenePercept,
    pristine: &[(Rect, String)],
) -> Vec<(String, Rect)> {
    let mut out = Vec::new();
    for el_b in pb
        .elements
        .iter()
        .filter(|e| e.visual == VisualClass::InputBox)
    {
        let Some(el_a) = find_by_location(pa, el_b) else {
            continue;
        };
        if el_a.text == el_b.text || el_b.text.is_empty() {
            continue;
        }
        // A field showing its first-seen text again has reverted — the form
        // reset when a submit landed in this same transition, so the real
        // step is the click, not a Set.
        if pristine
            .iter()
            .any(|(r, t)| same_spot(r, &el_b.rect) && *t == el_b.text)
        {
            continue;
        }
        // Reading noise is not a change: two OCR passes over the same
        // longer rendered text differ by a character or two. Short strings
        // (numeric quantities!) get no such benefit of the doubt.
        let len_diff = el_a
            .text
            .chars()
            .count()
            .abs_diff(el_b.text.chars().count());
        if el_a.text.chars().count() >= 6
            && len_diff <= 1
            && eclair_fm::text::edit_distance(&el_a.text, &el_b.text) <= 2
        {
            continue;
        }
        // Caption: a label above/left of the box; else the *previous
        // frame's* box text (an empty input displays its placeholder,
        // which names the field); else give up gracefully.
        let caption = caption_for(pb, el_b)
            .or_else(|| {
                let prior = el_a.text.trim();
                (!prior.is_empty()
                    && !el_b.text.starts_with(prior)
                    && prior.len() <= 28
                    && prior.chars().any(|c| c.is_alphabetic()))
                .then(|| prior.to_string())
            })
            .unwrap_or_else(|| "text".into());
        let step = if el_a.text.is_empty() || el_b.text.starts_with(&el_a.text) {
            format!("Type \"{}\" into the {} field", el_b.text, caption)
        } else {
            format!("Set the {} field to \"{}\"", caption, el_b.text)
        };
        out.push((step, el_b.rect));
    }
    out
}

fn infer_same_page_click(
    model: &mut FmModel,
    wd: &str,
    pa: &ScenePercept,
    pb: &ScenePercept,
    regions: &[Rect],
) -> Option<String> {
    let near_change = |r: &Rect| regions.iter().any(|reg| reg.inflate(16).intersects(r));
    // Clicks that change a page come from activatable things — typing
    // surfaces are excluded even if their pixels sit inside a changed
    // region (a filled input did not *cause* the new table row).
    let clickish = |e: &&PerceivedElement| {
        matches!(
            e.visual,
            eclair_gui::VisualClass::BoxButton
                | eclair_gui::VisualClass::TextLink
                | eclair_gui::VisualClass::IconGlyph
                | eclair_gui::VisualClass::CheckGlyph
                | eclair_gui::VisualClass::RadioGlyph
        ) && !e.text.is_empty()
    };
    // All activatables are candidates; proximity to the changed region is
    // a score bonus rather than a hard filter (state changes often surface
    // far from the button that caused them). Exception: when a modal just
    // closed, whatever was clicked was *inside* it.
    let closed_modal_panel = if pa.modal_seen && !pb.modal_seen {
        pa.elements
            .iter()
            .find(|e| {
                e.visual == eclair_gui::VisualClass::PanelEdge && e.rect.w >= 300 && e.rect.h >= 100
            })
            .map(|e| e.rect)
    } else {
        None
    };
    let candidates: Vec<&PerceivedElement> = pa
        .elements
        .iter()
        .filter(clickish)
        .filter(|e| {
            closed_modal_panel
                .map(|panel| panel.intersects(&e.rect))
                .unwrap_or(true)
        })
        .collect();
    if candidates.is_empty() {
        // Change with no readable cause (icon click, modal content): the
        // model either stays silent (missing step) or invents one.
        if pb.modal_seen && model.rng().gen_bool(0.5) {
            return Some("Dismiss the dialog that appeared".into());
        }
        return None;
    }
    // Prefer an element that disappeared (buttons often swap state:
    // "Close issue" → "Reopen issue").
    let is_gone = |c: &PerceivedElement| {
        !pb.elements
            .iter()
            .any(|e| e.visual == c.visual && e.text == c.text)
    };
    let pick_from: Vec<&PerceivedElement> = candidates.clone();
    // Rank by agreement with what newly appeared (a "Merged" badge or a
    // "Merge request merged" toast names the button that was clicked).
    // When a modal just opened, the informative new content is the modal's;
    // incidental churn elsewhere (OCR flicker) must not vote.
    let opened_modal_panel = if pb.modal_seen && !pa.modal_seen {
        pb.elements
            .iter()
            .find(|e| {
                e.visual == eclair_gui::VisualClass::PanelEdge && e.rect.w >= 300 && e.rect.h >= 100
            })
            .map(|e| e.rect)
    } else {
        None
    };
    let new_texts: Vec<&str> = pb
        .elements
        .iter()
        .filter(|e| !e.text.is_empty() && e.visual != eclair_gui::VisualClass::IconGlyph)
        .filter(|e| {
            // "New" means no close match existed before — exact equality
            // would count every OCR re-read as fresh content.
            !pa.elements
                .iter()
                .any(|o| eclair_fm::text::fuzzy_similarity(&o.text, &e.text) > 0.85)
        })
        .filter(|e| {
            opened_modal_panel
                .map(|panel| panel.inflate(24).intersects(&e.rect))
                .unwrap_or(true)
        })
        .map(|e| e.text.as_str())
        .collect();
    let mut best = 0usize;
    let mut best_score = -1.0f64;
    for (i, cand) in pick_from.iter().enumerate() {
        let from_effects = new_texts
            .iter()
            .map(|t| {
                eclair_fm::text::fuzzy_similarity(&cand.text, t)
                    .max(eclair_fm::text::stem_overlap(&cand.text, t))
            })
            .fold(0.0f64, f64::max);
        // The workflow description also hints at what was clicked
        // ("Invite jill.woo..." names the Invite button).
        let from_wd = 0.8 * eclair_fm::text::stem_overlap(&cand.text, wd);
        let proximity = if near_change(&cand.rect) { 0.15 } else { 0.0 };
        // A button that vanished in the after-frame very likely was the
        // one clicked ("Close issue" → "Reopen issue" swaps).
        let gone_bonus = if is_gone(cand) { 0.3 } else { 0.0 };
        // When a dialog was just dismissed and the workflow advanced, the
        // affirmative button is the overwhelmingly likely click.
        let affirm_bonus = if closed_modal_panel.is_some()
            && [
                "ok", "yes", "confirm", "continue", "apply", "archive", "save", "submit",
            ]
            .iter()
            .any(|a| cand.text.to_lowercase().starts_with(a))
        {
            0.25
        } else {
            0.0
        };
        // Same-page changes are caused by activating buttons; bare text
        // links navigate. Damp link candidates so a toast echoing a nav
        // label ("Settings saved") cannot outvote the real submit button.
        let mut text_match = from_effects.max(from_wd);
        if cand.visual == eclair_gui::VisualClass::TextLink {
            text_match *= 0.6;
        }
        let s = text_match + proximity + gone_bonus + affirm_bonus;
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    let idx = if pick_from.len() > 1
        && best_score < 0.3
        && model.rng().gen_bool(calibration::KF_MISATTRIBUTION_P)
    {
        model.rng().gen_range(0..pick_from.len())
    } else {
        best
    };
    Some(format!("Click the '{}' button", pick_from[idx].text))
}

fn find_by_location<'a>(
    p: &'a ScenePercept,
    el: &PerceivedElement,
) -> Option<&'a PerceivedElement> {
    p.elements
        .iter()
        .filter(|e| e.visual == el.visual)
        .find(|e| e.rect.iou(&el.rect) > 0.3 || e.rect.center().distance(el.rect.center()) < 24.0)
}

/// The caption of an input: the nearest text element above (or left of) it.
fn caption_for(p: &ScenePercept, input: &PerceivedElement) -> Option<String> {
    let mut best: Option<(&PerceivedElement, i32)> = None;
    for e in &p.elements {
        // Field captions are small plain text; emphasized text is a page
        // heading, not a label.
        if e.visual != VisualClass::Text || e.text.is_empty() || e.emphasis {
            continue;
        }
        let above = e.rect.bottom() <= input.rect.y + 4
            && input.rect.y - e.rect.bottom() < 40
            && (e.rect.x - input.rect.x).abs() < 80;
        let left = (e.rect.y - input.rect.y).abs() < 12 && e.rect.right() <= input.rect.x + 4;
        if above || left {
            let dist = (input.rect.y - e.rect.bottom()).abs() + (input.rect.x - e.rect.x).abs();
            if best.map(|(_, d)| dist < d).unwrap_or(true) {
                best = Some((e, dist));
            }
        }
    }
    best.map(|(e, _)| e.text.clone())
}

// ----------------------------------------------------------------- WD+ACT

/// Transcribe an action log into step texts (also used by the trajectory
/// validator to render "what actually happened" in SOP vocabulary).
pub fn steps_from_action_log(rec: &Recording) -> Vec<String> {
    let mut steps = Vec::new();
    let log = &rec.log;
    let mut i = 0usize;
    while i < log.len() {
        let entry = &log[i];
        match &entry.event {
            UserEvent::Click(pt) => {
                // Look ahead: is this click the focus half of a typing step?
                let mut j = i + 1;
                let mut typed = String::new();
                let mut backspaced = false;
                while j < log.len() {
                    match &log[j].event {
                        UserEvent::Type(t) => typed.push_str(t),
                        UserEvent::Press(Key::Backspace) => backspaced = true,
                        _ => break,
                    }
                    j += 1;
                }
                if !typed.is_empty() {
                    match &entry.target_text {
                        Some(t) => {
                            if backspaced {
                                steps.push(format!("Set the {t} field to \"{typed}\""));
                            } else {
                                steps.push(format!("Type \"{typed}\" into the {t} field"));
                            }
                        }
                        None => steps.push(format!(
                            "Type \"{typed}\" into the field at ({}, {})",
                            pt.x, pt.y
                        )),
                    }
                    i = j;
                    continue;
                }
                match &entry.target_text {
                    Some(t) => steps.push(format!("Click the '{t}'")),
                    None => steps.push(format!("Click at ({}, {})", pt.x, pt.y)),
                }
                i += 1;
            }
            UserEvent::Type(t) => {
                // Orphan typing (after Tab focus); merge the burst.
                let mut typed = t.clone();
                let mut j = i + 1;
                while j < log.len() {
                    if let UserEvent::Type(t2) = &log[j].event {
                        typed.push_str(t2);
                        j += 1;
                    } else {
                        break;
                    }
                }
                steps.push(format!("Type \"{typed}\""));
                i = j;
            }
            UserEvent::Press(Key::Enter) => {
                steps.push("Press Enter".into());
                i += 1;
            }
            UserEvent::Press(Key::Escape) => {
                steps.push("Press Escape to dismiss the dialog".into());
                i += 1;
            }
            UserEvent::Press(_) | UserEvent::Scroll(_) => {
                i += 1; // tab/backspace bursts and scrolling are not steps
            }
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demonstrate::evidence::record_gold_demo;
    use eclair_fm::ModelProfile;
    use eclair_sites::all_tasks;
    use eclair_workflow::score::score_sop;

    fn task(id: &str) -> eclair_sites::TaskSpec {
        all_tasks().into_iter().find(|t| t.id == id).unwrap()
    }

    #[test]
    fn act_transcription_is_nearly_perfect_on_clean_logs() {
        let t = task("gitlab-01");
        let rec = record_gold_demo(&t);
        let steps = steps_from_action_log(&rec);
        let mut sop = Sop::new(&t.intent);
        for s in steps {
            sop.push(s);
        }
        let score = score_sop(&sop, &t.gold_sop);
        assert!(
            score.recall >= 0.8,
            "clean log transcription recalls gold steps: {score:?}\n{}",
            sop.format()
        );
        assert!(score.precision >= 0.8, "{score:?}\n{}", sop.format());
    }

    #[test]
    fn act_beats_kf_beats_wd_on_average() {
        let tasks: Vec<_> = all_tasks().into_iter().take(8).collect();
        let mut f1 = [0.0f64; 3];
        for (ti, t) in tasks.iter().enumerate() {
            let rec = record_gold_demo(t);
            for (k, level) in EvidenceLevel::all().into_iter().enumerate() {
                let mut model = FmModel::new(ModelProfile::gpt4v(), 100 + ti as u64);
                let sop = generate_sop(&mut model, &t.intent, Some(&rec), level);
                f1[k] += score_sop(&sop, &t.gold_sop).f1();
            }
        }
        assert!(
            f1[2] >= f1[1] && f1[1] >= f1[0],
            "evidence monotonicity: WD {:.2} <= KF {:.2} <= ACT {:.2}",
            f1[0] / 8.0,
            f1[1] / 8.0,
            f1[2] / 8.0
        );
        assert!(
            f1[0] / 8.0 > 0.35,
            "WD prior is not useless: {}",
            f1[0] / 8.0
        );
    }

    #[test]
    fn kf_generation_recovers_typing_steps() {
        let t = task("magento-01");
        let rec = record_gold_demo(&t);
        let mut model = FmModel::new(ModelProfile::oracle(), 7);
        let sop = generate_sop(&mut model, &t.intent, Some(&rec), EvidenceLevel::WdKf);
        let text = sop.format();
        assert!(
            text.contains("Trail Running Socks"),
            "typed product name recovered from frames:\n{text}"
        );
        assert!(text.contains("24-SO01"), "typed SKU recovered:\n{text}");
    }

    #[test]
    fn wd_generation_needs_no_recording() {
        let t = task("gitlab-03");
        let mut model = FmModel::new(ModelProfile::gpt4v(), 5);
        let sop = generate_sop(&mut model, &t.intent, None, EvidenceLevel::Wd);
        assert!(!sop.is_empty());
        assert!(sop.format().contains("Close issue"));
    }

    #[test]
    fn deterministic_under_model_seed() {
        let t = task("gitlab-02");
        let rec = record_gold_demo(&t);
        let run = || {
            let mut model = FmModel::new(ModelProfile::gpt4v(), 42);
            generate_sop(&mut model, &t.intent, Some(&rec), EvidenceLevel::WdKf).format()
        };
        assert_eq!(run(), run());
    }
}

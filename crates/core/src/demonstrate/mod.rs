//! Stage 1 — **Demonstrate** (paper §4.1).
//!
//! ECLAIR "learns from passively collected human demonstrations, with no
//! updates to the underlying FM's weights": a human records themselves
//! doing the workflow once; the system turns the video + action log into a
//! written SOP. The three evidence levels ablated in Table 1 are:
//!
//! * **WD** — workflow description only (the model writes the SOP from its
//!   prior knowledge of similar applications);
//! * **WD+KF** — plus key frames extracted from the recording;
//! * **WD+KF+ACT** — plus the textual action log of clicks and keystrokes.

pub mod evidence;
pub mod prior;
pub mod sop_gen;

pub use evidence::{record_gold_demo, EvidenceLevel};
pub use sop_gen::generate_sop;

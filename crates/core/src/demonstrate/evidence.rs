//! Demonstration evidence: recordings of gold traces and the degradations
//! the evidence pipeline applies to them.

use rand::Rng;
use serde::{Deserialize, Serialize};

use eclair_sites::TaskSpec;
use eclair_vision::frame::{record, Recording};
use eclair_workflow::replay::realize_events;

use crate::calibration;

/// The three Table 1 evidence conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvidenceLevel {
    /// Workflow description only.
    Wd,
    /// Description + key frames.
    WdKf,
    /// Description + key frames + action log.
    WdKfAct,
}

impl EvidenceLevel {
    /// Paper row label.
    pub fn label(&self) -> &'static str {
        match self {
            EvidenceLevel::Wd => "WD",
            EvidenceLevel::WdKf => "WD+KF",
            EvidenceLevel::WdKfAct => "WD+KF+ACT",
        }
    }

    /// All levels in Table 1 order.
    pub fn all() -> [EvidenceLevel; 3] {
        [
            EvidenceLevel::Wd,
            EvidenceLevel::WdKf,
            EvidenceLevel::WdKfAct,
        ]
    }
}

/// Record a human demonstration of a task: realize the gold semantic trace
/// into raw events on a scratch session, then replay them on a fresh one
/// under the recorder (frames before/after every event).
pub fn record_gold_demo(task: &TaskSpec) -> Recording {
    let mut scratch = task.launch();
    let events = realize_events(&mut scratch, &task.gold_trace.actions)
        .expect("gold traces are verified executable");
    let mut session = task.launch();
    record(&mut session, &task.intent, events)
}

/// Degrade an action log the way real OS-level recorders do: with
/// probability [`calibration::ACT_LOG_DROPOUT_P`] an entry loses its
/// accessibility target text (the raw click survives, its semantics do
/// not).
pub fn degrade_log<R: Rng>(recording: &Recording, rng: &mut R) -> Recording {
    let mut out = recording.clone();
    for entry in &mut out.log {
        if entry.target_text.is_some() && rng.gen_bool(calibration::ACT_LOG_DROPOUT_P) {
            entry.target_text = None;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_sites::all_tasks;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gold_demo_records_full_trace() {
        let task = &all_tasks()[0];
        let rec = record_gold_demo(task);
        assert!(rec.num_actions() >= task.gold_trace.len());
        assert_eq!(rec.workflow_description, task.intent);
        assert_eq!(rec.frames.len(), rec.log.len() + 1);
        // The demo ends in the success state.
        let mut check = task.launch();
        for entry in &rec.log {
            check.dispatch(entry.event.clone());
        }
        assert!(task.success.evaluate(&check), "replaying the log succeeds");
    }

    #[test]
    fn degrade_drops_some_targets() {
        let task = &all_tasks()[1];
        let rec = record_gold_demo(task);
        let with_targets = rec.log.iter().filter(|e| e.target_text.is_some()).count();
        let mut dropped_any = false;
        for seed in 0..20 {
            let mut r = StdRng::seed_from_u64(seed);
            let deg = degrade_log(&rec, &mut r);
            let after = deg.log.iter().filter(|e| e.target_text.is_some()).count();
            assert!(after <= with_targets);
            if after < with_targets {
                dropped_any = true;
            }
        }
        assert!(dropped_any, "dropout fires across seeds");
    }

    #[test]
    fn levels_enumerate_in_table_order() {
        let labels: Vec<_> = EvidenceLevel::all().iter().map(|l| l.label()).collect();
        assert_eq!(labels, vec!["WD", "WD+KF", "WD+KF+ACT"]);
    }
}

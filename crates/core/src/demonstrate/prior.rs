//! The WD-only procedure prior: what a frontier FM "knows" about standard
//! enterprise web applications from pretraining.
//!
//! Table 1's WD row shows GPT-4 writing usable-but-flawed SOPs from the
//! one-line workflow description alone (precision 0.75 / recall 0.81,
//! ~3.6 hallucinated steps, inflated length). This module reproduces that
//! behaviour: it parses the intent into facts, routes it to an idiomatic
//! procedure template (GitLab-style tracker, Magento-style admin, generic
//! form app), and pads the result with the boilerplate a model recites
//! when it is guessing (log-in steps, dropdown selections, verification
//! steps).

use rand::Rng;

use crate::calibration;

/// Facts extractable from a workflow description.
#[derive(Debug, Clone, Default)]
pub struct IntentFacts {
    /// Single-quoted strings, in order of appearance.
    pub quoted: Vec<String>,
    /// "... in the X project" / "the X project".
    pub project: Option<String>,
    /// "with label X" / "the label 'X'".
    pub label: Option<String>,
    /// "assigned to X".
    pub assignee: Option<String>,
    /// "#1234" / "order number 1234".
    pub order_id: Option<String>,
    /// "SKU X" / "(SKU X)".
    pub sku: Option<String>,
    /// "$X".
    pub amount: Option<String>,
    /// "quantity X" (or "to zero" → "0").
    pub quantity: Option<String>,
    /// The word "confidential" appears.
    pub confidential: bool,
    /// Lower-cased description for keyword routing.
    pub lower: String,
}

/// Extract facts from a workflow description.
pub fn parse_intent(intent: &str) -> IntentFacts {
    let mut facts = IntentFacts {
        lower: intent.to_lowercase(),
        ..Default::default()
    };
    // Single-quoted strings.
    let mut rest = intent;
    while let Some(start) = rest.find('\'') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('\'') else { break };
        facts.quoted.push(tail[..end].to_string());
        rest = &tail[end + 1..];
    }
    facts.confidential = facts.lower.contains("confidential");
    facts.project = capture_after(intent, "in the ", " project")
        .or_else(|| capture_after(intent, "of the ", " project"))
        .or_else(|| capture_before_word(intent, " project"));
    facts.label = capture_word_after(intent, "with label ")
        .or_else(|| capture_after(intent, "the label '", "'"));
    facts.assignee = capture_word_after(intent, "assigned to ");
    facts.order_id = capture_word_after(intent, "order #")
        .or_else(|| capture_word_after(intent, "order number "))
        .map(|s| s.trim_start_matches('#').to_string());
    facts.sku =
        capture_word_after(intent, "SKU ").map(|s| s.trim_end_matches([')', ',', '.']).to_string());
    facts.amount = capture_word_after(intent, "$");
    facts.quantity = capture_word_after(intent, "quantity ").or_else(|| {
        if facts.lower.contains("to zero") {
            Some("0".into())
        } else {
            None
        }
    });
    facts
}

fn capture_after(text: &str, prefix: &str, suffix: &str) -> Option<String> {
    let start = text.find(prefix)? + prefix.len();
    let rest = &text[start..];
    let end = rest.find(suffix)?;
    let got = rest[..end].trim();
    (!got.is_empty()).then(|| got.to_string())
}

fn capture_word_after(text: &str, prefix: &str) -> Option<String> {
    let start = text.find(prefix)? + prefix.len();
    let word: String = text[start..]
        .chars()
        .take_while(|c| !c.is_whitespace())
        .collect();
    let word = word
        .trim_end_matches(|c: char| ",.;)".contains(c))
        .to_string();
    (!word.is_empty()).then_some(word)
}

fn capture_before_word(text: &str, marker: &str) -> Option<String> {
    let pos = text.find(marker)?;
    let head = &text[..pos];
    head.split_whitespace().last().map(|w| w.to_string())
}

/// The boilerplate a model recites when guessing blind. Drawn with
/// probability [`calibration::WD_PRIOR_BOILERPLATE_P`] each.
pub const BOILERPLATE: [&str; calibration::WD_PRIOR_BOILERPLATE_POOL] = [
    "Log in with your administrator credentials",
    "Select the correct workspace from the dropdown at the top",
    "Review the permissions settings before continuing",
    "Refresh the page to make sure the latest data is loaded",
    "Verify that a confirmation email was sent",
    "Click the notifications icon to check for alerts",
];

/// Substantive step guesses for an intent (before boilerplate padding).
pub fn substantive_steps(intent: &str) -> Vec<String> {
    let f = parse_intent(intent);
    let l = &f.lower;
    if l.contains("issue") {
        gitlab_issue_steps(&f)
    } else if l.contains("merge request") {
        gitlab_mr_steps(&f)
    } else if l.contains("invite") || l.contains("member") {
        gitlab_member_steps(&f)
    } else if l.contains("profile") {
        vec![
            "Click the 'Profile' link in the navigation bar".into(),
            format!(
                "Type \"{}\" into the Status message field",
                f.quoted
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "your status".into())
            ),
            "Click the 'Update profile' button".into(),
        ]
    } else if l.contains("archive") {
        vec![
            format!(
                "Click the '{}' project link",
                f.project.clone().unwrap_or_else(|| "target".into())
            ),
            "Click the 'Settings' tab".into(),
            "Click the 'Archive project' button".into(),
            "Click the 'Archive' button in the confirmation dialog".into(),
        ]
    } else if l.contains("visibility") || (l.contains("rename") && l.contains("project")) {
        gitlab_settings_steps(&f)
    } else if l.contains("order") {
        magento_order_steps(&f)
    } else if l.contains("product") || l.contains("catalog") || l.contains("stock") {
        magento_product_steps(&f)
    } else if l.contains("eligibility") {
        vec![
            "Type the member ID into the Member ID field".into(),
            "Type the date of birth into the Date of birth field".into(),
            "Select the payer from the Payer dropdown".into(),
            "Click the 'Check eligibility' button".into(),
        ]
    } else if l.contains("invoice") || l.contains("contract") {
        vec![
            "Open the document from the contract inbox".into(),
            "Click the 'Enter invoice' button".into(),
            "Select the customer from the Customer dropdown".into(),
            "Type the contract amount into the Amount field".into(),
            "Type the PO number into the PO number field".into(),
            "Click the 'Save invoice' button".into(),
        ]
    } else {
        vec![
            "Navigate to the relevant page of the application".into(),
            "Locate the record mentioned in the task".into(),
            "Fill in the required fields with the requested values".into(),
            "Click the 'Save' button".into(),
            "Verify the confirmation message".into(),
        ]
    }
}

fn project_step(f: &IntentFacts) -> String {
    format!(
        "Click the '{}' project link",
        f.project.clone().unwrap_or_else(|| "target".into())
    )
}

fn gitlab_issue_steps(f: &IntentFacts) -> Vec<String> {
    let l = &f.lower;
    let mut steps = vec![project_step(f), "Click the 'Issues' tab".into()];
    if l.contains("create an issue") || l.contains("create a confidential issue") {
        steps.push("Click the 'New issue' button".into());
        let title = f
            .quoted
            .first()
            .cloned()
            .unwrap_or_else(|| "the title".into());
        steps.push(format!("Type \"{title}\" into the Title field"));
        // The prior cannot know the body text — a generic step that will
        // not match the gold description step.
        steps.push("Type a short summary of the problem into the Description field".into());
        if let Some(label) = &f.label {
            steps.push(format!("Select '{label}' from the Label dropdown"));
        }
        if let Some(a) = &f.assignee {
            steps.push(format!("Select '{a}' from the Assignee dropdown"));
        }
        if f.confidential {
            steps.push("Check the 'This issue is confidential' checkbox".into());
        }
        steps.push("Click the 'Create issue' button".into());
    } else {
        let issue = f
            .quoted
            .first()
            .cloned()
            .unwrap_or_else(|| "the issue".into());
        steps.push(format!("Click the '{issue}' issue link"));
        if l.contains("close") {
            steps.push("Click the 'Close issue' button".into());
        } else if l.contains("label") {
            let label = f
                .label
                .clone()
                .or_else(|| f.quoted.first().cloned())
                .unwrap_or_else(|| "the label".into());
            steps.push(format!("Select '{label}' from the label dropdown"));
            steps.push("Click the 'Add label' button".into());
        } else if l.contains("rename") {
            let new = f
                .quoted
                .get(1)
                .cloned()
                .unwrap_or_else(|| "the new title".into());
            steps.push(format!("Type \"{new}\" into the New title field"));
            steps.push("Click the 'Save title' button".into());
        } else if l.contains("comment") {
            let c = f
                .quoted
                .first()
                .cloned()
                .unwrap_or_else(|| "the comment".into());
            // The first quoted string in comment intents is the comment;
            // the issue title is the second — the prior can confuse them.
            let issue2 = f.quoted.get(1).cloned().unwrap_or(issue);
            steps[2] = format!("Click the '{issue2}' issue link");
            steps.push(format!("Type \"{c}\" into the Comment field"));
            steps.push("Click the 'Comment' button".into());
        }
    }
    steps
}

fn gitlab_mr_steps(f: &IntentFacts) -> Vec<String> {
    let mr = f
        .quoted
        .first()
        .cloned()
        .unwrap_or_else(|| "the merge request".into());
    let mut steps = vec![
        project_step(f),
        "Click the 'Merge requests' tab".into(),
        format!("Click the '{mr}' merge request link"),
    ];
    if f.lower.contains("merge the") {
        steps.push("Click the 'Merge' button".into());
    } else {
        steps.push("Click the 'Close merge request' button".into());
    }
    steps
}

fn gitlab_member_steps(f: &IntentFacts) -> Vec<String> {
    let mut steps = vec![project_step(f), "Click the 'Members' tab".into()];
    if f.lower.contains("remove") {
        let user = f
            .lower
            .split_whitespace()
            .nth(1)
            .unwrap_or("the user")
            .to_string();
        steps.push(format!("Click the 'Remove' link in {user}'s row"));
    } else {
        let user = capture_word_after(&f.lower, "invite ").unwrap_or_else(|| "the user".into());
        steps.push(format!("Type \"{user}\" into the Username field"));
        let role = capture_word_after(&f.lower, "as a ")
            .map(|r| {
                let mut c = r.chars();
                c.next()
                    .map(|f| f.to_uppercase().collect::<String>() + c.as_str())
                    .unwrap_or(r)
            })
            .unwrap_or_else(|| "Developer".into());
        steps.push(format!("Select '{role}' from the role dropdown"));
        steps.push("Click the 'Invite member' button".into());
    }
    steps
}

fn gitlab_settings_steps(f: &IntentFacts) -> Vec<String> {
    let mut steps = vec![project_step(f), "Click the 'Settings' tab".into()];
    if f.lower.contains("rename") {
        let new = f
            .quoted
            .get(1)
            .cloned()
            .unwrap_or_else(|| "the new name".into());
        // Intent names the project in quotes; project_step above may have
        // guessed wrong — fix it up when the first quote looks like a name.
        if let Some(old) = f.quoted.first() {
            steps[0] = format!("Click the '{old}' project link");
        }
        steps.push(format!("Set the Project name field to \"{new}\""));
    } else if let Some(vis) = capture_word_after(&f.lower, "to ") {
        steps.push(format!("Select '{vis}' from the Visibility dropdown"));
    }
    steps.push("Click the 'Save changes' button".into());
    steps
}

fn magento_order_steps(f: &IntentFacts) -> Vec<String> {
    let order = f.order_id.clone().unwrap_or_else(|| "the order".into());
    let mut steps = vec![
        "Click the 'Orders' link in the navigation bar".into(),
        format!("Click the '#{order}' order link"),
    ];
    let l = &f.lower;
    if l.contains("comment") {
        let c = f
            .quoted
            .first()
            .cloned()
            .unwrap_or_else(|| "the note".into());
        steps.push(format!("Type \"{c}\" into the Comment field"));
        steps.push("Click the 'Submit comment' button".into());
    }
    if l.contains("ship") {
        steps.push("Click the 'Ship' button".into());
    }
    if l.contains("cancel") {
        steps.push("Click the 'Cancel order' button".into());
        steps.push("Click the 'OK' button in the confirmation dialog".into());
    }
    steps
}

fn magento_product_steps(f: &IntentFacts) -> Vec<String> {
    let l = &f.lower;
    let mut steps = vec!["Click the 'Catalog' link in the navigation bar".into()];
    if l.contains("add a ") && l.contains("product") {
        steps.push("Click the 'Add product' button".into());
        let name = f
            .quoted
            .first()
            .cloned()
            .unwrap_or_else(|| "the product".into());
        steps.push(format!("Type \"{name}\" into the Product name field"));
        if let Some(sku) = &f.sku {
            steps.push(format!("Type \"{sku}\" into the SKU field"));
        }
        if let Some(p) = &f.amount {
            steps.push(format!("Type \"{p}\" into the Price field"));
        }
        if let Some(q) = &f.quantity {
            steps.push(format!("Type \"{q}\" into the Quantity field"));
        }
        if l.contains("disabled") {
            steps.push("Select 'Disabled' from the Enable product dropdown".into());
        }
        steps.push("Click the 'Save' button".into());
        return steps;
    }
    if l.contains("search the catalog") {
        let q = f.quoted.first().cloned().unwrap_or_default();
        steps.push(format!("Type \"{q}\" into the search field"));
        steps.push("Click the 'Search' button".into());
        steps.push("Click the matching product link".into());
        return steps;
    }
    // Edit an existing product.
    let product = f
        .quoted
        .first()
        .cloned()
        .or_else(|| guess_product_name(l))
        .unwrap_or_else(|| "the product".into());
    steps.push(format!("Click the '{product}' product link"));
    if l.contains("price") {
        let p = f.amount.clone().unwrap_or_else(|| "the new price".into());
        steps.push(format!("Set the Price field to \"{p}\""));
    }
    if l.contains("quantity") || l.contains("stock") {
        let q = f.quantity.clone().unwrap_or_else(|| "0".into());
        steps.push(format!("Set the Quantity field to \"{q}\""));
    }
    if l.contains("rename") {
        let new = f
            .quoted
            .get(1)
            .cloned()
            .unwrap_or_else(|| "the new name".into());
        steps.push(format!("Set the Product name field to \"{new}\""));
    }
    if l.contains("disable") {
        steps.push("Select 'Disabled' from the Enable product dropdown".into());
    }
    steps.push("Click the 'Save' button".into());
    steps
}

fn guess_product_name(lower: &str) -> Option<String> {
    // "update the price of the quest lumaflex band (sku pg004)" — take the
    // words between "the ... (" and title-case them crudely.
    let start = lower
        .find("of the ")
        .map(|i| i + 7)
        .or_else(|| lower.find("disable the ").map(|i| i + "disable the ".len()))?;
    let rest = &lower[start..];
    let end = rest.find(" (")?;
    let name = &rest[..end];
    Some(
        name.split_whitespace()
            .map(|w| {
                let mut c = w.chars();
                match c.next() {
                    Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                    None => String::new(),
                }
            })
            .collect::<Vec<_>>()
            .join(" "),
    )
}

/// Pad substantive steps with boilerplate and verification chatter, the way
/// a model padding out an answer does. Returns the full WD-only step list.
pub fn padded_steps<R: Rng>(intent: &str, hallucination_rate: f64, rng: &mut R) -> Vec<String> {
    let core = substantive_steps(intent);
    let mut out: Vec<String> = Vec::with_capacity(core.len() * 2);
    // Leading boilerplate.
    for b in BOILERPLATE.iter().take(3) {
        if rng.gen_bool(calibration::WD_PRIOR_BOILERPLATE_P * hallucination_rate.max(0.2) * 2.0) {
            out.push(b.to_string());
        }
    }
    for (i, step) in core.iter().enumerate() {
        // The prior guesses button captions; final submit controls often
        // get a generic name that does not exist on the real page.
        let is_final_submit = i + 1 == core.len() && step.starts_with("Click");
        if is_final_submit && rng.gen_bool(calibration::WD_PRIOR_GENERIC_SUBMIT_P) {
            out.push("Click the 'Submit' button".into());
        } else {
            out.push(step.clone());
        }
        // Interleaved boilerplate.
        if i + 1 < core.len()
            && rng.gen_bool(calibration::WD_PRIOR_BOILERPLATE_P * hallucination_rate)
        {
            let b = BOILERPLATE[rng.gen_range(0..BOILERPLATE.len())];
            if !out.iter().any(|s| s == b) {
                out.push(b.to_string());
            }
        }
        if rng.gen_bool(calibration::WD_PRIOR_VERIFY_P) {
            out.push(verification_step(step));
        }
    }
    out
}

fn verification_step(after: &str) -> String {
    if after.starts_with("Type") || after.starts_with("Set") {
        "Double-check the value you entered is correct".into()
    } else {
        "Wait for the page to finish loading".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parse_extracts_facts() {
        let f = parse_intent(
            "Create a confidential issue titled 'Rotate leaked API key' with label urgent assigned to frank.ops in the WebApp project",
        );
        assert_eq!(f.quoted, vec!["Rotate leaked API key"]);
        assert_eq!(f.project.as_deref(), Some("WebApp"));
        assert_eq!(f.label.as_deref(), Some("urgent"));
        assert_eq!(f.assignee.as_deref(), Some("frank.ops"));
        assert!(f.confidential);
    }

    #[test]
    fn parse_magento_facts() {
        let f = parse_intent("Update the price of the Quest Lumaflex Band (SKU PG004) to $17.25");
        assert_eq!(f.sku.as_deref(), Some("PG004"));
        assert_eq!(f.amount.as_deref(), Some("17.25"));
        let f2 = parse_intent(
            "Add a product named 'Foam Roller' with SKU 24-FR02 priced at $15.00 with quantity 25",
        );
        assert_eq!(f2.quantity.as_deref(), Some("25"));
        assert_eq!(f2.sku.as_deref(), Some("24-FR02"));
    }

    #[test]
    fn issue_template_covers_gold_shape() {
        let steps = substantive_steps(
            "Create an issue titled 'Login page broken on Safari' with label bug in the WebApp project",
        );
        assert!(steps.iter().any(|s| s.contains("'WebApp' project")));
        assert!(steps.iter().any(|s| s.contains("New issue")));
        assert!(steps
            .iter()
            .any(|s| s.contains("Login page broken on Safari")));
        assert!(steps.iter().any(|s| s.contains("'bug'")));
        assert!(steps.last().unwrap().contains("Create issue"));
    }

    #[test]
    fn order_template_handles_ship_and_cancel() {
        let steps = substantive_steps(
            "Ship order #1003 and leave the comment 'Expedited per support ticket'",
        );
        assert!(steps.iter().any(|s| s.contains("#1003")));
        assert!(steps.iter().any(|s| s.contains("Ship")));
        assert!(steps
            .iter()
            .any(|s| s.contains("Expedited per support ticket")));
        let cancel = substantive_steps("Cancel the pending order number 1004");
        assert!(cancel.iter().any(|s| s.contains("Cancel order")));
        assert!(cancel.iter().any(|s| s.contains("confirmation dialog")));
    }

    #[test]
    fn padding_inflates_length_with_boilerplate() {
        let intent = "Create an issue titled 'X problem' with label bug in the WebApp project";
        let core_len = substantive_steps(intent).len();
        let mut total = 0usize;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            total += padded_steps(intent, 0.26, &mut rng).len();
        }
        let avg = total as f64 / 20.0;
        assert!(
            avg > core_len as f64 + 1.0,
            "padding should inflate: core {core_len}, avg {avg}"
        );
    }

    #[test]
    fn generic_fallback_for_unknown_intents() {
        let steps = substantive_steps("Reticulate the splines in the frobnicator");
        assert!(steps.len() >= 4);
        assert!(steps.iter().any(|s| s.contains("Save")));
    }
}

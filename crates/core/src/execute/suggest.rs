//! Next-action suggestion (Table 2).
//!
//! At each step the model is given the workflow description, the action
//! history, the current screen, and — in the ablated condition — the SOP.
//! With an SOP it *follows* (parse the current step, keep its place, skip
//! non-actionable chatter); without one it *plans* from its procedure prior
//! and improvises, which is where accuracy is lost.

use eclair_fm::FmModel;
use eclair_gui::Screenshot;
use eclair_workflow::Sop;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::calibration;
use crate::demonstrate::prior;
use crate::execute::parse::{parse_step, StepIntent};

/// The model's next-step decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Suggestion {
    /// Perform this intent. The `String` carries the step text the model
    /// believes it is executing (for logs and equivalence scoring).
    Act(StepIntent, String),
    /// The workflow is complete (or nothing remains to do).
    Done,
}

/// Mutable suggestion state carried across a run: the plan (for the no-SOP
/// condition) and the follower position.
#[derive(Debug, Clone)]
pub struct SuggestState {
    /// Current position in the SOP / plan.
    pub pos: usize,
    /// The improvised plan (no-SOP condition), lazily built.
    plan: Option<Vec<String>>,
}

impl SuggestState {
    /// Fresh state at the beginning of a run.
    pub fn new() -> Self {
        Self { pos: 0, plan: None }
    }

    /// Start from a known position (teacher-forced evaluation).
    pub fn at(pos: usize) -> Self {
        Self { pos, plan: None }
    }
}

impl Default for SuggestState {
    fn default() -> Self {
        Self::new()
    }
}

/// Suggest the next action.
///
/// * `sop` — present in the with-SOP condition.
/// * `state` — the follower/planner position (advanced on return).
/// * `history` — texts of the steps already executed (the paper's "ground
///   truth history of actions" in the teacher-forced evaluation; the
///   agent's own log when autonomous).
/// * `shot` — the current screen (used to judge completion and to improvise
///   in the no-SOP condition).
pub fn suggest_next(
    model: &mut FmModel,
    workflow_description: &str,
    sop: Option<&Sop>,
    state: &mut SuggestState,
    history: &[String],
    shot: &Screenshot,
) -> Suggestion {
    match sop {
        Some(sop) => follow_sop(model, sop, state),
        None => improvise(model, workflow_description, state, history, shot),
    }
}

fn follow_sop(model: &mut FmModel, sop: &Sop, state: &mut SuggestState) -> Suggestion {
    loop {
        if state.pos >= sop.len() {
            return Suggestion::Done;
        }
        let step = &sop.steps[state.pos];
        // Place-keeping slips: the model loses its position and skips a
        // step — more readily when neighbouring steps look alike.
        let mut slip_p = model.profile().tracking_noise;
        if state.pos + 1 < sop.len() {
            let next = &sop.steps[state.pos + 1];
            if eclair_workflow::matcher::step_similarity(&step.text, &next.text) > 0.4 {
                slip_p *= 2.0;
            }
        }
        if state.pos + 1 < sop.len() && model.rng().gen_bool(slip_p.min(0.5)) {
            state.pos += 1; // skipped a step silently
            continue;
        }
        state.pos += 1;
        let intent = parse_step(&step.text);
        if matches!(intent, StepIntent::Unknown(_)) {
            // Non-actionable chatter ("Wait for the page to load"): the
            // model correctly skips it.
            continue;
        }
        return Suggestion::Act(intent, step.text.clone());
    }
}

fn improvise(
    model: &mut FmModel,
    wd: &str,
    state: &mut SuggestState,
    history: &[String],
    shot: &Screenshot,
) -> Suggestion {
    if state.plan.is_none() {
        // Without an SOP the model plans from its WD prior — the same
        // (flawed) procedure knowledge that writes the Table 1 WD row,
        // boilerplate hallucinations included.
        let rate = model.profile().hallucination_rate;
        let plan = prior::padded_steps(wd, rate, model.rng());
        state.plan = Some(plan);
    }
    let plan = state.plan.as_ref().expect("plan just initialized").clone();
    // Re-localize against what has already happened: advance a pointer
    // through the plan past steps the history covers (the model reasons
    // "we already did X and Y, so next is Z").
    let mut ptr = 0usize;
    for done in history {
        let mut j = ptr;
        while j < plan.len() {
            if eclair_workflow::matcher::steps_match(done, &plan[j]) {
                ptr = j + 1;
                break;
            }
            j += 1;
        }
    }
    state.pos = state.pos.max(ptr);
    if state.pos >= plan.len() {
        return Suggestion::Done;
    }
    // Spurious exploration: without written guidance the model sometimes
    // chases something salient on screen instead of the plan.
    if model.rng().gen_bool(calibration::NOSOP_SPURIOUS_STEP_P) {
        let percept = model.perceive(shot);
        let clickables: Vec<String> = percept
            .interactive()
            .filter(|e| !e.text.is_empty())
            .map(|e| e.text.clone())
            .collect();
        if !clickables.is_empty() {
            let i = model.rng().gen_range(0..clickables.len());
            let text = format!("Click the '{}'", clickables[i]);
            // Note: the plan position does NOT advance — the model wanders.
            return Suggestion::Act(parse_step(&text), text);
        }
    }
    let step = plan[state.pos].clone();
    state.pos += 1;
    let intent = parse_step(&step);
    if matches!(intent, StepIntent::Unknown(_)) {
        return improvise(model, wd, state, history, shot);
    }
    Suggestion::Act(intent, step)
}

/// Canonical text for an intent (used when scoring suggestion equivalence
/// against the gold step).
pub fn intent_text(intent: &StepIntent) -> String {
    match intent {
        StepIntent::Click { target } => format!("Click the '{target}'"),
        StepIntent::Type {
            value,
            field: Some(f),
        } => format!("Type \"{value}\" into the {f} field"),
        StepIntent::Type { value, field: None } => format!("Type \"{value}\""),
        StepIntent::Set { field, value } => format!("Set the {field} field to \"{value}\""),
        StepIntent::Select { option, field } => {
            format!("Select '{option}' from the {field} dropdown")
        }
        StepIntent::Check { target } => format!("Check the '{target}' checkbox"),
        StepIntent::Press(k) => format!("Press {}", k.name()),
        StepIntent::Scroll { down: true } => "Scroll down".into(),
        StepIntent::Scroll { down: false } => "Scroll up".into(),
        StepIntent::ClickPoint(p) => format!("Click at ({}, {})", p.x, p.y),
        StepIntent::TypeAt { point, value } => {
            format!(
                "Type \"{value}\" into the field at ({}, {})",
                point.x, point.y
            )
        }
        StepIntent::Unknown(t) => t.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_fm::ModelProfile;
    use eclair_sites::all_tasks;
    use eclair_workflow::matcher::steps_match;

    fn blank_shot() -> Screenshot {
        let mut b = eclair_gui::PageBuilder::new("t", "/t");
        b.heading(1, "Anything");
        b.button("x", "Go");
        b.finish().screenshot_at(0)
    }

    #[test]
    fn sop_follower_walks_the_steps_in_order_with_oracle() {
        let task = &all_tasks()[0];
        let mut model = FmModel::new(ModelProfile::oracle(), 1);
        let mut state = SuggestState::new();
        let shot = blank_shot();
        let mut seen = Vec::new();
        while let Suggestion::Act(_, text) = suggest_next(
            &mut model,
            &task.intent,
            Some(&task.gold_sop),
            &mut state,
            &[],
            &shot,
        ) {
            seen.push(text);
        }
        assert_eq!(seen.len(), task.gold_sop.len(), "oracle follows every step");
        for (got, want) in seen.iter().zip(&task.gold_sop.steps) {
            assert_eq!(got, &want.text);
        }
    }

    #[test]
    fn teacher_forced_suggestions_mostly_match_gold() {
        // The Table 2 measurement shape: with the SOP, per-step suggestion
        // accuracy is high but not perfect.
        let tasks = all_tasks();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (ti, task) in tasks.iter().enumerate() {
            let mut model = FmModel::new(ModelProfile::gpt4v(), ti as u64);
            let shot = blank_shot();
            for k in 0..task.gold_sop.len() {
                let mut state = SuggestState::at(k);
                let history: Vec<String> = task.gold_sop.steps[..k]
                    .iter()
                    .map(|s| s.text.clone())
                    .collect();
                if let Suggestion::Act(_, text) = suggest_next(
                    &mut model,
                    &task.intent,
                    Some(&task.gold_sop),
                    &mut state,
                    &history,
                    &shot,
                ) {
                    total += 1;
                    if steps_match(&text, &task.gold_sop.steps[k].text) {
                        correct += 1;
                    }
                } else {
                    total += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(
            (0.82..=1.0).contains(&acc),
            "with-SOP suggestion accuracy near paper's 0.92: {acc:.2}"
        );
    }

    #[test]
    fn no_sop_planner_is_worse_but_not_useless() {
        let tasks = all_tasks();
        let mut correct = 0usize;
        let mut total = 0usize;
        for (ti, task) in tasks.iter().enumerate() {
            let mut model = FmModel::new(ModelProfile::gpt4v(), 1000 + ti as u64);
            let shot = blank_shot();
            for k in 0..task.gold_sop.len() {
                let mut state = SuggestState::at(k);
                total += 1;
                let history: Vec<String> = task.gold_sop.steps[..k]
                    .iter()
                    .map(|s| s.text.clone())
                    .collect();
                if let Suggestion::Act(_, text) =
                    suggest_next(&mut model, &task.intent, None, &mut state, &history, &shot)
                {
                    if steps_match(&text, &task.gold_sop.steps[k].text) {
                        correct += 1;
                    }
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(
            (0.55..=0.95).contains(&acc),
            "no-SOP accuracy should be clearly lower (paper: 0.83): {acc:.2}"
        );
    }

    #[test]
    fn done_when_sop_exhausted() {
        let task = &all_tasks()[2];
        let mut model = FmModel::new(ModelProfile::oracle(), 2);
        let mut state = SuggestState::at(task.gold_sop.len());
        let s = suggest_next(
            &mut model,
            &task.intent,
            Some(&task.gold_sop),
            &mut state,
            &[],
            &blank_shot(),
        );
        assert_eq!(s, Suggestion::Done);
    }

    #[test]
    fn intent_text_round_trips_through_parser() {
        for text in [
            "Click the 'New issue'",
            "Type \"hello\" into the Title field",
            "Select 'bug' from the Label dropdown",
            "Set the Price field to \"17.25\"",
            "Check the 'Confidential' checkbox",
            "Press Enter",
        ] {
            let intent = parse_step(text);
            let rendered = intent_text(&intent);
            let reparsed = parse_step(&rendered);
            assert_eq!(intent, reparsed, "{text}");
        }
    }
}

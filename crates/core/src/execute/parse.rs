//! Parsing SOP step text into structured intents.
//!
//! SOP steps are natural language; before an agent can act on one it must
//! recover the *intent*: the interaction verb, the target phrase, and any
//! value to enter. The grammar accepted here covers how humans (and our
//! generators) phrase steps; anything else degrades to
//! [`StepIntent::Unknown`], which the executor treats as a step it must
//! improvise — one of the decomposition failure modes.

use eclair_gui::{Key, Point};
use serde::{Deserialize, Serialize};

/// A structured reading of one SOP step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StepIntent {
    /// Click something described by `target`.
    Click { target: String },
    /// Type `value`, into the field described by `field` when known.
    Type {
        value: String,
        field: Option<String>,
    },
    /// Clear the field and enter `value`.
    Set { field: String, value: String },
    /// Choose `option` from the dropdown described by `field`.
    Select { option: String, field: String },
    /// Toggle the checkbox described by `target`.
    Check { target: String },
    /// Press a key.
    Press(Key),
    /// Scroll the page.
    Scroll { down: bool },
    /// Click at literal coordinates (action logs sometimes only have
    /// these when the recorder lost accessibility metadata).
    ClickPoint(Point),
    /// Focus the field at literal coordinates, then type.
    TypeAt { point: Point, value: String },
    /// Unparseable — the agent will have to improvise.
    Unknown(String),
}

impl StepIntent {
    /// A short description of the element this intent must locate, used as
    /// the grounding query ("the 'New issue' button", "the Title field").
    pub fn grounding_query(&self) -> Option<String> {
        match self {
            StepIntent::Click { target } => Some(target.clone()),
            StepIntent::Type { field: Some(f), .. } => Some(format!("the {f} field")),
            StepIntent::Type { field: None, .. } => None,
            StepIntent::Set { field, .. } => Some(format!("the {field} field")),
            StepIntent::Select { field, .. } => Some(format!("the {field} dropdown")),
            StepIntent::Check { target } => Some(target.clone()),
            _ => None,
        }
    }
}

/// Parse a "(x, y)" coordinate suffix.
fn coord_suffix(text: &str) -> Option<Point> {
    let open = text.rfind('(')?;
    let close = text[open..].find(')')? + open;
    let inner = &text[open + 1..close];
    let mut parts = inner.split(',');
    let x: i32 = parts.next()?.trim().parse().ok()?;
    let y: i32 = parts.next()?.trim().parse().ok()?;
    Some(Point::new(x, y))
}

fn first_quoted(text: &str, quote: char) -> Option<String> {
    let start = text.find(quote)?;
    let rest = &text[start + 1..];
    let end = rest.find(quote)?;
    Some(rest[..end].to_string())
}

fn after_keyword<'a>(text: &'a str, kw: &str) -> Option<&'a str> {
    let pos = text.to_lowercase().find(kw)?;
    Some(text[pos + kw.len()..].trim())
}

fn strip_articles(s: &str) -> String {
    let s = s.trim();
    let s = s.strip_prefix("the ").unwrap_or(s);
    let s = s.strip_prefix("a ").unwrap_or(s);
    s.trim().to_string()
}

fn field_phrase(text: &str) -> Option<String> {
    // "... into the X field" / "... in the X field" / "the X field ..."
    for kw in ["into the ", "in the ", "the "] {
        if let Some(rest) = after_keyword(text, kw) {
            if let Some(end) = rest.to_lowercase().find(" field") {
                let cand = rest[..end].trim();
                if !cand.is_empty() && cand.len() < 60 {
                    return Some(cand.to_string());
                }
            }
        }
    }
    None
}

/// Parse one step.
pub fn parse_step(text: &str) -> StepIntent {
    let lower = text.to_lowercase();
    let lead_verb = lower
        .split_whitespace()
        .next()
        .unwrap_or("")
        .trim_matches(|c: char| !c.is_alphanumeric())
        .to_string();

    match lead_verb.as_str() {
        "press" | "hit" if lower.contains("enter") => return StepIntent::Press(Key::Enter),
        "press" | "hit" if lower.contains("escape") => return StepIntent::Press(Key::Escape),
        "press" | "hit" if lower.contains("tab") => return StepIntent::Press(Key::Tab),
        "scroll" => {
            return StepIntent::Scroll {
                down: !lower.contains("up"),
            }
        }
        _ => {}
    }

    // Select 'X' from the Y dropdown.
    if matches!(lead_verb.as_str(), "select" | "choose" | "pick") {
        if let Some(option) = first_quoted(text, '\'') {
            let field = after_keyword(text, "from the ")
                .map(|rest| {
                    rest.trim_end_matches('.')
                        .trim_end_matches(" dropdown")
                        .trim_end_matches(" drop-down")
                        .to_string()
                })
                .unwrap_or_else(|| "option".into());
            return StepIntent::Select {
                option,
                field: strip_articles(&field),
            };
        }
    }

    // Set the X field to "V".
    if lead_verb == "set" {
        if let (Some(field), Some(value)) = (field_phrase(text), first_quoted(text, '"')) {
            return StepIntent::Set { field, value };
        }
    }

    // Type "V" [into the X field] / [into the field at (x, y)].
    if matches!(
        lead_verb.as_str(),
        "type" | "enter" | "input" | "write" | "fill"
    ) {
        if let Some(value) = first_quoted(text, '"') {
            if lower.contains("field at (") {
                if let Some(point) = coord_suffix(text) {
                    return StepIntent::TypeAt { point, value };
                }
            }
            return StepIntent::Type {
                value,
                field: field_phrase(text),
            };
        }
        // Unquoted value ("Type the member ID into the Member ID field"):
        // the value itself is unknown — still a Type intent, but with the
        // placeholder text as its value (an honest failure source).
        if let Some(field) = field_phrase(text) {
            let value = after_keyword(text, "type ")
                .or_else(|| after_keyword(text, "enter "))
                .map(|r| r.split(" into ").next().unwrap_or(r).trim().to_string())
                .unwrap_or_default();
            return StepIntent::Type {
                value,
                field: Some(field),
            };
        }
    }

    // Check the '…' checkbox.
    if matches!(lead_verb.as_str(), "check" | "tick" | "toggle" | "enable") {
        let target = first_quoted(text, '\'')
            .or_else(|| {
                after_keyword(text, "check ")
                    .map(|r| strip_articles(r.trim_end_matches('.').trim_end_matches(" checkbox")))
            })
            .unwrap_or_else(|| text.to_string());
        return StepIntent::Check { target };
    }

    // Click / open / navigate: a click on something.
    if matches!(
        lead_verb.as_str(),
        "click" | "tap" | "open" | "go" | "navigate" | "visit" | "push"
    ) {
        if lower.starts_with("click at (") {
            if let Some(point) = coord_suffix(text) {
                return StepIntent::ClickPoint(point);
            }
        }
        // Prefer the quoted anchor; fall back to "the X field" (focus
        // clicks) then the whole tail.
        if let Some(q) = first_quoted(text, '\'') {
            return StepIntent::Click { target: q };
        }
        if let Some(field) = field_phrase(text) {
            return StepIntent::Click { target: field };
        }
        let tail = text
            .split_once(' ')
            .map(|x| x.1)
            .map(|t| strip_articles(t.trim_end_matches('.')))
            .unwrap_or_default();
        if !tail.is_empty() {
            return StepIntent::Click { target: tail };
        }
    }

    StepIntent::Unknown(text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_click_with_quotes() {
        assert_eq!(
            parse_step("Click the 'New issue' button"),
            StepIntent::Click {
                target: "New issue".into()
            }
        );
        assert_eq!(
            parse_step("Open the 'WebApp' project link"),
            StepIntent::Click {
                target: "WebApp".into()
            }
        );
    }

    #[test]
    fn parses_type_into_field() {
        assert_eq!(
            parse_step("Type \"Login broken\" into the Title field"),
            StepIntent::Type {
                value: "Login broken".into(),
                field: Some("Title".into())
            }
        );
        assert_eq!(
            parse_step("Type \"free text\""),
            StepIntent::Type {
                value: "free text".into(),
                field: None
            }
        );
    }

    #[test]
    fn parses_set_and_select() {
        assert_eq!(
            parse_step("Set the Price field to \"17.25\""),
            StepIntent::Set {
                field: "Price".into(),
                value: "17.25".into()
            }
        );
        assert_eq!(
            parse_step("Select 'bug' from the Label dropdown"),
            StepIntent::Select {
                option: "bug".into(),
                field: "Label".into()
            }
        );
    }

    #[test]
    fn parses_check_press_scroll() {
        assert_eq!(
            parse_step("Check the 'This issue is confidential' checkbox"),
            StepIntent::Check {
                target: "This issue is confidential".into()
            }
        );
        assert_eq!(parse_step("Press Enter"), StepIntent::Press(Key::Enter));
        assert_eq!(
            parse_step("Scroll down to the bottom"),
            StepIntent::Scroll { down: true }
        );
        assert_eq!(parse_step("Scroll up"), StepIntent::Scroll { down: false });
    }

    #[test]
    fn unparseable_becomes_unknown() {
        assert!(matches!(
            parse_step("Double-check the value you entered is correct"),
            StepIntent::Check { .. } | StepIntent::Unknown(_)
        ));
        assert!(matches!(
            parse_step("Wait for the page to finish loading"),
            StepIntent::Unknown(_)
        ));
    }

    #[test]
    fn grounding_queries() {
        assert_eq!(
            parse_step("Type \"x\" into the Title field").grounding_query(),
            Some("the Title field".into())
        );
        assert_eq!(
            parse_step("Click the 'Save' button").grounding_query(),
            Some("Save".into())
        );
        assert_eq!(parse_step("Press Enter").grounding_query(), None);
    }

    #[test]
    fn gold_sop_round_trip_parses_cleanly() {
        // Every step of every gold SOP must parse to a non-Unknown intent.
        for task in eclair_sites::all_tasks() {
            for step in &task.gold_sop.steps {
                let intent = parse_step(&step.text);
                assert!(
                    !matches!(intent, StepIntent::Unknown(_)),
                    "{}: unparseable gold step: {}",
                    task.id,
                    step.text
                );
            }
        }
    }
}

//! Stage 2 — **Execute** (paper §4.2).
//!
//! Each step of execution has two phases the paper measures separately:
//! **action suggestion** — deciding *what* to do next from the current
//! screen, the history, and (optionally) an SOP — and **action grounding**
//! — translating the suggestion into actual clicks and keystrokes at pixel
//! coordinates.
//!
//! * [`parse`] — turn an SOP step's text into a structured intent;
//! * [`suggest`] — next-action suggestion, with and without SOP guidance
//!   (Table 2's ablation);
//! * [`ground`] — the grounding strategies of Table 3 (raw bbox emission,
//!   set-of-marks over detector or HTML boxes, GUI-tuned native);
//! * [`executor`] — the autonomous loop: observe → suggest → ground →
//!   actuate → (optionally) validate and recover;
//! * [`fallback`] — the step-scoped repair entry point the hybrid
//!   executor (`eclair-hybrid`) calls when a compiled bot step drifts:
//!   FM-ground one query, dispatch one operation, report the landed
//!   anchor for recompilation.

pub mod executor;
pub mod fallback;
pub mod ground;
pub mod parse;
pub mod suggest;

pub use executor::{click_at, relogin_if_expired, run_task, ExecConfig, RunResult};
pub use fallback::{repair_step, RepairedAnchor};
pub use ground::GroundingStrategy;
pub use parse::{parse_step, StepIntent};
pub use suggest::{suggest_next, Suggestion};

//! Action grounding strategies (Table 3).
//!
//! Given a natural-language element query and the current frame, produce a
//! click point. Three pipelines:
//!
//! * [`GroundingStrategy::Native`] — the model emits a bounding box
//!   directly (Table 3's "–" bbox source; GPT-4 is poor at this, CogAgent
//!   good);
//! * [`GroundingStrategy::SomYolo`] — set-of-marks over boxes from the
//!   simulated YOLO-NAS detector;
//! * [`GroundingStrategy::SomHtml`] — set-of-marks over ground-truth HTML
//!   boxes (needs DOM access; unavailable for "native desktop and
//!   virtualized software", which is why the paper cares about the other
//!   two).
//!
//! Field queries ("the Title field") are resolved through **caption
//! association**: input candidates borrow the text of the nearest caption
//! above/left of them, since the box itself shows only a placeholder.

use eclair_fm::ground::GroundingOutcome;
use eclair_fm::FmModel;
use eclair_gui::{Page, Point, Rect, Screenshot, VisualClass};
use eclair_vision::detector::YoloNasSim;
use eclair_vision::marks::{marks_from_html, marks_via_detector, Mark};
use serde::{Deserialize, Serialize};

/// Which grounding pipeline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroundingStrategy {
    /// Model emits a bbox from raw pixels.
    Native,
    /// Set-of-marks over detector boxes.
    SomYolo,
    /// Set-of-marks over ground-truth HTML boxes.
    SomHtml,
}

impl GroundingStrategy {
    /// Paper column label.
    pub fn label(&self) -> &'static str {
        match self {
            GroundingStrategy::Native => "-",
            GroundingStrategy::SomYolo => "YOLO",
            GroundingStrategy::SomHtml => "HTML",
        }
    }
}

/// What the grounder may look at: always the frame; the live page only for
/// the HTML strategy (DOM access).
pub struct GroundView<'a> {
    /// The current frame.
    pub shot: &'a Screenshot,
    /// The live page, when the environment exposes a DOM.
    pub page: Option<&'a Page>,
    /// Scroll offset the frame was captured at (HTML boxes need it).
    pub scroll_y: i32,
}

/// Prepend the nearest caption's text to input-like marks so field queries
/// can match them ("Title" + placeholder "Add a title").
pub fn associate_captions(marks: &mut [Mark], shot: &Screenshot) {
    let captions: Vec<(&Rect, &str)> = shot
        .items
        .iter()
        .filter(|i| i.visual == VisualClass::Text && !i.text.is_empty())
        .map(|i| (&i.rect, i.text.as_str()))
        .collect();
    for mark in marks.iter_mut() {
        let inputish = mark.hint == "input"
            || mark.hint == "textarea"
            || mark.hint == "select"
            || mark.hint == "InputBox";
        if !inputish {
            continue;
        }
        let mut best: Option<(&str, i32)> = None;
        for (rect, text) in &captions {
            let above = rect.bottom() <= mark.rect.y + 6
                && mark.rect.y - rect.bottom() < 40
                && (rect.x - mark.rect.x).abs() < 80;
            let left = (rect.y - mark.rect.y).abs() < 12 && rect.right() <= mark.rect.x + 6;
            if above || left {
                let dist = (mark.rect.y - rect.bottom()).abs() + (mark.rect.x - rect.x).abs();
                if best.map(|(_, d)| dist < d).unwrap_or(true) {
                    best = Some((text, dist));
                }
            }
        }
        if let Some((caption, _)) = best {
            mark.text = format!("{caption} {}", mark.text);
        } else {
            // No label above/left: borrow the nearest control caption to
            // the right in the same row ("the dropdown next to 'Add label'").
            let right = shot
                .items
                .iter()
                .filter(|i| {
                    !i.text.is_empty()
                        && (i.rect.y - mark.rect.y).abs() < 14
                        && i.rect.x >= mark.rect.right() - 6
                        && i.rect.x - mark.rect.right() < 160
                })
                .min_by_key(|i| i.rect.x - mark.rect.right());
            if let Some(r) = right {
                mark.text = format!("{} {}", mark.text, r.text);
            }
        }
    }
}

/// Ground `query` to a viewport click point under a strategy. Returns the
/// chosen point plus the mark list used (empty for native), so experiments
/// can audit the decision.
pub fn ground_click(
    model: &mut FmModel,
    strategy: GroundingStrategy,
    view: &GroundView<'_>,
    query: &str,
) -> (Option<Point>, Vec<Mark>) {
    let (pt, marks) = ground_click_inner(model, strategy, view, query);
    model
        .trace_mut()
        .event(eclair_trace::EventKind::GroundingAttempt {
            strategy: format!("{strategy:?}"),
            outcome: if pt.is_some() {
                eclair_trace::GroundingOutcome::Resolved
            } else {
                eclair_trace::GroundingOutcome::Unresolved
            },
        });
    (pt, marks)
}

fn ground_click_inner(
    model: &mut FmModel,
    strategy: GroundingStrategy,
    view: &GroundView<'_>,
    query: &str,
) -> (Option<Point>, Vec<Mark>) {
    match strategy {
        GroundingStrategy::Native => {
            // Native field grounding also reasons about captions: augment a
            // copy of the percept so "the Title field" can match the box
            // under the "Title" caption.
            let mut percept = model.perceive(view.shot);
            let captions: Vec<(Rect, String)> = percept
                .elements
                .iter()
                .filter(|e| e.visual == VisualClass::Text && !e.text.is_empty())
                .map(|e| (e.rect, e.text.clone()))
                .collect();
            for el in percept.elements.iter_mut() {
                if el.visual != VisualClass::InputBox {
                    continue;
                }
                if let Some((_, caption)) = captions
                    .iter()
                    .filter(|(r, _)| r.bottom() <= el.rect.y + 6 && el.rect.y - r.bottom() < 40)
                    .min_by_key(|(r, _)| (el.rect.y - r.bottom()).abs() + (el.rect.x - r.x).abs())
                {
                    el.text = format!("{caption} {}", el.text);
                }
            }
            let out = eclair_fm::ground::native_ground(
                &model.profile().clone(),
                &percept,
                query,
                model.rng(),
            );
            model.account(
                "ground_native",
                85 + 4 * view.shot.items.len() as u64 + (query.len() as u64).div_ceil(4),
                12,
            );
            (out.click_point(&[]), Vec::new())
        }
        GroundingStrategy::SomYolo => {
            let detector = YoloNasSim::default();
            let mut marked = marks_via_detector(view.shot, &detector, model.rng());
            associate_captions(&mut marked.marks, view.shot);
            let out = model.ground_marks(&marked, query);
            let pt = out.click_point(&marked.marks);
            (pt, marked.marks)
        }
        GroundingStrategy::SomHtml => {
            let Some(page) = view.page else {
                return (None, Vec::new());
            };
            let mut marked = marks_from_html(page, view.scroll_y);
            associate_captions(&mut marked.marks, view.shot);
            let out = model.ground_marks(&marked, query);
            let pt = out.click_point(&marked.marks);
            (pt, marked.marks)
        }
    }
}

/// Whether a grounding outcome's click would land inside the true box —
/// Table 3's accuracy criterion ("If the model clicked on the center of
/// its prediction, would it successfully hit the target element?").
pub fn hits_target(outcome: &GroundingOutcome, marks: &[Mark], truth: &Rect) -> bool {
    outcome
        .click_point(marks)
        .map(|p| truth.contains(p))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_fm::ModelProfile;
    use eclair_gui::PageBuilder;

    fn form_page() -> Page {
        let mut b = PageBuilder::new("g", "/g");
        b.heading(1, "New issue");
        b.form("f", |b| {
            b.text_input("title", "Title", "Add a title");
            b.textarea("description", "Description", "Describe it");
            b.button("create", "Create issue");
        });
        b.finish()
    }

    #[test]
    fn caption_association_enables_field_grounding() {
        let page = form_page();
        let shot = page.screenshot_at(0);
        let mut model = FmModel::new(ModelProfile::oracle(), 3);
        let view = GroundView {
            shot: &shot,
            page: Some(&page),
            scroll_y: 0,
        };
        let (pt, _) = ground_click(
            &mut model,
            GroundingStrategy::SomHtml,
            &view,
            "the Title field",
        );
        let pt = pt.expect("grounded");
        let title = page.get(page.find_by_name("title").unwrap()).bounds;
        assert!(title.contains(pt), "{pt:?} not in {title:?}");
    }

    #[test]
    fn button_grounding_works_across_strategies() {
        let page = form_page();
        let shot = page.screenshot_at(0);
        let target = page.get(page.find_by_name("create").unwrap()).bounds;
        for strategy in [
            GroundingStrategy::Native,
            GroundingStrategy::SomYolo,
            GroundingStrategy::SomHtml,
        ] {
            let mut model = FmModel::new(ModelProfile::oracle(), 5);
            let view = GroundView {
                shot: &shot,
                page: Some(&page),
                scroll_y: 0,
            };
            let (pt, _) = ground_click(&mut model, strategy, &view, "the 'Create issue' button");
            let pt = pt.unwrap_or(Point::new(-1, -1));
            assert!(
                target.contains(pt),
                "{strategy:?}: {pt:?} not in {target:?}"
            );
        }
    }

    #[test]
    fn som_html_requires_dom() {
        let page = form_page();
        let shot = page.screenshot_at(0);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 1);
        let view = GroundView {
            shot: &shot,
            page: None,
            scroll_y: 0,
        };
        let (pt, marks) = ground_click(&mut model, GroundingStrategy::SomHtml, &view, "anything");
        assert!(pt.is_none());
        assert!(marks.is_empty());
    }

    #[test]
    fn gpt4_native_misses_more_than_som() {
        let page = form_page();
        let shot = page.screenshot_at(0);
        let target = page.get(page.find_by_name("create").unwrap()).bounds;
        let hits = |strategy: GroundingStrategy| {
            let mut h = 0;
            for seed in 0..60 {
                let mut model = FmModel::new(ModelProfile::gpt4v(), seed);
                let view = GroundView {
                    shot: &shot,
                    page: Some(&page),
                    scroll_y: 0,
                };
                let (pt, _) =
                    ground_click(&mut model, strategy, &view, "the 'Create issue' button");
                if pt.map(|p| target.contains(p)).unwrap_or(false) {
                    h += 1;
                }
            }
            h
        };
        let native = hits(GroundingStrategy::Native);
        let som = hits(GroundingStrategy::SomHtml);
        assert!(som > native, "SoM {som} must beat raw native {native}");
    }
}

//! The autonomous execution loop: observe → suggest → ground → actuate →
//! recover. This is the system whose end-to-end completion rate Table 2
//! reports (0.17 without an SOP, 0.40 with one).

use eclair_fm::FmModel;
use eclair_gui::event::EffectKind;
use eclair_gui::{GuiSurface, Key, UserEvent, VisualClass};
use eclair_sites::TaskSpec;
use eclair_trace::{fault_cost_weight, render_log, CostKind, EventKind, SpanKind};
use eclair_workflow::Sop;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::calibration;
use crate::execute::ground::{ground_click, GroundView, GroundingStrategy};
use crate::execute::parse::StepIntent;
use crate::execute::suggest::{suggest_next, SuggestState, Suggestion};

/// Configuration of one autonomous run.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// The SOP to follow, if any (Table 2's ablation switch).
    pub sop: Option<Sop>,
    /// Grounding pipeline.
    pub strategy: GroundingStrategy,
    /// Hard budget on suggested actions.
    pub max_steps: usize,
    /// Retry a failed action once after re-grounding.
    pub retry_failed: bool,
    /// Press Escape when an unexpected modal blocks progress (the paper's
    /// "common sense to error correct").
    pub escape_popups: bool,
    /// Click through a login interstitial when the session expires
    /// mid-run (the chaos layer's session-expiry fault).
    pub relogin_expired: bool,
    /// Whether the caching layer (frame cache, incremental relayout,
    /// perception memo) runs underneath this execution. Combined with the
    /// `ECLAIR_NO_CACHE=1` kill switch; flipping either must not change a
    /// single serialized byte (the transparency invariant the crucible's
    /// `cache-transparent` oracle enforces).
    pub use_cache: bool,
}

impl ExecConfig {
    /// The paper's main configuration: SOP + set-of-marks grounding.
    pub fn with_sop(sop: Sop) -> Self {
        Self {
            sop: Some(sop),
            strategy: GroundingStrategy::SomHtml,
            max_steps: 24,
            retry_failed: true,
            escape_popups: true,
            relogin_expired: true,
            use_cache: true,
        }
    }

    /// The no-SOP baseline.
    pub fn without_sop() -> Self {
        Self {
            sop: None,
            strategy: GroundingStrategy::SomHtml,
            max_steps: 24,
            retry_failed: true,
            escape_popups: true,
            relogin_expired: true,
            use_cache: true,
        }
    }

    /// Budget derived from a reference trace length.
    pub fn budgeted(mut self, gold_len: usize) -> Self {
        self.max_steps = ((gold_len as f64) * calibration::EXEC_STEP_BUDGET_FACTOR).ceil() as usize;
        self
    }
}

/// Outcome of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Whether the task's functional success check held at the end.
    pub success: bool,
    /// Actions the agent attempted.
    pub actions_attempted: usize,
    /// Actions whose grounding or actuation failed (before retries).
    pub failures: usize,
    /// Failed actions whose in-step retry subsequently *succeeded* (after
    /// popup escape / re-login, where those applied). A recovery is only
    /// counted when the intent was actually re-performed and landed, so
    /// `recoveries <= failures` and `failures - recoveries` is exactly the
    /// count of actions that stayed failed — the substrate fleet-level
    /// retry accounting is built on.
    pub recoveries: usize,
    /// Human-readable narration of the run.
    pub log: Vec<String>,
}

/// Run a task autonomously. The session is created fresh from the task's
/// site fixture; `model` provides all perception/grounding/noise.
pub fn run_task(model: &mut FmModel, task: &TaskSpec, cfg: &ExecConfig) -> RunResult {
    let mut session = task.launch();
    let result = run_on_session(model, &mut session, &task.intent, cfg);
    RunResult {
        success: task.success.evaluate(&session),
        ..result
    }
}

/// Run against an existing surface (used by the agent orchestrator, the
/// drift studies, and the chaos harness). `success` in the result is left
/// `false`; callers check their own predicate.
pub fn run_on_session<S: GuiSurface>(
    model: &mut FmModel,
    session: &mut S,
    workflow_description: &str,
    cfg: &ExecConfig,
) -> RunResult {
    // Resolve the caching layer once per run: the per-run config AND the
    // global kill switch must both allow it. Transparency means this is
    // the only place the flag matters — nothing downstream may behave
    // differently because of it.
    let cache_on = cfg.use_cache && !eclair_gui::no_cache_env();
    session.set_cache_enabled(cache_on);
    model.set_cache_enabled(cache_on);
    let mut state = SuggestState::new();
    let mut history: Vec<String> = Vec::new();
    let mut failures = 0usize;
    let mut recoveries = 0usize;
    let mut attempted = 0usize;
    let mut step_no = 0u64;
    // The narration that used to accumulate in a local Vec<String> now
    // lives in the trace as Note events; the returned log is rendered back
    // from the slice this run appended.
    let log_start = model.trace().events().len();
    let exec_span = model
        .trace_mut()
        .open(SpanKind::Execute, workflow_description);
    while attempted < cfg.max_steps {
        step_no += 1;
        let step_span = model
            .trace_mut()
            .open(SpanKind::Step, &format!("step {step_no}"));
        // Re-anchor the virtual clock's draw stream to this step (latency
        // draws are pure in `(seed, run_id, step)`), then charge the
        // fixed per-step overhead.
        model.trace_mut().clock_begin_step(step_no);
        model.trace_mut().advance(CostKind::StepInit, 0);
        // Let a perturbing surface arm its scheduled fault, and record
        // whatever it injected before the step observes.
        session.begin_step(step_no);
        for note in session.drain_fault_notes() {
            model
                .trace_mut()
                .advance(CostKind::FaultImpact, fault_cost_weight(&note.fault));
            model.trace_mut().note(format!(
                "chaos: {} injected at step {}",
                note.fault, note.step
            ));
            model.trace_mut().event(EventKind::FaultInjected {
                step: note.step,
                fault: note.fault,
            });
        }
        // A session that expired under the agent redirects every route to
        // a login interstitial; click through it *before* observing, so
        // the step's perception and grounding work on the real page.
        if cfg.relogin_expired && relogin_if_expired(session) {
            let rec_span = model.trace_mut().open(SpanKind::Recover, "re-login");
            model.trace_mut().advance(CostKind::Recover, 0);
            model
                .trace_mut()
                .note("re-authenticated after session expiry");
            model.trace_mut().close(rec_span);
        }
        let obs_span = model.trace_mut().open(SpanKind::Observe, "screenshot");
        model.trace_mut().advance(CostKind::Observe, 0);
        let shot = session.screenshot();
        model.trace_mut().close(obs_span);
        let sug_span = model.trace_mut().open(SpanKind::Suggest, "next action");
        let suggestion = suggest_next(
            model,
            workflow_description,
            cfg.sop.as_ref(),
            &mut state,
            &history,
            &shot,
        );
        model.trace_mut().close(sug_span);
        let Suggestion::Act(intent, text) = suggestion else {
            model.trace_mut().note("done: plan exhausted");
            model.trace_mut().close(step_span);
            break;
        };
        attempted += 1;
        let act_span = model.trace_mut().open(SpanKind::Actuate, &text);
        model.trace_mut().advance(CostKind::Actuate, 0);
        let first_try = perform(model, session, &intent, cfg);
        model.trace_mut().close(act_span);
        match first_try {
            Ok(()) => {
                model.trace_mut().note(format!("ok: {text}"));
                history.push(text.clone());
            }
            Err(e) => {
                failures += 1;
                model.trace_mut().note(format!("fail: {text} ({e})"));
                // Recovery handling may clear the obstacle (dismiss a
                // dialog, re-authenticate), but the step only *recovers*
                // if the intent is then re-performed successfully — an
                // escaped popup with the action still undone is not a
                // recovered action.
                let mut cleared_obstacle = false;
                if cfg.escape_popups {
                    let rec_span = model.trace_mut().open(SpanKind::Recover, "popup escape");
                    if escape_if_irrelevant_modal(model, session, &intent) {
                        model.trace_mut().advance(CostKind::Recover, 0);
                        model.trace_mut().event(EventKind::PopupEscape {
                            url: session.url().to_string(),
                        });
                        model.trace_mut().note("dismissed unexpected dialog");
                        cleared_obstacle = true;
                    }
                    model.trace_mut().close(rec_span);
                }
                if cfg.retry_failed || cleared_obstacle {
                    model
                        .trace_mut()
                        .event(EventKind::Retry { what: text.clone() });
                    let retry_span = model.trace_mut().open(SpanKind::Actuate, &text);
                    model.trace_mut().advance(CostKind::Actuate, 0);
                    let retried = perform(model, session, &intent, cfg);
                    model.trace_mut().close(retry_span);
                    if retried.is_ok() {
                        model.trace_mut().note(format!("retry ok: {text}"));
                        history.push(text.clone());
                        recoveries += 1;
                    }
                }
            }
        }
        model.trace_mut().close(step_span);
    }
    model.trace_mut().close(exec_span);
    let log = render_log(&model.trace().events()[log_start..]);
    RunResult {
        success: false,
        actions_attempted: attempted,
        failures,
        recoveries,
        log,
    }
}

/// Dispatch a click and confirm it landed where it was aimed. A layout
/// shift between grounding and actuation displaces the event in flight;
/// an agent can see its click land somewhere else on screen, so a
/// displaced click is a grounding failure to retry, never a success.
pub fn click_at<S: GuiSurface>(
    session: &mut S,
    pt: eclair_gui::Point,
) -> Result<eclair_gui::event::Dispatch, String> {
    let d = session.dispatch(UserEvent::Click(pt));
    if let UserEvent::Click(landed) = &d.event {
        if *landed != pt {
            return Err(format!(
                "click aimed at ({}, {}) landed at ({}, {})",
                pt.x, pt.y, landed.x, landed.y
            ));
        }
    }
    Ok(d)
}

/// Ground and actuate one intent. Errors describe what went wrong (for the
/// run log and the failure taxonomy in the benches).
fn perform<S: GuiSurface>(
    model: &mut FmModel,
    session: &mut S,
    intent: &StepIntent,
    cfg: &ExecConfig,
) -> Result<(), String> {
    match intent {
        StepIntent::Press(k) => {
            session.dispatch(UserEvent::Press(*k));
            Ok(())
        }
        StepIntent::Scroll { down } => {
            session.dispatch(UserEvent::Scroll(if *down { 400 } else { -400 }));
            Ok(())
        }
        StepIntent::Click { target } => {
            let pt = locate(model, session, cfg, target)?;
            let d = click_at(session, pt)?;
            if d.effect == EffectKind::NoOp {
                Err(format!("click on '{target}' hit nothing"))
            } else {
                Ok(())
            }
        }
        StepIntent::Check { target } => {
            let pt = locate(model, session, cfg, target)?;
            let d = click_at(session, pt)?;
            if d.effect == EffectKind::Toggled {
                Ok(())
            } else {
                Err(format!("'{target}' did not toggle"))
            }
        }
        StepIntent::Type { value, field } => {
            if let Some(field) = field {
                // The decomposition failure the paper reports: the model
                // knows it must type, but skips focusing the field first.
                let skip_p = calibration::DECOMPOSE_SKIP_FOCUS_P
                    * (1.0 - model.profile().decomposition_skill);
                if !model.rng().gen_bool(skip_p.clamp(0.0, 1.0)) {
                    let query = format!("the {field} field");
                    let pt = locate(model, session, cfg, &query)?;
                    let d = click_at(session, pt)?;
                    if d.effect != EffectKind::Focused {
                        return Err(format!("'{field}' is not an editable field"));
                    }
                }
            }
            let d = session.dispatch(UserEvent::Type(value.clone()));
            if d.effect == EffectKind::Typed {
                Ok(())
            } else {
                Err("typing had no effect (no field focused)".into())
            }
        }
        StepIntent::Set { field, value } => {
            let query = format!("the {field} field");
            let pt = locate(model, session, cfg, &query)?;
            let d = click_at(session, pt)?;
            if d.effect != EffectKind::Focused {
                return Err(format!("'{field}' is not an editable field"));
            }
            for _ in 0..60 {
                session.dispatch(UserEvent::Press(Key::Backspace));
            }
            let d = session.dispatch(UserEvent::Type(value.clone()));
            if d.effect == EffectKind::Typed {
                Ok(())
            } else {
                Err("replacement typing had no effect".into())
            }
        }
        StepIntent::Select { option, field } => {
            let query = format!("the {field} dropdown");
            let pt = locate(model, session, cfg, &query)?;
            let d = click_at(session, pt)?;
            if d.effect != EffectKind::Focused {
                return Err(format!("'{field}' is not a dropdown"));
            }
            let d = session.dispatch(UserEvent::Type(option.clone()));
            if d.effect == EffectKind::Typed {
                Ok(())
            } else {
                Err("option entry had no effect".into())
            }
        }
        StepIntent::ClickPoint(pt) => {
            // The step gives literal viewport coordinates (recorded
            // demonstrations): replay them as-is.
            let d = click_at(session, *pt)?;
            if d.effect == EffectKind::NoOp {
                Err(format!("click at ({}, {}) hit nothing", pt.x, pt.y))
            } else {
                Ok(())
            }
        }
        StepIntent::TypeAt { point, value } => {
            let d = click_at(session, *point)?;
            if d.effect != EffectKind::Focused {
                return Err(format!(
                    "({}, {}) is not an editable field",
                    point.x, point.y
                ));
            }
            let d = session.dispatch(UserEvent::Type(value.clone()));
            if d.effect == EffectKind::Typed {
                Ok(())
            } else {
                Err("typing had no effect".into())
            }
        }
        StepIntent::Unknown(t) => Err(format!("cannot act on: {t}")),
    }
}

/// Ground a query to a click point, probing one page down and one page up
/// if nothing matches the current viewport.
pub(crate) fn locate<S: GuiSurface>(
    model: &mut FmModel,
    session: &mut S,
    cfg: &ExecConfig,
    query: &str,
) -> Result<eclair_gui::Point, String> {
    let span = model.trace_mut().open(SpanKind::Ground, query);
    let found = locate_inner(model, session, cfg, query);
    model.trace_mut().close(span);
    found
}

fn locate_inner<S: GuiSurface>(
    model: &mut FmModel,
    session: &mut S,
    cfg: &ExecConfig,
    query: &str,
) -> Result<eclair_gui::Point, String> {
    let home = session.scroll_y();
    // Probe the current viewport first, then one page down, then one page
    // up — the target may sit on either side of where the agent last
    // scrolled. Clamping can land two probes on the same viewport; those
    // are grounded once.
    let mut probed: Vec<i32> = Vec::new();
    for target in [home, home + 400, home - 400] {
        let delta = target - session.scroll_y();
        if delta != 0 {
            session.dispatch(UserEvent::Scroll(delta));
        }
        let at = session.scroll_y();
        if probed.contains(&at) {
            continue;
        }
        probed.push(at);
        let shot = session.screenshot();
        let page_snapshot;
        let view = GroundView {
            shot: &shot,
            page: if cfg.strategy == GroundingStrategy::SomHtml {
                page_snapshot = session.page().clone();
                Some(&page_snapshot)
            } else {
                None
            },
            scroll_y: session.scroll_y(),
        };
        let (pt, _) = ground_click(model, cfg.strategy, &view, query);
        if let Some(pt) = pt {
            return Ok(pt);
        }
    }
    // Nothing matched anywhere: put the viewport back where the step
    // started instead of leaving the session scrolled somewhere random
    // (the next step's observation should see what this one saw).
    let back = home - session.scroll_y();
    if back != 0 {
        session.dispatch(UserEvent::Scroll(back));
    }
    Err(format!("could not ground '{query}'"))
}

/// If the surface landed on a login interstitial (a chaos session-expiry
/// fault, or any app that signs the agent out), click its login button to
/// re-authenticate. Returns whether the click re-activated the session.
pub fn relogin_if_expired<S: GuiSurface>(session: &mut S) -> bool {
    if session.url() != "/login" {
        return false;
    }
    let pt = {
        let page = session.page();
        let Some(id) = page.find_by_label("Log in", true) else {
            return false;
        };
        page.get(id).bounds.center().offset(0, -session.scroll_y())
    };
    session.dispatch(UserEvent::Click(pt)).effect == EffectKind::Activated
}

/// If a modal is open and none of its text relates to the current intent,
/// press Escape ("hitting escape when an irrelevant pop-up appears").
/// Returns whether an escape was issued.
///
/// A dialog can sit above the current viewport — the agent scrolled down,
/// then an overlay appeared anchored near the top of the page, swallowing
/// every click while staying invisible at this scroll. When nothing
/// modal-looking is in view, probe the top of the page before giving up,
/// and restore the scroll either way so the retry re-grounds from where
/// the step started.
pub(crate) fn escape_if_irrelevant_modal<S: GuiSurface>(
    model: &mut FmModel,
    session: &mut S,
    intent: &StepIntent,
) -> bool {
    if escape_modal_in_view(model, session, intent) {
        return true;
    }
    let home = session.scroll_y();
    if home == 0 {
        return false;
    }
    session.dispatch(UserEvent::Scroll(-home));
    let dismissed = escape_modal_in_view(model, session, intent);
    let back = home - session.scroll_y();
    if back != 0 {
        session.dispatch(UserEvent::Scroll(back));
    }
    dismissed
}

/// One viewport's worth of the escape check: perceive the current frame,
/// find the topmost modal panel, and Escape it if its text is unrelated
/// to the intent.
fn escape_modal_in_view<S: GuiSurface>(
    model: &mut FmModel,
    session: &mut S,
    intent: &StepIntent,
) -> bool {
    let shot = session.screenshot();
    let percept = model.perceive(&shot);
    if !percept.modal_seen {
        return false;
    }
    let query = match intent {
        StepIntent::Click { target } => target.clone(),
        other => crate::execute::suggest::intent_text(other),
    };
    // Texts plausibly inside the modal: elements overlapping the modal
    // panel region. The dialog panel is the *topmost* wide text-free panel
    // edge (modals paint last); no height floor beyond excluding hairline
    // dividers — a short dialog (one line and a button) is still a dialog.
    let panel = shot
        .items
        .iter()
        .rev()
        .find(|i| {
            i.visual == VisualClass::PanelEdge
                && i.text.is_empty()
                && i.rect.w >= 300
                && i.rect.h > 12
        })
        .map(|i| i.rect);
    let Some(panel) = panel else { return false };
    let relevant = percept
        .elements
        .iter()
        .filter(|e| e.rect.intersects(&panel) && !e.text.is_empty())
        .any(|e| eclair_fm::text::fuzzy_similarity(&e.text, &query) > 0.4);
    if relevant {
        return false;
    }
    session.dispatch(UserEvent::Press(Key::Escape));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_fm::ModelProfile;
    use eclair_sites::all_tasks;

    fn task(id: &str) -> TaskSpec {
        all_tasks().into_iter().find(|t| t.id == id).unwrap()
    }

    #[test]
    fn oracle_model_with_gold_sop_completes_tasks() {
        for id in ["gitlab-03", "magento-05", "gitlab-14", "magento-02"] {
            let t = task(id);
            let mut model = FmModel::new(ModelProfile::oracle(), 1);
            let cfg = ExecConfig::with_sop(t.gold_sop.clone()).budgeted(t.gold_trace.len());
            let r = run_task(&mut model, &t, &cfg);
            assert!(r.success, "{id}: {:#?}", r.log);
        }
    }

    #[test]
    fn gpt4_with_sop_beats_gpt4_without() {
        let tasks = all_tasks();
        let mut with = 0usize;
        let mut without = 0usize;
        for rep in 0..2u64 {
            for (i, t) in tasks.iter().enumerate() {
                let cfg_with =
                    ExecConfig::with_sop(t.gold_sop.clone()).budgeted(t.gold_trace.len());
                let mut m1 = FmModel::new(ModelProfile::gpt4v(), 100 + rep * 1000 + i as u64);
                if run_task(&mut m1, t, &cfg_with).success {
                    with += 1;
                }
                let cfg_without = ExecConfig::without_sop().budgeted(t.gold_trace.len());
                let mut m2 = FmModel::new(ModelProfile::gpt4v(), 200 + rep * 1000 + i as u64);
                if run_task(&mut m2, t, &cfg_without).success {
                    without += 1;
                }
            }
        }
        assert!(
            with > without,
            "SOP must improve completion: with={with}, without={without} of {}",
            tasks.len() * 2
        );
        assert!(
            with >= 16,
            "with-SOP completion should be well above zero: {with}"
        );
    }

    #[test]
    fn step_budget_caps_runaway_runs() {
        let t = task("gitlab-01");
        let mut model = FmModel::new(ModelProfile::gpt4v(), 5);
        let mut cfg = ExecConfig::without_sop();
        cfg.max_steps = 3;
        let r = run_task(&mut model, &t, &cfg);
        assert!(r.actions_attempted <= 3);
    }

    #[test]
    fn irrelevant_popup_is_escaped_and_run_recovers() {
        use eclair_gui::{GuiApp, Page, PageBuilder, SemanticEvent, Session};

        /// A two-screen app that throws a promo modal the moment the form
        /// opens — the paper's "irrelevant pop-up appears" scenario.
        struct PopupApp {
            on_form: bool,
            promo_open: bool,
            promo_shown: bool,
            saved: Option<String>,
        }
        impl GuiApp for PopupApp {
            fn name(&self) -> &str {
                "popup"
            }
            fn url(&self) -> String {
                if self.saved.is_some() {
                    "/done".into()
                } else if self.on_form {
                    "/form".into()
                } else {
                    "/start".into()
                }
            }
            fn build(&self) -> Page {
                if let Some(v) = &self.saved {
                    let mut b = PageBuilder::new("Done", "/done");
                    b.toast("Saved");
                    b.heading(1, format!("Saved {v}"));
                    b.finish()
                } else if self.on_form {
                    let mut b = PageBuilder::new("Form", "/form");
                    b.heading(1, "Entry form");
                    b.form("f", |b| {
                        b.text_input("amount", "Amount", "0.00");
                        b.button("save", "Save entry");
                    });
                    if self.promo_open {
                        b.modal("promo", |b| {
                            b.text("Subscribe to our newsletter for weekly tips!");
                            b.button("promo-no", "No thanks");
                        });
                    }
                    b.finish()
                } else {
                    let mut b = PageBuilder::new("Start", "/start");
                    b.button("next", "Open entry form");
                    b.finish()
                }
            }
            fn on_event(&mut self, ev: SemanticEvent) -> bool {
                match ev {
                    SemanticEvent::Activated { name, fields, .. } => match name.as_str() {
                        "next" => {
                            self.on_form = true;
                            if !self.promo_shown {
                                self.promo_open = true;
                                self.promo_shown = true;
                            }
                            true
                        }
                        "save" => {
                            self.saved = fields
                                .into_iter()
                                .find(|(n, _)| n == "amount")
                                .map(|(_, v)| v);
                            true
                        }
                        "promo-no" => {
                            self.promo_open = false;
                            true
                        }
                        _ => false,
                    },
                    SemanticEvent::Dismissed { name } if name == "promo" => {
                        self.promo_open = false;
                        true
                    }
                    _ => false,
                }
            }
        }

        let sop = eclair_workflow::Sop::from_texts(
            "Enter the amount",
            &[
                "Click the 'Open entry form' button",
                "Type \"125.00\" into the Amount field",
                "Click the 'Save entry' button",
            ],
        );
        let mut model = FmModel::new(ModelProfile::oracle(), 3);
        let mut session = Session::new(Box::new(PopupApp {
            on_form: false,
            promo_open: false,
            promo_shown: false,
            saved: None,
        }));
        let cfg = ExecConfig {
            sop: Some(sop),
            strategy: GroundingStrategy::SomHtml,
            max_steps: 8,
            retry_failed: true,
            escape_popups: true,
            relogin_expired: true,
            use_cache: true,
        };
        let r = run_on_session(&mut model, &mut session, "Enter the amount", &cfg);
        assert!(
            r.log
                .iter()
                .any(|l| l.contains("dismissed unexpected dialog")),
            "the agent must escape the promo: {:#?}",
            r.log
        );
        assert_eq!(session.url(), "/done", "{:#?}", r.log);
    }

    /// A page ~2 viewports tall with one button at the very top — the
    /// grounding-probe regression fixture.
    struct TallApp {
        clicked: bool,
    }
    impl eclair_gui::GuiApp for TallApp {
        fn name(&self) -> &str {
            "tall"
        }
        fn url(&self) -> String {
            "/tall".into()
        }
        fn build(&self) -> eclair_gui::Page {
            use eclair_gui::PageBuilder;
            let mut b = PageBuilder::new("Tall", "/tall");
            b.button("top", "Top action");
            for i in 0..40 {
                b.text(format!("filler line {i}"));
            }
            b.finish()
        }
        fn on_event(&mut self, ev: eclair_gui::SemanticEvent) -> bool {
            if matches!(&ev, eclair_gui::SemanticEvent::Activated { name, .. } if name == "top") {
                self.clicked = true;
            }
            false
        }
        fn probe(&self, key: &str) -> Option<String> {
            (key == "clicked").then(|| self.clicked.to_string())
        }
    }

    #[test]
    fn grounding_probes_upward_for_targets_above_the_viewport() {
        use eclair_gui::{Session, UserEvent};

        let mut session = Session::new(Box::new(TallApp { clicked: false }));
        // The agent scrolled past the target on an earlier step.
        session.dispatch(UserEvent::Scroll(400));
        assert_eq!(session.scroll_y(), 400, "fixture must start scrolled");
        let mut model = FmModel::new(ModelProfile::oracle(), 7);
        let cfg = ExecConfig::without_sop();
        let pt = locate(&mut model, &mut session, &cfg, "Top action")
            .expect("a target one page above the viewport must be groundable");
        let d = session.dispatch(UserEvent::Click(pt));
        assert_eq!(d.effect, eclair_gui::event::EffectKind::Activated, "{d:?}");
        assert_eq!(session.app().probe("clicked").as_deref(), Some("true"));
    }

    #[test]
    fn failed_grounding_restores_the_scroll_position() {
        use eclair_gui::{Session, UserEvent};

        /// A long read-only page: no interactive widgets anywhere, so
        /// grounding has no candidates and must fail at every probe.
        struct ProseApp;
        impl eclair_gui::GuiApp for ProseApp {
            fn name(&self) -> &str {
                "prose"
            }
            fn url(&self) -> String {
                "/prose".into()
            }
            fn build(&self) -> eclair_gui::Page {
                let mut b = eclair_gui::PageBuilder::new("Prose", "/prose");
                b.heading(1, "Release notes");
                for i in 0..40 {
                    b.text(format!("paragraph {i}"));
                }
                b.finish()
            }
            fn on_event(&mut self, _: eclair_gui::SemanticEvent) -> bool {
                false
            }
        }

        let mut session = Session::new(Box::new(ProseApp));
        session.dispatch(UserEvent::Scroll(400));
        let before = session.scroll_y();
        let mut model = FmModel::new(ModelProfile::oracle(), 7);
        let cfg = ExecConfig::without_sop();
        let err = locate(&mut model, &mut session, &cfg, "the Publish button");
        assert!(err.is_err(), "{err:?}");
        assert_eq!(
            session.scroll_y(),
            before,
            "a failed probe must not leave the session scrolled somewhere random"
        );
    }

    /// An app whose form opens under a *short* modal (a bar with a single
    /// button, well under the old 100 px panel floor). `save_enabled`
    /// controls whether the underlying action can succeed at all.
    struct ShortModalApp {
        notice_open: bool,
        saved: bool,
        save_enabled: bool,
    }
    impl eclair_gui::GuiApp for ShortModalApp {
        fn name(&self) -> &str {
            "short-modal"
        }
        fn url(&self) -> String {
            if self.saved {
                "/done".into()
            } else {
                "/form".into()
            }
        }
        fn build(&self) -> eclair_gui::Page {
            use eclair_gui::PageBuilder;
            if self.saved {
                let mut b = PageBuilder::new("Done", "/done");
                b.heading(1, "Saved");
                return b.finish();
            }
            let mut b = PageBuilder::new("Form", "/form");
            b.heading(1, "Entry form");
            let save = b.button("save", "Save entry");
            if self.notice_open {
                // A one-button cookie bar: height ≈ padding + button only.
                b.modal("cookie-bar", |b| {
                    b.button("cookie-ok", "OK");
                });
            }
            let mut page = b.finish();
            page.get_mut(save).enabled = self.save_enabled;
            page
        }
        fn on_event(&mut self, ev: eclair_gui::SemanticEvent) -> bool {
            match ev {
                eclair_gui::SemanticEvent::Activated { name, .. } => match name.as_str() {
                    "save" => {
                        self.saved = true;
                        true
                    }
                    "cookie-ok" => {
                        self.notice_open = false;
                        true
                    }
                    _ => false,
                },
                eclair_gui::SemanticEvent::Dismissed { name } if name == "cookie-bar" => {
                    self.notice_open = false;
                    true
                }
                _ => false,
            }
        }
    }

    #[test]
    fn short_modal_is_detected_and_escaped() {
        use eclair_gui::Session;

        // Pre-fix, the 100 px height floor (in both perception and the
        // escape panel lookup) made this dialog invisible to recovery.
        let modal_h = {
            use eclair_gui::GuiApp;
            let app = ShortModalApp {
                notice_open: true,
                saved: false,
                save_enabled: true,
            };
            let page = app.build();
            let id = page.find_by_name("cookie-bar").unwrap();
            page.get(id).bounds.h
        };
        assert!(
            modal_h < 100,
            "fixture must stay under the old floor (got {modal_h})"
        );
        let sop =
            eclair_workflow::Sop::from_texts("Save the entry", &["Click the 'Save entry' button"]);
        let mut model = FmModel::new(ModelProfile::oracle(), 4);
        let mut session = Session::new(Box::new(ShortModalApp {
            notice_open: true,
            saved: false,
            save_enabled: true,
        }));
        let cfg = ExecConfig::with_sop(sop);
        let r = run_on_session(&mut model, &mut session, "Save the entry", &cfg);
        assert!(
            r.log
                .iter()
                .any(|l| l.contains("dismissed unexpected dialog")),
            "the short dialog must be escaped: {:#?}",
            r.log
        );
        assert_eq!(session.url(), "/done", "{:#?}", r.log);
        assert!(r.recoveries <= r.failures);
    }

    #[test]
    fn escape_without_successful_retry_is_not_a_recovery() {
        use eclair_gui::Session;

        // The dialog blocks a step whose target is permanently disabled:
        // escaping clears the obstacle, but the retry still cannot land,
        // so nothing recovered.
        let sop =
            eclair_workflow::Sop::from_texts("Save the entry", &["Click the 'Save entry' button"]);
        let mut model = FmModel::new(ModelProfile::oracle(), 5);
        let mut session = Session::new(Box::new(ShortModalApp {
            notice_open: true,
            saved: false,
            save_enabled: false,
        }));
        let mut cfg = ExecConfig::with_sop(sop);
        cfg.max_steps = 2;
        let r = run_on_session(&mut model, &mut session, "Save the entry", &cfg);
        assert!(
            r.log
                .iter()
                .any(|l| l.contains("dismissed unexpected dialog")),
            "{:#?}",
            r.log
        );
        assert!(r.failures >= 1, "{:#?}", r.log);
        assert_eq!(
            r.recoveries, 0,
            "an escape whose retry fails must not count as recovered: {:#?}",
            r.log
        );
        assert!(r.recoveries <= r.failures);
    }

    #[test]
    fn executor_relogins_after_chaos_session_expiry() {
        use eclair_chaos::{ChaosProfile, ChaosSchedule, ChaosSession, FaultKind};

        let t = task("gitlab-03");
        // Expire the session at *every* step: each action first fails on
        // the login interstitial, re-authenticates, then retries.
        let schedule = ChaosSchedule::new(ChaosProfile::only(13, 1.0, FaultKind::SessionExpiry), 0);
        let mut surface = ChaosSession::new(t.site.app(), schedule);
        let mut model = FmModel::new(ModelProfile::oracle(), 1);
        let cfg = ExecConfig::with_sop(t.gold_sop.clone()).budgeted(t.gold_trace.len());
        let r = run_on_session(&mut model, &mut surface, &t.intent, &cfg);
        assert!(
            r.log.iter().any(|l| l.contains("re-authenticated")),
            "{:#?}",
            r.log
        );
        assert!(
            t.success.evaluate(surface.inner()),
            "the oracle must complete through constant expiry: {:#?}",
            r.log
        );
        assert!(surface.faults_injected() > 0);
        assert!(r.recoveries <= r.failures);
    }

    /// Archive button with a decoy button right under it, tall enough to
    /// catch any chaos layout-shift displacement. Pre-fix, a shifted click
    /// activated the decoy and the step reported "ok"; the run ended with
    /// the wrong action taken and no failure on record.
    struct DecoyApp {
        archived: bool,
        decoy_hits: u32,
    }
    impl eclair_gui::GuiApp for DecoyApp {
        fn name(&self) -> &str {
            "decoy"
        }
        fn url(&self) -> String {
            "/ledger".into()
        }
        fn build(&self) -> eclair_gui::Page {
            use eclair_gui::PageBuilder;
            let mut b = PageBuilder::new("Ledger", "/ledger");
            b.heading(1, "Ledger");
            b.button("archive", "Archive now");
            let decoy = b.button("decoy", "Discard ledger");
            let mut page = b.finish();
            page.get_mut(decoy).fixed_h = Some(160);
            page.relayout();
            page
        }
        fn on_event(&mut self, ev: eclair_gui::SemanticEvent) -> bool {
            if let eclair_gui::SemanticEvent::Activated { name, .. } = &ev {
                match name.as_str() {
                    "archive" => self.archived = true,
                    "decoy" => self.decoy_hits += 1,
                    _ => {}
                }
            }
            false
        }
        fn probe(&self, key: &str) -> Option<String> {
            match key {
                "archived" => Some(self.archived.to_string()),
                "decoy_hits" => Some(self.decoy_hits.to_string()),
                _ => None,
            }
        }
    }

    #[test]
    fn displaced_click_is_a_failure_to_retry_not_a_silent_success() {
        use eclair_chaos::{ChaosProfile, ChaosSchedule, ChaosSession, FaultKind};
        use eclair_gui::GuiApp;

        let schedule = ChaosSchedule::new(ChaosProfile::only(29, 1.0, FaultKind::LayoutShift), 0);
        // Fixture self-check: the step-1 shift must carry the click from
        // the archive button's center into the decoy, so the displaced
        // click *activates* something (the silent-wrong-click case, not
        // the easier click-hit-nothing one).
        let shift = schedule.fault_at(1).expect("rate 1.0 fires").shift_px;
        let page = DecoyApp {
            archived: false,
            decoy_hits: 0,
        }
        .build();
        let target = page.get(page.find_by_name("archive").unwrap()).bounds;
        let decoy = page.get(page.find_by_name("decoy").unwrap()).bounds;
        assert!(
            decoy.contains(target.center().offset(0, shift)),
            "seed 29's step-1 shift ({shift}px) must land in the decoy"
        );

        let mut surface = ChaosSession::new(
            Box::new(DecoyApp {
                archived: false,
                decoy_hits: 0,
            }),
            schedule,
        );
        let sop = eclair_workflow::Sop::from_texts(
            "Archive the ledger",
            &["Click the 'Archive now' button"],
        );
        let mut model = FmModel::new(ModelProfile::oracle(), 1);
        let cfg = ExecConfig::with_sop(sop);
        let r = run_on_session(&mut model, &mut surface, "Archive the ledger", &cfg);
        assert!(
            r.log.iter().any(|l| l.contains("landed at")),
            "a displaced click must surface as a failure, not a silent success: {:#?}",
            r.log
        );
        let app = surface.inner().app();
        assert_eq!(
            app.probe("decoy_hits").as_deref(),
            Some("1"),
            "the displaced click really did land on the decoy: {:#?}",
            r.log
        );
        assert_eq!(
            app.probe("archived").as_deref(),
            Some("true"),
            "the in-step retry must re-ground and land the intended click: {:#?}",
            r.log
        );
        assert!(r.failures >= 1 && r.recoveries >= 1, "{:#?}", r.log);
        assert!(surface.faults_injected() > 0);
        assert!(r.recoveries <= r.failures);
    }

    /// A long page whose single action button sits at the bottom — when a
    /// chaos modal (anchored near the top of the page) appears, the agent
    /// has scrolled past it, so the dialog blocks input from *above* the
    /// viewport.
    struct BottomApp {
        done: bool,
    }
    impl eclair_gui::GuiApp for BottomApp {
        fn name(&self) -> &str {
            "bottom"
        }
        fn url(&self) -> String {
            "/bottom".into()
        }
        fn build(&self) -> eclair_gui::Page {
            use eclair_gui::PageBuilder;
            let mut b = PageBuilder::new("Bottom", "/bottom");
            b.heading(1, "Archive report");
            for i in 0..40 {
                b.text(format!("ledger row {i}"));
            }
            b.button("finish", "Archive now");
            b.finish()
        }
        fn on_event(&mut self, ev: eclair_gui::SemanticEvent) -> bool {
            if matches!(&ev, eclair_gui::SemanticEvent::Activated { name, .. } if name == "finish")
            {
                self.done = true;
                return true;
            }
            false
        }
        fn probe(&self, key: &str) -> Option<String> {
            (key == "done").then(|| self.done.to_string())
        }
    }

    #[test]
    fn modal_above_the_viewport_is_found_by_the_scroll_probe() {
        use eclair_chaos::{ChaosProfile, ChaosSchedule, ChaosSession, FaultKind};

        let schedule = ChaosSchedule::new(ChaosProfile::only(7, 1.0, FaultKind::PromoModal), 0);
        let mut surface = ChaosSession::new(Box::new(BottomApp { done: false }), schedule);
        // The agent is already deep in the page when the dialog appears:
        // its target is in view, the dialog (page y = 140) is not.
        surface.dispatch(UserEvent::Scroll(10_000));
        assert!(surface.scroll_y() > 400, "fixture must start scrolled");
        let sop = eclair_workflow::Sop::from_texts(
            "Archive the report",
            &["Click the 'Archive now' button"],
        );
        let mut model = FmModel::new(ModelProfile::oracle(), 11);
        let cfg = ExecConfig::with_sop(sop);
        let r = run_on_session(&mut model, &mut surface, "Archive the report", &cfg);
        // Pre-fix, the escape check only perceived the current (scrolled)
        // viewport, never saw the dialog, and the run burned its budget
        // clicking into a glass wall.
        assert!(
            r.log
                .iter()
                .any(|l| l.contains("dismissed unexpected dialog")),
            "the out-of-view dialog must be found and escaped: {:#?}",
            r.log
        );
        assert_eq!(
            surface.inner().app().probe("done").as_deref(),
            Some("true"),
            "the blocked action must land after the escape: {:#?}",
            r.log
        );
        assert!(surface.faults_injected() > 0);
        assert!(r.recoveries <= r.failures);
    }

    #[test]
    fn unknown_steps_fail_gracefully() {
        let t = task("gitlab-03");
        let mut sop = t.gold_sop.clone();
        sop.push("Perform the quarterly reconciliation ritual");
        let mut model = FmModel::new(ModelProfile::oracle(), 2);
        let cfg = ExecConfig::with_sop(sop).budgeted(t.gold_trace.len() + 2);
        let r = run_task(&mut model, &t, &cfg);
        // The core steps still succeed; the nonsense step is skipped by the
        // follower (Unknown → skip), so the task completes.
        assert!(r.success, "{:#?}", r.log);
    }
}

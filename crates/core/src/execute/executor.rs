//! The autonomous execution loop: observe → suggest → ground → actuate →
//! recover. This is the system whose end-to-end completion rate Table 2
//! reports (0.17 without an SOP, 0.40 with one).

use eclair_fm::FmModel;
use eclair_gui::event::EffectKind;
use eclair_gui::{Key, Session, UserEvent, VisualClass};
use eclair_sites::TaskSpec;
use eclair_trace::{render_log, EventKind, SpanKind};
use eclair_workflow::Sop;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::calibration;
use crate::execute::ground::{ground_click, GroundView, GroundingStrategy};
use crate::execute::parse::StepIntent;
use crate::execute::suggest::{suggest_next, SuggestState, Suggestion};

/// Configuration of one autonomous run.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// The SOP to follow, if any (Table 2's ablation switch).
    pub sop: Option<Sop>,
    /// Grounding pipeline.
    pub strategy: GroundingStrategy,
    /// Hard budget on suggested actions.
    pub max_steps: usize,
    /// Retry a failed action once after re-grounding.
    pub retry_failed: bool,
    /// Press Escape when an unexpected modal blocks progress (the paper's
    /// "common sense to error correct").
    pub escape_popups: bool,
}

impl ExecConfig {
    /// The paper's main configuration: SOP + set-of-marks grounding.
    pub fn with_sop(sop: Sop) -> Self {
        Self {
            sop: Some(sop),
            strategy: GroundingStrategy::SomHtml,
            max_steps: 24,
            retry_failed: true,
            escape_popups: true,
        }
    }

    /// The no-SOP baseline.
    pub fn without_sop() -> Self {
        Self {
            sop: None,
            strategy: GroundingStrategy::SomHtml,
            max_steps: 24,
            retry_failed: true,
            escape_popups: true,
        }
    }

    /// Budget derived from a reference trace length.
    pub fn budgeted(mut self, gold_len: usize) -> Self {
        self.max_steps = ((gold_len as f64) * calibration::EXEC_STEP_BUDGET_FACTOR).ceil() as usize;
        self
    }
}

/// Outcome of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Whether the task's functional success check held at the end.
    pub success: bool,
    /// Actions the agent attempted.
    pub actions_attempted: usize,
    /// Actions whose grounding or actuation failed (before retries).
    pub failures: usize,
    /// Failed actions that subsequently recovered (popup escape and/or a
    /// successful in-step retry). `failures - recoveries` is the count of
    /// actions that stayed failed — the substrate fleet-level retry
    /// accounting is built on.
    pub recoveries: usize,
    /// Human-readable narration of the run.
    pub log: Vec<String>,
}

/// Run a task autonomously. The session is created fresh from the task's
/// site fixture; `model` provides all perception/grounding/noise.
pub fn run_task(model: &mut FmModel, task: &TaskSpec, cfg: &ExecConfig) -> RunResult {
    let mut session = task.launch();
    let result = run_on_session(model, &mut session, &task.intent, cfg);
    RunResult {
        success: task.success.evaluate(&session),
        ..result
    }
}

/// Run against an existing session (used by the agent orchestrator and the
/// drift studies). `success` in the result is left `false`; callers check
/// their own predicate.
pub fn run_on_session(
    model: &mut FmModel,
    session: &mut Session,
    workflow_description: &str,
    cfg: &ExecConfig,
) -> RunResult {
    let mut state = SuggestState::new();
    let mut history: Vec<String> = Vec::new();
    let mut failures = 0usize;
    let mut recoveries = 0usize;
    let mut attempted = 0usize;
    // The narration that used to accumulate in a local Vec<String> now
    // lives in the trace as Note events; the returned log is rendered back
    // from the slice this run appended.
    let log_start = model.trace().events().len();
    let exec_span = model
        .trace_mut()
        .open(SpanKind::Execute, workflow_description);
    while attempted < cfg.max_steps {
        let step_span = model
            .trace_mut()
            .open(SpanKind::Step, &format!("step {}", attempted + 1));
        let obs_span = model.trace_mut().open(SpanKind::Observe, "screenshot");
        let shot = session.screenshot();
        model.trace_mut().close(obs_span);
        let sug_span = model.trace_mut().open(SpanKind::Suggest, "next action");
        let suggestion = suggest_next(
            model,
            workflow_description,
            cfg.sop.as_ref(),
            &mut state,
            &history,
            &shot,
        );
        model.trace_mut().close(sug_span);
        let Suggestion::Act(intent, text) = suggestion else {
            model.trace_mut().note("done: plan exhausted");
            model.trace_mut().close(step_span);
            break;
        };
        attempted += 1;
        let act_span = model.trace_mut().open(SpanKind::Actuate, &text);
        let first_try = perform(model, session, &intent, cfg);
        model.trace_mut().close(act_span);
        match first_try {
            Ok(()) => {
                model.trace_mut().note(format!("ok: {text}"));
                history.push(text.clone());
            }
            Err(e) => {
                failures += 1;
                model.trace_mut().note(format!("fail: {text} ({e})"));
                let mut recovered = false;
                if cfg.escape_popups {
                    let rec_span = model.trace_mut().open(SpanKind::Recover, "popup escape");
                    if escape_if_irrelevant_modal(model, session, &intent) {
                        model.trace_mut().event(EventKind::PopupEscape {
                            url: session.url().to_string(),
                        });
                        model
                            .trace_mut()
                            .note("recovered: dismissed unexpected dialog");
                        recovered = true;
                    }
                    model.trace_mut().close(rec_span);
                }
                if cfg.retry_failed {
                    model
                        .trace_mut()
                        .event(EventKind::Retry { what: text.clone() });
                    let retry_span = model.trace_mut().open(SpanKind::Actuate, &text);
                    let retried = perform(model, session, &intent, cfg);
                    model.trace_mut().close(retry_span);
                    if retried.is_ok() {
                        model.trace_mut().note(format!("retry ok: {text}"));
                        history.push(text.clone());
                        recovered = true;
                    }
                }
                if recovered {
                    recoveries += 1;
                }
            }
        }
        model.trace_mut().close(step_span);
    }
    model.trace_mut().close(exec_span);
    let log = render_log(&model.trace().events()[log_start..]);
    RunResult {
        success: false,
        actions_attempted: attempted,
        failures,
        recoveries,
        log,
    }
}

/// Ground and actuate one intent. Errors describe what went wrong (for the
/// run log and the failure taxonomy in the benches).
fn perform(
    model: &mut FmModel,
    session: &mut Session,
    intent: &StepIntent,
    cfg: &ExecConfig,
) -> Result<(), String> {
    match intent {
        StepIntent::Press(k) => {
            session.dispatch(UserEvent::Press(*k));
            Ok(())
        }
        StepIntent::Scroll { down } => {
            session.dispatch(UserEvent::Scroll(if *down { 400 } else { -400 }));
            Ok(())
        }
        StepIntent::Click { target } => {
            let pt = locate(model, session, cfg, target)?;
            let d = session.dispatch(UserEvent::Click(pt));
            if d.effect == EffectKind::NoOp {
                Err(format!("click on '{target}' hit nothing"))
            } else {
                Ok(())
            }
        }
        StepIntent::Check { target } => {
            let pt = locate(model, session, cfg, target)?;
            let d = session.dispatch(UserEvent::Click(pt));
            if d.effect == EffectKind::Toggled {
                Ok(())
            } else {
                Err(format!("'{target}' did not toggle"))
            }
        }
        StepIntent::Type { value, field } => {
            if let Some(field) = field {
                // The decomposition failure the paper reports: the model
                // knows it must type, but skips focusing the field first.
                let skip_p = calibration::DECOMPOSE_SKIP_FOCUS_P
                    * (1.0 - model.profile().decomposition_skill);
                if !model.rng().gen_bool(skip_p.clamp(0.0, 1.0)) {
                    let query = format!("the {field} field");
                    let pt = locate(model, session, cfg, &query)?;
                    let d = session.dispatch(UserEvent::Click(pt));
                    if d.effect != EffectKind::Focused {
                        return Err(format!("'{field}' is not an editable field"));
                    }
                }
            }
            let d = session.dispatch(UserEvent::Type(value.clone()));
            if d.effect == EffectKind::Typed {
                Ok(())
            } else {
                Err("typing had no effect (no field focused)".into())
            }
        }
        StepIntent::Set { field, value } => {
            let query = format!("the {field} field");
            let pt = locate(model, session, cfg, &query)?;
            let d = session.dispatch(UserEvent::Click(pt));
            if d.effect != EffectKind::Focused {
                return Err(format!("'{field}' is not an editable field"));
            }
            for _ in 0..60 {
                session.dispatch(UserEvent::Press(Key::Backspace));
            }
            let d = session.dispatch(UserEvent::Type(value.clone()));
            if d.effect == EffectKind::Typed {
                Ok(())
            } else {
                Err("replacement typing had no effect".into())
            }
        }
        StepIntent::Select { option, field } => {
            let query = format!("the {field} dropdown");
            let pt = locate(model, session, cfg, &query)?;
            let d = session.dispatch(UserEvent::Click(pt));
            if d.effect != EffectKind::Focused {
                return Err(format!("'{field}' is not a dropdown"));
            }
            let d = session.dispatch(UserEvent::Type(option.clone()));
            if d.effect == EffectKind::Typed {
                Ok(())
            } else {
                Err("option entry had no effect".into())
            }
        }
        StepIntent::ClickPoint(pt) => {
            // The step gives literal viewport coordinates (recorded
            // demonstrations): replay them as-is.
            let d = session.dispatch(UserEvent::Click(*pt));
            if d.effect == EffectKind::NoOp {
                Err(format!("click at ({}, {}) hit nothing", pt.x, pt.y))
            } else {
                Ok(())
            }
        }
        StepIntent::TypeAt { point, value } => {
            let d = session.dispatch(UserEvent::Click(*point));
            if d.effect != EffectKind::Focused {
                return Err(format!(
                    "({}, {}) is not an editable field",
                    point.x, point.y
                ));
            }
            let d = session.dispatch(UserEvent::Type(value.clone()));
            if d.effect == EffectKind::Typed {
                Ok(())
            } else {
                Err("typing had no effect".into())
            }
        }
        StepIntent::Unknown(t) => Err(format!("cannot act on: {t}")),
    }
}

/// Ground a query to a click point, scrolling once if nothing matches the
/// current viewport.
fn locate(
    model: &mut FmModel,
    session: &mut Session,
    cfg: &ExecConfig,
    query: &str,
) -> Result<eclair_gui::Point, String> {
    let span = model.trace_mut().open(SpanKind::Ground, query);
    let found = locate_inner(model, session, cfg, query);
    model.trace_mut().close(span);
    found
}

fn locate_inner(
    model: &mut FmModel,
    session: &mut Session,
    cfg: &ExecConfig,
    query: &str,
) -> Result<eclair_gui::Point, String> {
    for attempt in 0..2 {
        let shot = session.screenshot();
        let page_snapshot;
        let view = GroundView {
            shot: &shot,
            page: if cfg.strategy == GroundingStrategy::SomHtml {
                page_snapshot = session.page().clone();
                Some(&page_snapshot)
            } else {
                None
            },
            scroll_y: session.scroll_y(),
        };
        let (pt, _) = ground_click(model, cfg.strategy, &view, query);
        if let Some(pt) = pt {
            return Ok(pt);
        }
        if attempt == 0 {
            session.dispatch(UserEvent::Scroll(400));
        }
    }
    Err(format!("could not ground '{query}'"))
}

/// If a modal is open and none of its text relates to the current intent,
/// press Escape ("hitting escape when an irrelevant pop-up appears").
/// Returns whether an escape was issued.
fn escape_if_irrelevant_modal(
    model: &mut FmModel,
    session: &mut Session,
    intent: &StepIntent,
) -> bool {
    let shot = session.screenshot();
    let percept = model.perceive(&shot);
    if !percept.modal_seen {
        return false;
    }
    let query = match intent {
        StepIntent::Click { target } => target.clone(),
        other => crate::execute::suggest::intent_text(other),
    };
    // Texts plausibly inside the modal: elements overlapping the modal
    // panel region.
    let panel = shot
        .items
        .iter()
        .find(|i| i.visual == VisualClass::PanelEdge && i.rect.w >= 300 && i.rect.h >= 100)
        .map(|i| i.rect);
    let Some(panel) = panel else { return false };
    let relevant = percept
        .elements
        .iter()
        .filter(|e| e.rect.intersects(&panel) && !e.text.is_empty())
        .any(|e| eclair_fm::text::fuzzy_similarity(&e.text, &query) > 0.4);
    if relevant {
        return false;
    }
    session.dispatch(UserEvent::Press(Key::Escape));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_fm::ModelProfile;
    use eclair_sites::all_tasks;

    fn task(id: &str) -> TaskSpec {
        all_tasks().into_iter().find(|t| t.id == id).unwrap()
    }

    #[test]
    fn oracle_model_with_gold_sop_completes_tasks() {
        for id in ["gitlab-03", "magento-05", "gitlab-14", "magento-02"] {
            let t = task(id);
            let mut model = FmModel::new(ModelProfile::oracle(), 1);
            let cfg = ExecConfig::with_sop(t.gold_sop.clone()).budgeted(t.gold_trace.len());
            let r = run_task(&mut model, &t, &cfg);
            assert!(r.success, "{id}: {:#?}", r.log);
        }
    }

    #[test]
    fn gpt4_with_sop_beats_gpt4_without() {
        let tasks = all_tasks();
        let mut with = 0usize;
        let mut without = 0usize;
        for rep in 0..2u64 {
            for (i, t) in tasks.iter().enumerate() {
                let cfg_with =
                    ExecConfig::with_sop(t.gold_sop.clone()).budgeted(t.gold_trace.len());
                let mut m1 = FmModel::new(ModelProfile::gpt4v(), 100 + rep * 1000 + i as u64);
                if run_task(&mut m1, t, &cfg_with).success {
                    with += 1;
                }
                let cfg_without = ExecConfig::without_sop().budgeted(t.gold_trace.len());
                let mut m2 = FmModel::new(ModelProfile::gpt4v(), 200 + rep * 1000 + i as u64);
                if run_task(&mut m2, t, &cfg_without).success {
                    without += 1;
                }
            }
        }
        assert!(
            with > without,
            "SOP must improve completion: with={with}, without={without} of {}",
            tasks.len() * 2
        );
        assert!(
            with >= 16,
            "with-SOP completion should be well above zero: {with}"
        );
    }

    #[test]
    fn step_budget_caps_runaway_runs() {
        let t = task("gitlab-01");
        let mut model = FmModel::new(ModelProfile::gpt4v(), 5);
        let mut cfg = ExecConfig::without_sop();
        cfg.max_steps = 3;
        let r = run_task(&mut model, &t, &cfg);
        assert!(r.actions_attempted <= 3);
    }

    #[test]
    fn irrelevant_popup_is_escaped_and_run_recovers() {
        use eclair_gui::{GuiApp, Page, PageBuilder, SemanticEvent, Session};

        /// A two-screen app that throws a promo modal the moment the form
        /// opens — the paper's "irrelevant pop-up appears" scenario.
        struct PopupApp {
            on_form: bool,
            promo_open: bool,
            promo_shown: bool,
            saved: Option<String>,
        }
        impl GuiApp for PopupApp {
            fn name(&self) -> &str {
                "popup"
            }
            fn url(&self) -> String {
                if self.saved.is_some() {
                    "/done".into()
                } else if self.on_form {
                    "/form".into()
                } else {
                    "/start".into()
                }
            }
            fn build(&self) -> Page {
                if let Some(v) = &self.saved {
                    let mut b = PageBuilder::new("Done", "/done");
                    b.toast("Saved");
                    b.heading(1, format!("Saved {v}"));
                    b.finish()
                } else if self.on_form {
                    let mut b = PageBuilder::new("Form", "/form");
                    b.heading(1, "Entry form");
                    b.form("f", |b| {
                        b.text_input("amount", "Amount", "0.00");
                        b.button("save", "Save entry");
                    });
                    if self.promo_open {
                        b.modal("promo", |b| {
                            b.text("Subscribe to our newsletter for weekly tips!");
                            b.button("promo-no", "No thanks");
                        });
                    }
                    b.finish()
                } else {
                    let mut b = PageBuilder::new("Start", "/start");
                    b.button("next", "Open entry form");
                    b.finish()
                }
            }
            fn on_event(&mut self, ev: SemanticEvent) -> bool {
                match ev {
                    SemanticEvent::Activated { name, fields, .. } => match name.as_str() {
                        "next" => {
                            self.on_form = true;
                            if !self.promo_shown {
                                self.promo_open = true;
                                self.promo_shown = true;
                            }
                            true
                        }
                        "save" => {
                            self.saved = fields
                                .into_iter()
                                .find(|(n, _)| n == "amount")
                                .map(|(_, v)| v);
                            true
                        }
                        "promo-no" => {
                            self.promo_open = false;
                            true
                        }
                        _ => false,
                    },
                    SemanticEvent::Dismissed { name } if name == "promo" => {
                        self.promo_open = false;
                        true
                    }
                    _ => false,
                }
            }
        }

        let sop = eclair_workflow::Sop::from_texts(
            "Enter the amount",
            &[
                "Click the 'Open entry form' button",
                "Type \"125.00\" into the Amount field",
                "Click the 'Save entry' button",
            ],
        );
        let mut model = FmModel::new(ModelProfile::oracle(), 3);
        let mut session = Session::new(Box::new(PopupApp {
            on_form: false,
            promo_open: false,
            promo_shown: false,
            saved: None,
        }));
        let cfg = ExecConfig {
            sop: Some(sop),
            strategy: GroundingStrategy::SomHtml,
            max_steps: 8,
            retry_failed: true,
            escape_popups: true,
        };
        let r = run_on_session(&mut model, &mut session, "Enter the amount", &cfg);
        assert!(
            r.log
                .iter()
                .any(|l| l.contains("dismissed unexpected dialog")),
            "the agent must escape the promo: {:#?}",
            r.log
        );
        assert_eq!(session.url(), "/done", "{:#?}", r.log);
    }

    #[test]
    fn unknown_steps_fail_gracefully() {
        let t = task("gitlab-03");
        let mut sop = t.gold_sop.clone();
        sop.push("Perform the quarterly reconciliation ritual");
        let mut model = FmModel::new(ModelProfile::oracle(), 2);
        let cfg = ExecConfig::with_sop(sop).budgeted(t.gold_trace.len() + 2);
        let r = run_task(&mut model, &t, &cfg);
        // The core steps still succeed; the nonsense step is skipped by the
        // follower (Unknown → skip), so the task completes.
        assert!(r.success, "{:#?}", r.log);
    }
}

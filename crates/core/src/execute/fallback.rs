//! Step-scoped FM fallback: repair exactly one broken bot step.
//!
//! The hybrid executor (`eclair-hybrid`) replays a compiled script at
//! zero token cost until a step drifts — the selector misses, the click
//! lands displaced, the effect bounces. This module is the surgical
//! entry point it falls back to: ground the step's recorded query with
//! the FM (paying tokens for *this step only*), dispatch the step's
//! operation with the executor's chaos-hardened verification
//! (landing-point check, irrelevant-modal escape, login-interstitial
//! recovery), and report the anchor the repair actually landed on so the
//! recompiler can splice a drift-resistant selector back into the
//! script.

use eclair_fm::FmModel;
use eclair_gui::event::EffectKind;
use eclair_gui::{GuiSurface, Key, Point, UserEvent};
use eclair_rpa::RpaOp;

use crate::execute::executor::{
    click_at, escape_if_irrelevant_modal, locate, relogin_if_expired, ExecConfig,
};
use crate::execute::parse::StepIntent;

/// Where an FM repair landed: the programmatic name and visible label of
/// the widget the repaired operation resolved to, plus the click point
/// (viewport space at repair time). The recompiler turns this into the
/// most drift-resistant selector available (name > label > point).
#[derive(Debug, Clone, PartialEq)]
pub struct RepairedAnchor {
    /// Programmatic name of the widget hit ("" when unnamed).
    pub name: String,
    /// Visible label of the widget hit ("" when unlabeled).
    pub label: String,
    /// The verified click point, viewport space.
    pub point: Point,
}

/// Repair one bot step: FM-ground `query` on the live surface and
/// dispatch `op` against the grounded point, verifying the effect the
/// way the full executor would. On failure, runs the recovery ladder
/// (escape an irrelevant modal, re-login after a session-expiry
/// redirect) and retries once. Tokens are spent only on the grounding
/// and perception calls this one step needs.
pub fn repair_step<S: GuiSurface>(
    model: &mut FmModel,
    session: &mut S,
    cfg: &ExecConfig,
    query: &str,
    op: &RpaOp,
) -> Result<RepairedAnchor, String> {
    // A redirect may already have landed us on the login interstitial;
    // recover before burning grounding tokens on the wrong page.
    let _ = relogin_if_expired(session);
    match ground_and_dispatch(model, session, cfg, query, op) {
        Ok(anchor) => Ok(anchor),
        Err(first) => {
            let intent = StepIntent::Click {
                target: query.to_string(),
            };
            let cleared = escape_if_irrelevant_modal(model, session, &intent);
            let relogged = relogin_if_expired(session);
            if cleared || relogged || cfg.retry_failed {
                ground_and_dispatch(model, session, cfg, query, op)
                    .map_err(|second| format!("{first}; after recovery: {second}"))
            } else {
                Err(first)
            }
        }
    }
}

/// One grounding + dispatch pass with the executor's effect checks.
fn ground_and_dispatch<S: GuiSurface>(
    model: &mut FmModel,
    session: &mut S,
    cfg: &ExecConfig,
    query: &str,
    op: &RpaOp,
) -> Result<RepairedAnchor, String> {
    let pt = locate(model, session, cfg, query)?;
    let d = click_at(session, pt)?;
    let anchor = RepairedAnchor {
        name: d.hit.as_ref().map(|(n, _)| n.clone()).unwrap_or_default(),
        label: d.hit.as_ref().map(|(_, l)| l.clone()).unwrap_or_default(),
        point: pt,
    };
    match op {
        RpaOp::Click => {
            if d.effect == EffectKind::NoOp {
                return Err(format!("click on '{query}' hit nothing"));
            }
        }
        RpaOp::Type(text) => {
            if d.effect != EffectKind::Focused {
                return Err(format!("'{query}' is not an editable field"));
            }
            if session.dispatch(UserEvent::Type(text.clone())).effect != EffectKind::Typed {
                return Err("typing had no effect (no field focused)".into());
            }
        }
        RpaOp::Replace(text) => {
            if d.effect != EffectKind::Focused {
                return Err(format!("'{query}' is not an editable field"));
            }
            for _ in 0..60 {
                session.dispatch(UserEvent::Press(Key::Backspace));
            }
            if session.dispatch(UserEvent::Type(text.clone())).effect != EffectKind::Typed {
                return Err("replacement typing had no effect".into());
            }
        }
    }
    Ok(anchor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_fm::FmProfile;
    use eclair_sites::tasks::all_tasks;

    fn oracle() -> FmModel {
        FmProfile::Oracle.instantiate(7)
    }

    #[test]
    fn repairs_a_click_step_and_reports_the_anchor() {
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "gitlab-01")
            .unwrap();
        let mut session = task.launch();
        let mut model = oracle();
        let cfg = ExecConfig::with_sop(task.gold_sop.clone());
        let anchor = repair_step(
            &mut model,
            &mut session,
            &cfg,
            "the New issue button",
            &RpaOp::Click,
        )
        .expect("oracle grounding repairs the step");
        assert!(
            !anchor.name.is_empty() || !anchor.label.is_empty(),
            "repair must report where it landed: {anchor:?}"
        );
        assert!(
            model.meter().total_tokens() > 0,
            "a repair pays grounding tokens"
        );
    }

    #[test]
    fn effect_mismatch_errors_without_panicking() {
        // Typing into a button: the grounded click activates instead of
        // focusing, so the repair must fail loudly — not claim success.
        let task = all_tasks()
            .into_iter()
            .find(|t| t.id == "gitlab-01")
            .unwrap();
        let mut session = task.launch();
        let mut model = oracle();
        let cfg = ExecConfig::with_sop(task.gold_sop.clone());
        let err = repair_step(
            &mut model,
            &mut session,
            &cfg,
            "the New issue button",
            &RpaOp::Type("oops".into()),
        )
        .unwrap_err();
        assert!(err.contains("not an editable field"), "{err}");
    }
}

//! Table 3 — (Execute) grounding accuracy: model × bounding-box source ×
//! element size, on the two synthetic corpora.
//!
//! Accuracy criterion is the paper's: the center of the model's prediction
//! must land inside the target's true box. The HTML bbox source is only
//! evaluated on WebUI-sim (the paper excluded Mind2Web's HTML boxes as
//! unreliable).

use eclair_fm::{FmModel, ModelProfile};
use eclair_gui::SizeBucket;
use eclair_metrics::PaperComparison;
use eclair_trace::RunSummary;
use serde::{Deserialize, Serialize};

use crate::calibration;
use crate::execute::ground::{ground_click, GroundView, GroundingStrategy};
use crate::experiments::grounding_corpus::{generate, Corpus, GroundingSample};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Table3Config {
    /// Seed base.
    pub seed: u64,
    /// Page count per corpus; `None` uses the paper's sizes (302 / 120).
    pub pages: Option<usize>,
}

impl Default for Table3Config {
    fn default() -> Self {
        Self {
            seed: calibration::SEED,
            pages: None,
        }
    }
}

/// One cell group: a (model, source, corpus) row with per-bucket accuracy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Model name.
    pub model: String,
    /// Bbox source label ("-", "YOLO", "HTML").
    pub source: String,
    /// Corpus label.
    pub corpus: String,
    /// Accuracy on small / medium / large targets.
    pub by_bucket: [f64; 3],
    /// Overall accuracy.
    pub overall: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// All rows, paper order.
    pub rows: Vec<Table3Row>,
    /// Trace rollup across every grounding call the experiment made.
    pub trace: RunSummary,
}

fn eval(
    profile: &ModelProfile,
    strategy: GroundingStrategy,
    samples: &[GroundingSample],
    seed: u64,
    trace: &mut RunSummary,
) -> ([f64; 3], f64) {
    let mut hits = [0usize; 3];
    let mut totals = [0usize; 3];
    for (i, s) in samples.iter().enumerate() {
        let mut model = FmModel::new(profile.clone(), seed + i as u64);
        let shot = s.page.screenshot_at(0);
        let view = GroundView {
            shot: &shot,
            page: Some(&s.page),
            scroll_y: 0,
        };
        let (pt, _) = ground_click(&mut model, strategy, &view, &s.description);
        let bucket = match s.truth.size_bucket() {
            SizeBucket::Small => 0,
            SizeBucket::Medium => 1,
            SizeBucket::Large => 2,
        };
        totals[bucket] += 1;
        if pt.map(|p| s.truth.contains(p)).unwrap_or(false) {
            hits[bucket] += 1;
        }
        trace.merge(&model.trace().summary());
    }
    let acc = |h: usize, t: usize| if t == 0 { 0.0 } else { h as f64 / t as f64 };
    let by_bucket = [
        acc(hits[0], totals[0]),
        acc(hits[1], totals[1]),
        acc(hits[2], totals[2]),
    ];
    let overall = acc(hits.iter().sum(), totals.iter().sum());
    (by_bucket, overall)
}

/// Run the experiment.
pub fn run(cfg: Table3Config) -> Table3Result {
    let mut rows = Vec::new();
    let mut trace = RunSummary::default();
    let corpora = [Corpus::Mind2WebSim, Corpus::WebUiSim];
    let samples: Vec<(Corpus, Vec<GroundingSample>)> = corpora
        .iter()
        .map(|&c| {
            let n = cfg.pages.unwrap_or_else(|| c.paper_size());
            (c, generate(c, n, cfg.seed ^ 0xC0FFEE))
        })
        .collect();
    let gpt4 = ModelProfile::gpt4v();
    let cog = ModelProfile::cogagent_18b();
    let plans: Vec<(&ModelProfile, GroundingStrategy, &[Corpus])> = vec![
        (&gpt4, GroundingStrategy::Native, &corpora),
        (&gpt4, GroundingStrategy::SomYolo, &corpora),
        (&gpt4, GroundingStrategy::SomHtml, &corpora[1..]), // WebUI only
        (&cog, GroundingStrategy::Native, &corpora),
    ];
    for (profile, strategy, applicable) in plans {
        for (corpus, corpus_samples) in &samples {
            if !applicable.contains(corpus) {
                continue;
            }
            let (by_bucket, overall) =
                eval(profile, strategy, corpus_samples, cfg.seed, &mut trace);
            rows.push(Table3Row {
                model: profile.name.clone(),
                source: strategy.label().to_string(),
                corpus: corpus.label().to_string(),
                by_bucket,
                overall,
            });
        }
    }
    Table3Result { rows, trace }
}

impl Table3Result {
    fn find(&self, model: &str, source: &str, corpus: &str) -> Option<&Table3Row> {
        self.rows
            .iter()
            .find(|r| r.model == model && r.source == source && r.corpus == corpus)
    }

    /// Paper-vs-measured on the overall columns.
    pub fn paper_comparison(&self) -> PaperComparison {
        let mut c = PaperComparison::new("Table 3 (Execute): grounding accuracy");
        let cells: &[(&str, &str, &str, f64)] = &[
            ("GPT-4", "-", "Mind2Web", 0.07),
            ("GPT-4", "-", "WebUI", 0.05),
            ("GPT-4", "YOLO", "Mind2Web", 0.62),
            ("GPT-4", "YOLO", "WebUI", 0.58),
            ("GPT-4", "HTML", "WebUI", 0.60),
            ("CogAgent", "-", "Mind2Web", 0.71),
            ("CogAgent", "-", "WebUI", 0.70),
        ];
        for (model, source, corpus, paper) in cells {
            if let Some(row) = self.find(model, source, corpus) {
                // HTML ground-truth boxes get a wider band: our synthetic
                // DOM text is cleaner than real Magento markup, which makes
                // SoM-HTML selection somewhat easier than the paper's.
                let tol = if *source == "HTML" { 0.16 } else { 0.13 };
                c.push(
                    format!("{model}/{source}/{corpus} overall"),
                    *paper,
                    row.overall,
                    tol,
                );
            }
        }
        c
    }

    /// The qualitative Table 3 claims.
    pub fn shape_holds(&self) -> Result<(), String> {
        let need = |m: &str, s: &str, c: &str| {
            self.find(m, s, c)
                .cloned()
                .ok_or_else(|| format!("missing row {m}/{s}/{c}"))
        };
        for corpus in ["Mind2Web", "WebUI"] {
            let raw = need("GPT-4", "-", corpus)?;
            let som = need("GPT-4", "YOLO", corpus)?;
            let cog = need("CogAgent", "-", corpus)?;
            if raw.overall > 0.25 {
                return Err(format!(
                    "raw GPT-4 grounding must be poor on {corpus}: {:.2}",
                    raw.overall
                ));
            }
            if som.overall < raw.overall + 0.3 {
                return Err(format!(
                    "set-of-marks must transform GPT-4 grounding on {corpus}: {:.2} vs {:.2}",
                    som.overall, raw.overall
                ));
            }
            // Small epsilon: at smoke-run page counts the two sit within
            // a few samples of each other; full-size runs separate them.
            if cog.overall + 0.05 < som.overall {
                return Err(format!(
                    "CogAgent native must beat GPT-4+SoM on {corpus}: {:.2} vs {:.2}",
                    cog.overall, som.overall
                ));
            }
            // Small elements are the hard case for GPT-4+SoM; CogAgent's
            // small-element advantage is the paper's headline for it.
            if cog.by_bucket[0] < som.by_bucket[0] {
                return Err(format!(
                    "CogAgent must win on small elements ({corpus}): {:.2} vs {:.2}",
                    cog.by_bucket[0], som.by_bucket[0]
                ));
            }
        }
        // YOLO ≈ HTML for GPT-4 on WebUI (detection is not the bottleneck).
        let yolo = need("GPT-4", "YOLO", "WebUI")?;
        let html = need("GPT-4", "HTML", "WebUI")?;
        if (yolo.overall - html.overall).abs() > 0.15 {
            return Err(format!(
                "YOLO and HTML boxes should perform similarly: {:.2} vs {:.2}",
                yolo.overall, html.overall
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_matches_paper() {
        // Smaller corpora keep the test fast; the bench uses paper sizes.
        let result = run(Table3Config {
            pages: Some(90),
            ..Default::default()
        });
        result.shape_holds().expect("Table 3 orderings hold");
    }

    #[test]
    fn rows_cover_the_paper_grid() {
        let result = run(Table3Config {
            pages: Some(20),
            ..Default::default()
        });
        assert_eq!(result.rows.len(), 7, "{:#?}", result.rows);
    }
}

//! Table 4 — (Validate) the four self-monitoring tasks, scored as
//! precision/recall/F1 exactly as the paper constructs them:
//!
//! * **Actuation** — positives are real (s, a, s′) transitions from the 30
//!   demonstrations; negatives pair each state with itself (s′ = s), three
//!   per positive;
//! * **Integrity Constraint** — positives are (c, s) where c is the
//!   canonical constraint of the action taken *from* s (verified to hold
//!   by the oracle); negatives re-pair c with a random earlier state;
//! * **Workflow Completion** — positives are full recordings, negatives
//!   are randomly truncated ones;
//! * **Workflow Trajectory** — positives are faithful recordings, negatives
//!   are shuffled or frame-deleted ones.

use eclair_fm::{FmModel, ModelProfile};
use eclair_metrics::{BinaryConfusion, PaperComparison};
use eclair_sites::all_tasks;
use eclair_trace::RunSummary;
use eclair_workflow::IntegrityConstraint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::calibration;
use crate::demonstrate::record_gold_demo;
use crate::validate::{check_actuation, check_completion, check_integrity, check_trajectory};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Table4Config {
    /// Seed base.
    pub seed: u64,
    /// Number of tasks (≤30).
    pub tasks: usize,
}

impl Default for Table4Config {
    fn default() -> Self {
        Self {
            seed: calibration::SEED,
            tasks: 30,
        }
    }
}

/// One validation row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Row label as in the paper.
    pub eval_type: String,
    /// Confusion counts (P/R/F1 derive from these).
    pub confusion: BinaryConfusion,
}

impl Table4Row {
    /// Precision.
    pub fn precision(&self) -> f64 {
        self.confusion.precision()
    }
    /// Recall.
    pub fn recall(&self) -> f64 {
        self.confusion.recall()
    }
    /// F1.
    pub fn f1(&self) -> f64 {
        self.confusion.f1()
    }
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Result {
    /// Rows in paper order: Actuation, Integrity Constraint, Workflow
    /// Completion, Workflow Trajectory.
    pub rows: Vec<Table4Row>,
    /// Trace rollup across every FM call the experiment made.
    pub trace: RunSummary,
}

fn actuation_row(cfg: &Table4Config, model: &mut FmModel) -> Table4Row {
    let tasks: Vec<_> = all_tasks().into_iter().take(cfg.tasks).collect();
    let mut cm = BinaryConfusion::default();
    for task in &tasks {
        let rec = record_gold_demo(task);
        for i in 0..rec.num_actions() {
            let Some((s, a, s2)) = rec.transition(i) else {
                continue;
            };
            let desc = a.describe();
            // Positive: the true transition.
            let j = check_actuation(model, s, &desc, s2);
            cm.observe(j.verdict, true);
            // Three negatives: the action "ran" but the screen is unchanged.
            for _ in 0..3 {
                let j = check_actuation(model, s, &desc, s);
                cm.observe(j.verdict, false);
            }
        }
    }
    Table4Row {
        eval_type: "Actuation".into(),
        confusion: cm,
    }
}

fn integrity_row(cfg: &Table4Config, model: &mut FmModel, rng: &mut StdRng) -> Table4Row {
    let tasks: Vec<_> = all_tasks().into_iter().take(cfg.tasks).collect();
    let mut cm = BinaryConfusion::default();
    for task in &tasks {
        // Constraints are annotated at *raw-event* granularity, the level
        // the paper's dataset records: a click needs its target visible and
        // enabled; a keystroke needs a focused field (which a static frame
        // can only show via the caret).
        let rec = crate::demonstrate::record_gold_demo(task);
        let mut session = task.launch();
        let mut shots = Vec::new();
        let mut pairs: Vec<(IntegrityConstraint, usize)> = Vec::new();
        let mut prev_was_burst = false;
        for entry in &rec.log {
            let constraint = match &entry.event {
                eclair_gui::UserEvent::Click(_) => {
                    prev_was_burst = false;
                    entry.target_text.as_ref().map(|t| {
                        IntegrityConstraint::for_action(&eclair_workflow::Action::Click(
                            eclair_workflow::TargetRef::Label(t.clone()),
                        ))
                    })
                }
                eclair_gui::UserEvent::Type(text) => {
                    // One constraint per typing burst.
                    let first = !prev_was_burst;
                    prev_was_burst = true;
                    first.then(|| {
                        IntegrityConstraint::for_action(&eclair_workflow::Action::Type {
                            target: None,
                            text: text.clone(),
                        })
                    })
                }
                _ => {
                    prev_was_burst = matches!(
                        entry.event,
                        eclair_gui::UserEvent::Press(eclair_gui::Key::Backspace)
                    ) && prev_was_burst;
                    None
                }
            };
            let holds = constraint
                .as_ref()
                .map(|c| c.holds_oracle(&session))
                .unwrap_or(false);
            let shot = session.screenshot();
            shots.push(shot);
            if let (Some(c), true) = (constraint, holds) {
                pairs.push((c, shots.len() - 1));
            }
            session.dispatch(entry.event.clone());
        }
        for (constraint, idx) in &pairs {
            let j = check_integrity(model, constraint, &shots[*idx]);
            cm.observe(j.verdict, true);
            // Negative: the same constraint at a random earlier state where
            // it does not hold (skip if it happens to hold there too).
            if *idx > 0 {
                let earlier = rng.gen_range(0..*idx);
                let j = check_integrity(model, constraint, &shots[earlier]);
                cm.observe(j.verdict, false);
            }
        }
    }
    Table4Row {
        eval_type: "Integrity Constraint".into(),
        confusion: cm,
    }
}

fn completion_row(cfg: &Table4Config, model: &mut FmModel, rng: &mut StdRng) -> Table4Row {
    let tasks: Vec<_> = all_tasks().into_iter().take(cfg.tasks).collect();
    let mut cm = BinaryConfusion::default();
    for task in &tasks {
        let rec = record_gold_demo(task);
        let j = check_completion(model, &rec, &task.intent);
        cm.observe(j.verdict, true);
        let cut = rng.gen_range(1..rec.num_actions().max(2));
        let truncated = rec.truncated(cut);
        let j = check_completion(model, &truncated, &task.intent);
        cm.observe(j.verdict, false);
    }
    Table4Row {
        eval_type: "Workflow Completion".into(),
        confusion: cm,
    }
}

fn trajectory_row(cfg: &Table4Config, model: &mut FmModel, rng: &mut StdRng) -> Table4Row {
    let tasks: Vec<_> = all_tasks().into_iter().take(cfg.tasks).collect();
    let mut cm = BinaryConfusion::default();
    for task in &tasks {
        let rec = record_gold_demo(task);
        let j = check_trajectory(model, &rec, &task.gold_sop);
        cm.observe(j.verdict, true);
        // Negative: shuffle or delete, per the paper's construction.
        let n = rec.num_actions();
        let corrupted = if rng.gen_bool(0.5) && n >= 2 {
            let i = rng.gen_range(0..n);
            let mut j2 = rng.gen_range(0..n);
            if j2 == i {
                j2 = (j2 + n / 2).max(1) % n;
            }
            rec.with_swapped(i.min(j2), i.max(j2))
        } else {
            let mut r = rec.with_deleted(rng.gen_range(0..n));
            if r.num_actions() > 2 {
                r = r.with_deleted(rng.gen_range(0..r.num_actions()));
            }
            r
        };
        let j = check_trajectory(model, &corrupted, &task.gold_sop);
        cm.observe(j.verdict, false);
    }
    Table4Row {
        eval_type: "Workflow Trajectory".into(),
        confusion: cm,
    }
}

/// Run the experiment.
pub fn run(cfg: Table4Config) -> Table4Result {
    let mut model = FmModel::new(ModelProfile::gpt4v(), cfg.seed);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBADC0DE);
    let rows = vec![
        actuation_row(&cfg, &mut model),
        integrity_row(&cfg, &mut model, &mut rng),
        completion_row(&cfg, &mut model, &mut rng),
        trajectory_row(&cfg, &mut model, &mut rng),
    ];
    let trace = model.trace().summary();
    Table4Result { rows, trace }
}

impl Table4Result {
    fn row(&self, name: &str) -> Option<&Table4Row> {
        self.rows.iter().find(|r| r.eval_type == name)
    }

    /// Paper-vs-measured cells.
    pub fn paper_comparison(&self) -> PaperComparison {
        let mut c = PaperComparison::new("Table 4 (Validate): self-monitoring");
        let cells: &[(&str, f64, f64)] = &[
            ("Actuation", 0.95, 0.85),
            ("Integrity Constraint", 0.67, 0.36),
            ("Workflow Completion", 0.90, 0.84),
            ("Workflow Trajectory", 0.88, 0.83),
        ];
        for (name, p, r) in cells {
            if let Some(row) = self.row(name) {
                c.push(format!("{name} precision"), *p, row.precision(), 0.15);
                c.push(format!("{name} recall"), *r, row.recall(), 0.17);
            }
        }
        c
    }

    /// The qualitative Table 4 claims: high-level checks work, the
    /// step-level integrity check collapses.
    pub fn shape_holds(&self) -> Result<(), String> {
        let f1 = |name: &str| {
            self.row(name)
                .map(|r| r.f1())
                .ok_or_else(|| format!("missing row {name}"))
        };
        let actuation = f1("Actuation")?;
        let integrity = f1("Integrity Constraint")?;
        let completion = f1("Workflow Completion")?;
        let trajectory = f1("Workflow Trajectory")?;
        if actuation < 0.75 {
            return Err(format!(
                "actuation detection must be strong: {actuation:.2}"
            ));
        }
        if completion < 0.7 || trajectory < 0.7 {
            return Err(format!(
                "workflow-level checks must be strong: {completion:.2} / {trajectory:.2}"
            ));
        }
        if integrity > completion - 0.15 {
            return Err(format!(
                "integrity checking must collapse relative to the others: {integrity:.2}"
            ));
        }
        let int_recall = self.row("Integrity Constraint").expect("present").recall();
        if int_recall > 0.6 {
            return Err(format!(
                "integrity recall must be low (static frames hide focus): {int_recall:.2}"
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape_matches_paper() {
        let result = run(Table4Config::default());
        result.shape_holds().expect("Table 4 orderings hold");
        let cmp = result.paper_comparison();
        assert!(
            cmp.passed() >= 5,
            "most Table 4 cells within band:\n{}",
            cmp.render()
        );
    }
}

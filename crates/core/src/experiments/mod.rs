//! Experiment harnesses: one module per paper artifact, each returning a
//! structured result the bench binaries print and EXPERIMENTS.md records.
//!
//! | module | regenerates |
//! |---|---|
//! | [`table1`] | Table 1 — SOP generation under WD / WD+KF / WD+KF+ACT |
//! | [`table2`] | Table 2 — next-action suggestion & end-to-end completion ± SOP |
//! | [`table3`] | Table 3 — grounding accuracy by model × bbox source × size |
//! | [`table4`] | Table 4 — the four Validate tasks (P/R/F1) |
//! | [`fig2`]   | Figure 2 — the workflow-automatability taxonomy |
//! | [`case_study`] | Section 3 — RPA deployment dynamics vs ECLAIR |
//! | [`grounding_corpus`] | the synthetic Mind2Web-sim / WebUI-sim page sets |

pub mod case_study;
pub mod fig2;
pub mod grounding_corpus;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

//! Table 2 — (Execute) next-action suggestion and end-to-end completion,
//! with and without SOP guidance.
//!
//! * Suggestion accuracy is **teacher-forced**: the gold prefix is executed
//!   by the oracle, the model sees the real resulting screen plus the gold
//!   history, and its suggested next step is judged semantically against
//!   the gold step.
//! * Completion is **autonomous**: the executor runs until Done or budget,
//!   and the task's functional check decides.

use eclair_fm::{FmModel, ModelProfile};
use eclair_metrics::PaperComparison;
use eclair_sites::all_tasks;
use eclair_trace::RunSummary;
use eclair_workflow::matcher::steps_match;
use eclair_workflow::replay::execute;
use serde::{Deserialize, Serialize};

use crate::calibration;
use crate::execute::executor::{run_task, ExecConfig};
use crate::execute::suggest::{suggest_next, SuggestState, Suggestion};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Table2Config {
    /// Seed base.
    pub seed: u64,
    /// Number of tasks (≤30).
    pub tasks: usize,
    /// Autonomous repetitions per task per condition.
    pub reps: usize,
}

impl Default for Table2Config {
    fn default() -> Self {
        Self {
            seed: calibration::SEED,
            tasks: 30,
            reps: 3,
        }
    }
}

/// One condition's row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Whether the SOP was provided.
    pub with_sop: bool,
    /// Teacher-forced next-action suggestion accuracy.
    pub suggestion_acc: f64,
    /// Autonomous end-to-end completion rate.
    pub completion: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// Without-SOP row then with-SOP row (paper order).
    pub rows: Vec<Table2Row>,
    /// Trace rollup across every FM call the experiment made.
    pub trace: RunSummary,
}

fn suggestion_accuracy(cfg: &Table2Config, with_sop: bool, trace: &mut RunSummary) -> f64 {
    let tasks: Vec<_> = all_tasks().into_iter().take(cfg.tasks.max(1)).collect();
    let mut correct = 0usize;
    let mut total = 0usize;
    for (ti, task) in tasks.iter().enumerate() {
        let mut model = FmModel::new(
            ModelProfile::gpt4v(),
            cfg.seed + 31 * ti as u64 + u64::from(with_sop),
        );
        // Walk the gold trace; before each step, ask for a suggestion.
        let mut session = task.launch();
        for k in 0..task.gold_sop.len() {
            let shot = session.screenshot();
            let history: Vec<String> = task.gold_sop.steps[..k]
                .iter()
                .map(|s| s.text.clone())
                .collect();
            let mut state = SuggestState::at(k);
            let suggestion = suggest_next(
                &mut model,
                &task.intent,
                with_sop.then_some(&task.gold_sop),
                &mut state,
                &history,
                &shot,
            );
            total += 1;
            if let Suggestion::Act(_, text) = suggestion {
                if steps_match(&text, &task.gold_sop.steps[k].text) {
                    correct += 1;
                }
            }
            // Teacher forcing: execute the *gold* action regardless.
            if k < task.gold_trace.len() {
                let _ = execute(&mut session, &task.gold_trace.actions[k]);
            }
        }
        trace.merge(&model.trace().summary());
    }
    correct as f64 / total.max(1) as f64
}

fn completion_rate(cfg: &Table2Config, with_sop: bool, trace: &mut RunSummary) -> f64 {
    let tasks: Vec<_> = all_tasks().into_iter().take(cfg.tasks.max(1)).collect();
    let mut wins = 0usize;
    let mut total = 0usize;
    for rep in 0..cfg.reps.max(1) as u64 {
        for (ti, task) in tasks.iter().enumerate() {
            let exec_cfg = if with_sop {
                ExecConfig::with_sop(task.gold_sop.clone())
            } else {
                ExecConfig::without_sop()
            }
            .budgeted(task.gold_trace.len());
            let mut model = FmModel::new(
                ModelProfile::gpt4v(),
                cfg.seed + 1000 * (rep + 1) + ti as u64 + 500 * u64::from(with_sop),
            );
            total += 1;
            if run_task(&mut model, task, &exec_cfg).success {
                wins += 1;
            }
            trace.merge(&model.trace().summary());
        }
    }
    wins as f64 / total.max(1) as f64
}

/// Run the experiment.
pub fn run(cfg: Table2Config) -> Table2Result {
    let mut trace = RunSummary::default();
    let rows = vec![
        Table2Row {
            with_sop: false,
            suggestion_acc: suggestion_accuracy(&cfg, false, &mut trace),
            completion: completion_rate(&cfg, false, &mut trace),
        },
        Table2Row {
            with_sop: true,
            suggestion_acc: suggestion_accuracy(&cfg, true, &mut trace),
            completion: completion_rate(&cfg, true, &mut trace),
        },
    ];
    Table2Result { rows, trace }
}

impl Table2Result {
    /// Paper-vs-measured cells.
    pub fn paper_comparison(&self) -> PaperComparison {
        let mut c = PaperComparison::new("Table 2 (Execute): action suggestion & completion");
        let without = &self.rows[0];
        let with = &self.rows[1];
        // Our WD prior plans more conservatively than GPT-4 (templates, not
        // free generation), so the no-SOP teacher-forced accuracy sits
        // lower; the band reflects that documented substitution.
        c.push("suggestion acc w/o SOP", 0.83, without.suggestion_acc, 0.20);
        c.push("suggestion acc w/ SOP", 0.92, with.suggestion_acc, 0.08);
        c.push("completion w/o SOP", 0.17, without.completion, 0.10);
        c.push("completion w/ SOP", 0.40, with.completion, 0.12);
        c
    }

    /// The headline claims: SOPs help suggestion and roughly double
    /// completion; completion trails suggestion badly (grounding gap).
    pub fn shape_holds(&self) -> Result<(), String> {
        let without = &self.rows[0];
        let with = &self.rows[1];
        if with.suggestion_acc <= without.suggestion_acc {
            return Err(format!(
                "SOP must improve suggestion: {:.2} vs {:.2}",
                with.suggestion_acc, without.suggestion_acc
            ));
        }
        if with.completion < without.completion * 1.5 {
            return Err(format!(
                "SOP should roughly double completion: {:.2} vs {:.2}",
                with.completion, without.completion
            ));
        }
        if with.completion > with.suggestion_acc - 0.2 {
            return Err(format!(
                "completion must trail suggestion (grounding gap): {:.2} vs {:.2}",
                with.completion, with.suggestion_acc
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        let result = run(Table2Config {
            tasks: 30,
            reps: 2,
            ..Default::default()
        });
        result.shape_holds().expect("Table 2 orderings hold");
        let cmp = result.paper_comparison();
        assert!(
            cmp.passed() >= 3,
            "most Table 2 cells within band:\n{}",
            cmp.render()
        );
    }
}

//! Synthetic grounding corpora standing in for the Mind2Web and WebUI page
//! samples of Table 3 (302 and 120 pages respectively).
//!
//! The generators control what actually drives grounding difficulty:
//! element-size distribution (Mind2Web-style content pages are dense with
//! small links; WebUI-style app pages mix forms, buttons and cards),
//! label duplication (list rows repeating "View"/"Edit"/"Delete" — the
//! dominant ambiguity on real sites), and unlabeled icon targets.

use eclair_gui::{Page, PageBuilder, Rect, WidgetId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which corpus a sample came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corpus {
    /// Content-heavy pages (many small links, some buttons).
    Mind2WebSim,
    /// Application UI pages (forms, toolbars, cards).
    WebUiSim,
}

impl Corpus {
    /// Paper column label.
    pub fn label(&self) -> &'static str {
        match self {
            Corpus::Mind2WebSim => "Mind2Web",
            Corpus::WebUiSim => "WebUI",
        }
    }

    /// Corpus size used in the paper.
    pub fn paper_size(&self) -> usize {
        match self {
            Corpus::Mind2WebSim => 302,
            Corpus::WebUiSim => 120,
        }
    }
}

/// One grounding example: a page, a target element, and the description
/// handed to the model.
#[derive(Debug, Clone)]
pub struct GroundingSample {
    /// The page (already laid out).
    pub page: Page,
    /// The target widget.
    pub target: WidgetId,
    /// Its true viewport-space box.
    pub truth: Rect,
    /// The natural-language element description.
    pub description: String,
}

const NOUNS: &[&str] = &[
    "Report", "Invoice", "Account", "Ticket", "Campaign", "Document", "Policy", "Contract",
    "Order", "Shipment", "Budget", "Meeting", "Payroll", "Audit", "Claim", "Customer",
];
const VERBS: &[&str] = &["View", "Edit", "Delete", "Share", "Export", "Archive"];
const BUTTONS: &[&str] = &[
    "Save changes",
    "Submit request",
    "Create new",
    "Send message",
    "Download report",
    "Approve",
    "Reject",
    "Continue",
];
const FIELDS: &[(&str, &str)] = &[
    ("Full name", "Jane Doe"),
    ("Email address", "you@example.com"),
    ("Phone number", "+1 555 0100"),
    ("Company", "Acme Corp"),
    ("Subject", "Brief summary"),
    ("Amount", "0.00"),
];
const ICONS: &[&str] = &["Settings", "Notifications", "Help", "User menu", "Search"];

fn describe(page: &Page, id: WidgetId) -> String {
    let w = page.get(id);
    use eclair_gui::WidgetKind as K;
    match w.kind {
        K::Button => format!("the '{}' button", w.label),
        K::Link => format!("the '{}' link", w.label),
        K::Tab => format!("the '{}' tab", w.label),
        K::MenuItem => format!("the '{}' menu item", w.label),
        K::TextInput | K::TextArea | K::Select | K::PasswordInput => {
            format!("the {} field", w.label)
        }
        K::Checkbox | K::Radio => format!("the '{}' checkbox", w.label),
        K::Icon => format!("the {} icon", w.label.to_lowercase()),
        _ => format!("the '{}' element", w.label),
    }
}

/// A content page: heading, paragraphs, a dense list of rows each with
/// duplicated action links, a couple of buttons.
fn mind2web_page(rng: &mut StdRng, idx: usize) -> Page {
    let mut b = PageBuilder::new(format!("Article {idx}"), format!("/content/{idx}"));
    b.row(|b| {
        b.link("home", "Home");
        b.link("browse", "Browse");
        b.link("pricing", "Pricing");
        b.icon_button("search-icon", ICONS[idx % ICONS.len()]);
    });
    b.heading(1, format!("{} center", NOUNS[idx % NOUNS.len()]));
    b.text("Find, compare and manage everything from one place. The list below shows the most recent items in your workspace.");
    let rows = rng.gen_range(4..8);
    for r in 0..rows {
        let noun = NOUNS[(idx + r) % NOUNS.len()];
        b.row(|b| {
            b.link(format!("item-{r}"), format!("{noun} #{}", 100 + r));
            for v in VERBS.iter().take(3) {
                b.link(format!("{}-{r}", v.to_lowercase()), *v);
            }
        });
    }
    if rng.gen_bool(0.9) {
        b.button("cta", BUTTONS[idx % BUTTONS.len()]);
        if rng.gen_bool(0.75) {
            // Real content sites repeat their call-to-action.
            b.button("cta-2", BUTTONS[idx % BUTTONS.len()]);
        }
    }
    if rng.gen_bool(0.7) {
        // Hero banner call-to-action (the corpus' large-element band).
        let mut hero = eclair_gui::Widget::new(eclair_gui::WidgetKind::Button);
        hero.name = "hero-cta".into();
        hero.label = format!("Explore all {}s today", NOUNS[(idx * 11) % NOUNS.len()]).into();
        hero.fixed_w = Some(460);
        hero.fixed_h = Some(60);
        b.push(hero);
    }
    b.row(|b| {
        b.link("terms", "Terms of service");
        b.link("privacy", "Privacy");
        b.link("contact", "Contact us");
    });
    b.finish()
}

/// An app page: toolbar with tabs and icons, a form, a card with a large
/// primary button.
fn webui_page(rng: &mut StdRng, idx: usize) -> Page {
    let mut b = PageBuilder::new(format!("App {idx}"), format!("/app/{idx}"));
    b.row(|b| {
        b.tab("tab-overview", "Overview");
        b.tab("tab-activity", "Activity");
        b.tab("tab-settings", "Settings");
        b.icon_button("gear", ICONS[idx % ICONS.len()]);
        b.icon_button("bell", ICONS[(idx + 1) % ICONS.len()]);
    });
    b.heading(1, format!("{} workspace", NOUNS[(idx * 3) % NOUNS.len()]));
    b.form("form", |b| {
        let nf = rng.gen_range(2..4);
        for f in 0..nf {
            let (label, ph) = FIELDS[(idx + f) % FIELDS.len()];
            b.text_input(format!("f{f}"), label, ph);
        }
        if rng.gen_bool(0.5) {
            b.select(
                "priority",
                "Priority",
                &["Low", "Medium", "High"],
                Some("Medium"),
            );
        }
        if rng.gen_bool(0.5) {
            b.checkbox("notify", "Notify watchers", false);
        }
        b.row(|b| {
            b.button("primary", BUTTONS[(idx * 7) % BUTTONS.len()]);
            b.link("cancel", "Cancel");
        });
    });
    if rng.gen_bool(0.8) {
        // The duplicated submit button real app pages put below the fold
        // header (top toolbar + form footer).
        b.button("primary-2", BUTTONS[(idx * 7) % BUTTONS.len()]);
    }
    // A hero card with a large button.
    if rng.gen_bool(0.6) {
        let mut big = eclair_gui::Widget::new(eclair_gui::WidgetKind::Button);
        big.name = "hero".into();
        big.label = format!("Get started with {}", NOUNS[(idx * 5) % NOUNS.len()]).into();
        big.fixed_w = Some(420);
        big.fixed_h = Some(64);
        b.push(big);
    }
    b.finish()
}

/// Generate a corpus of grounding samples. Targets are drawn only from
/// elements inside the initial viewport; target-kind proportions follow
/// the corpus style.
pub fn generate(corpus: Corpus, n: usize, seed: u64) -> Vec<GroundingSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    let mut idx = 0usize;
    while out.len() < n {
        let page = match corpus {
            Corpus::Mind2WebSim => mind2web_page(&mut rng, idx),
            Corpus::WebUiSim => webui_page(&mut rng, idx),
        };
        idx += 1;
        let candidates: Vec<WidgetId> = page
            .interactive_widgets()
            .into_iter()
            .filter(|&id| {
                let b = page.get(id).bounds;
                b.bottom() <= 720 && b.w > 0 && !page.get(id).label.is_empty()
            })
            .collect();
        if candidates.is_empty() {
            continue;
        }
        // Weighted target choice: most benchmark descriptions point at
        // uniquely-labeled elements; ambiguous repeated-action links and
        // unlabeled icons appear, but not at their raw page frequency.
        let is_dup = |id: WidgetId| page.find_all_by_label(&page.get(id).label).len() > 1;
        let is_icon = |id: WidgetId| page.get(id).kind == eclair_gui::WidgetKind::Icon;
        let pick_class: f64 = rng.gen();
        let pool: Vec<WidgetId> = if pick_class < 0.15 {
            candidates
                .iter()
                .copied()
                .filter(|&id| is_icon(id))
                .collect()
        } else if pick_class < 0.45 {
            candidates
                .iter()
                .copied()
                .filter(|&id| is_dup(id) && !is_icon(id))
                .collect()
        } else {
            candidates
                .iter()
                .copied()
                .filter(|&id| !is_dup(id) && !is_icon(id))
                .collect()
        };
        let pool = if pool.is_empty() { candidates } else { pool };
        let target = pool[rng.gen_range(0..pool.len())];
        let truth = page.get(target).bounds;
        let description = describe(&page, target);
        out.push(GroundingSample {
            page,
            target,
            truth,
            description,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eclair_gui::SizeBucket;

    #[test]
    fn corpora_have_paper_sizes_and_are_deterministic() {
        let a = generate(Corpus::Mind2WebSim, 20, 1);
        let b = generate(Corpus::Mind2WebSim, 20, 1);
        assert_eq!(a.len(), 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.description, y.description);
            assert_eq!(x.truth, y.truth);
        }
        assert_eq!(Corpus::Mind2WebSim.paper_size(), 302);
        assert_eq!(Corpus::WebUiSim.paper_size(), 120);
    }

    #[test]
    fn all_size_buckets_are_represented() {
        for corpus in [Corpus::Mind2WebSim, Corpus::WebUiSim] {
            let samples = generate(corpus, 120, 3);
            let mut counts = [0usize; 3];
            for s in &samples {
                match s.truth.size_bucket() {
                    SizeBucket::Small => counts[0] += 1,
                    SizeBucket::Medium => counts[1] += 1,
                    SizeBucket::Large => counts[2] += 1,
                }
            }
            assert!(
                counts.iter().all(|&c| c >= 2),
                "{corpus:?}: every bucket populated: {counts:?}"
            );
        }
    }

    #[test]
    fn mind2web_skews_smaller_than_webui() {
        let m2w = generate(Corpus::Mind2WebSim, 150, 5);
        let webui = generate(Corpus::WebUiSim, 150, 5);
        let small_frac = |s: &[GroundingSample]| {
            s.iter()
                .filter(|x| x.truth.size_bucket() == SizeBucket::Small)
                .count() as f64
                / s.len() as f64
        };
        assert!(
            small_frac(&m2w) > small_frac(&webui),
            "content pages are denser with small links"
        );
    }

    #[test]
    fn descriptions_are_well_formed() {
        for s in generate(Corpus::WebUiSim, 40, 9) {
            assert!(s.description.starts_with("the "), "{}", s.description);
            assert!(s.truth.contains(s.truth.center()));
        }
    }

    #[test]
    fn duplicate_labels_exist_in_mind2web() {
        let samples = generate(Corpus::Mind2WebSim, 30, 11);
        let dup = samples.iter().any(|s| {
            let label = &s.page.get(s.target).label;
            s.page.find_all_by_label(label).len() > 1
        });
        assert!(dup, "list rows must create duplicate-label targets");
    }
}

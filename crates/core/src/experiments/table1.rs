//! Table 1 — (Demonstrate) SOP generation from demonstrations.
//!
//! For each of the 30 workflows: record a gold demonstration, generate an
//! SOP under each evidence level, score it against the human-written
//! reference (missing / incorrect / total / precision / recall), and
//! measure *correctness* by having an oracle-grounded follower execute the
//! generated SOP on a fresh session (the paper's "by following the GPT-4
//! SOP, can I complete the workflow?").

use eclair_fm::{FmModel, ModelProfile};
use eclair_metrics::{PaperComparison, Summary};
use eclair_sites::all_tasks;
use eclair_trace::RunSummary;
use eclair_workflow::score::score_sop;
use serde::{Deserialize, Serialize};

use crate::calibration;
use crate::demonstrate::{generate_sop, record_gold_demo, EvidenceLevel};
use crate::execute::executor::{run_task, ExecConfig};
use crate::execute::GroundingStrategy;

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct Table1Config {
    /// RNG seed base.
    pub seed: u64,
    /// Number of tasks to evaluate (≤30).
    pub tasks: usize,
}

impl Default for Table1Config {
    fn default() -> Self {
        Self {
            seed: calibration::SEED,
            tasks: 30,
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Method label ("WD", "WD+KF", "WD+KF+ACT", "Ground truth").
    pub method: String,
    /// Mean missing steps per SOP.
    pub missing: f64,
    /// Mean incorrect steps per SOP.
    pub incorrect: f64,
    /// Mean total steps per SOP.
    pub total: f64,
    /// Mean precision.
    pub precision: f64,
    /// Mean recall.
    pub recall: f64,
    /// Fraction of generated SOPs an oracle follower can complete the
    /// workflow with.
    pub correctness: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// Generated-method rows plus the ground-truth row, in paper order.
    pub rows: Vec<Table1Row>,
    /// Trace rollup across every FM call the experiment made.
    pub trace: RunSummary,
}

/// Can an oracle-grounded follower complete the workflow from this SOP?
fn sop_correct(
    task: &eclair_sites::TaskSpec,
    sop: &eclair_workflow::Sop,
    trace: &mut RunSummary,
) -> bool {
    let mut model = FmModel::new(ModelProfile::oracle(), 1);
    let cfg = ExecConfig {
        sop: Some(sop.clone()),
        strategy: GroundingStrategy::SomHtml,
        max_steps: (sop.len() * 2).max(8),
        retry_failed: true,
        escape_popups: true,
        relogin_expired: true,
        use_cache: true,
    };
    let ok = run_task(&mut model, task, &cfg).success;
    trace.merge(&model.trace().summary());
    ok
}

/// Run the experiment.
pub fn run(cfg: Table1Config) -> Table1Result {
    let tasks: Vec<_> = all_tasks().into_iter().take(cfg.tasks.max(1)).collect();
    let mut rows = Vec::new();
    let mut trace = RunSummary::default();
    for level in EvidenceLevel::all() {
        let mut missing = Summary::new();
        let mut incorrect = Summary::new();
        let mut total = Summary::new();
        let mut precision = Summary::new();
        let mut recall = Summary::new();
        let mut correct = 0usize;
        for (ti, task) in tasks.iter().enumerate() {
            let rec = record_gold_demo(task);
            let mut model = FmModel::new(ModelProfile::gpt4v(), cfg.seed + ti as u64);
            let sop = generate_sop(&mut model, &task.intent, Some(&rec), level);
            trace.merge(&model.trace().summary());
            let score = score_sop(&sop, &task.gold_sop);
            missing.push(score.missing as f64);
            incorrect.push(score.incorrect as f64);
            total.push(score.total as f64);
            precision.push(score.precision);
            recall.push(score.recall);
            if sop_correct(task, &sop, &mut trace) {
                correct += 1;
            }
        }
        rows.push(Table1Row {
            method: level.label().to_string(),
            missing: missing.mean(),
            incorrect: incorrect.mean(),
            total: total.mean(),
            precision: precision.mean(),
            recall: recall.mean(),
            correctness: correct as f64 / tasks.len() as f64,
        });
    }
    // Ground-truth reference row.
    let gt_total: f64 =
        tasks.iter().map(|t| t.gold_sop.len() as f64).sum::<f64>() / tasks.len() as f64;
    rows.push(Table1Row {
        method: "Ground truth".into(),
        missing: 0.0,
        incorrect: 0.0,
        total: gt_total,
        precision: 1.0,
        recall: 1.0,
        correctness: 1.0,
    });
    Table1Result { rows, trace }
}

impl Table1Result {
    /// Paper-vs-measured comparison (Table 1's published cells).
    pub fn paper_comparison(&self) -> PaperComparison {
        let mut c = PaperComparison::new("Table 1 (Demonstrate): SOP generation");
        let paper: &[(&str, f64, f64, f64)] = &[
            // (method, precision, recall, correctness)
            ("WD", 0.75, 0.81, 0.60),
            ("WD+KF", 0.89, 0.92, 0.90),
            ("WD+KF+ACT", 0.94, 0.95, 0.93),
        ];
        for (method, p, r, corr) in paper {
            if let Some(row) = self.rows.iter().find(|row| row.method == *method) {
                c.push(format!("{method} precision"), *p, row.precision, 0.15);
                c.push(format!("{method} recall"), *r, row.recall, 0.15);
                c.push(
                    format!("{method} correctness"),
                    *corr,
                    row.correctness,
                    0.20,
                );
            }
        }
        c
    }

    /// The qualitative claims Table 1 supports; each must hold for the
    /// reproduction to count.
    pub fn shape_holds(&self) -> Result<(), String> {
        let get = |m: &str| {
            self.rows
                .iter()
                .find(|r| r.method == m)
                .cloned()
                .ok_or_else(|| format!("missing row {m}"))
        };
        let wd = get("WD")?;
        let kf = get("WD+KF")?;
        let act = get("WD+KF+ACT")?;
        // ACT vs KF gets a small epsilon: at smoke-run granularity (8
        // tasks) both saturate near 1.0 and can swap by one SOP.
        if !(act.precision + 0.05 >= kf.precision && kf.precision > wd.precision) {
            return Err(format!(
                "precision must increase with evidence: {:.2} / {:.2} / {:.2}",
                wd.precision, kf.precision, act.precision
            ));
        }
        if !(act.incorrect <= kf.incorrect + 0.25 && kf.incorrect < wd.incorrect) {
            return Err(format!(
                "hallucinations must decrease with evidence: {:.2} / {:.2} / {:.2}",
                wd.incorrect, kf.incorrect, act.incorrect
            ));
        }
        if wd.total <= act.total {
            return Err("WD SOPs should be the most verbose".into());
        }
        // Correctness rises with evidence; KF vs WD gets a small epsilon
        // because both sit in the same regime at 30-task granularity.
        if !(act.correctness >= kf.correctness && kf.correctness + 0.05 >= wd.correctness) {
            return Err(format!(
                "correctness must increase with evidence: {:.2} / {:.2} / {:.2}",
                wd.correctness, kf.correctness, act.correctness
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_paper() {
        let result = run(Table1Config {
            tasks: 30,
            ..Default::default()
        });
        result.shape_holds().expect("Table 1 orderings hold");
        let cmp = result.paper_comparison();
        assert!(
            cmp.passed() >= cmp.rows.len() - 2,
            "most Table 1 cells within band:\n{}",
            cmp.render()
        );
    }

    #[test]
    fn ground_truth_row_is_reference() {
        let result = run(Table1Config {
            tasks: 5,
            ..Default::default()
        });
        let gt = result.rows.last().unwrap();
        assert_eq!(gt.method, "Ground truth");
        assert_eq!(gt.precision, 1.0);
        assert_eq!(gt.missing, 0.0);
        assert!(gt.total > 3.0);
    }
}

//! Figure 2 — the workflow-automatability taxonomy: which technology
//! bracket (rules/RPA vs ECLAIR) covers which category of workflow.

use eclair_metrics::Table;
use eclair_workflow::category::{figure2_examples, AutomationTech, WorkflowProfile};
use serde::{Deserialize, Serialize};

/// One rendered row of the figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Row {
    /// Workflow name.
    pub workflow: String,
    /// Enumerable steps?
    pub enumerable: bool,
    /// Decision-making glyph.
    pub decision: String,
    /// Knowledge glyph.
    pub knowledge: String,
    /// Whether RPA's bracket covers it.
    pub rpa: bool,
    /// Whether ECLAIR's bracket covers it.
    pub eclair: bool,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Rows in the figure's order.
    pub rows: Vec<Fig2Row>,
}

/// Build the figure from the paper's five hospital workflows.
pub fn run() -> Fig2Result {
    run_for(&figure2_examples())
}

/// Build the figure for arbitrary workflow profiles.
pub fn run_for(profiles: &[WorkflowProfile]) -> Fig2Result {
    let rows = profiles
        .iter()
        .map(|p| Fig2Row {
            workflow: p.name.clone(),
            enumerable: p.enumerable_steps,
            decision: p.decision_making.glyph().to_string(),
            knowledge: p.knowledge_intensive.glyph().to_string(),
            rpa: p.rpa_can_automate(),
            eclair: p.eclair_can_automate(),
        })
        .collect();
    Fig2Result { rows }
}

impl Fig2Result {
    /// Render in the figure's layout.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "Sample workflow",
            "Enumerable steps",
            "Decision making",
            "Knowledge intensive",
            "RPA",
            "ECLAIR",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workflow.clone(),
                if r.enumerable { "v" } else { "x" }.to_string(),
                r.decision.clone(),
                r.knowledge.clone(),
                if r.rpa { "covered" } else { "-" }.to_string(),
                if r.eclair { "covered" } else { "-" }.to_string(),
            ]);
        }
        t.to_ascii()
    }

    /// The figure's claim: ECLAIR strictly extends RPA's coverage.
    pub fn shape_holds(&self) -> Result<(), String> {
        for r in &self.rows {
            if r.rpa && !r.eclair {
                return Err(format!(
                    "{}: ECLAIR must cover everything RPA covers",
                    r.workflow
                ));
            }
        }
        let rpa_n = self.rows.iter().filter(|r| r.rpa).count();
        let eclair_n = self.rows.iter().filter(|r| r.eclair).count();
        if eclair_n <= rpa_n {
            return Err(format!(
                "ECLAIR must cover strictly more categories: {eclair_n} vs {rpa_n}"
            ));
        }
        Ok(())
    }
}

/// McKinsey-style coverage estimate used in the paper's §1 framing: how
/// much of a workflow portfolio each technology can automate.
pub fn coverage(profiles: &[WorkflowProfile]) -> (f64, f64) {
    if profiles.is_empty() {
        return (0.0, 0.0);
    }
    let n = profiles.len() as f64;
    let rpa = profiles.iter().filter(|p| p.rpa_can_automate()).count() as f64 / n;
    let eclair = profiles.iter().filter(|p| p.eclair_can_automate()).count() as f64 / n;
    let _ = AutomationTech::Rpa; // re-export anchor for doc linking
    (rpa, eclair)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_shape() {
        let f = run();
        f.shape_holds().expect("ECLAIR extends RPA coverage");
        assert_eq!(f.rows.len(), 5);
        let rendered = f.render();
        assert!(rendered.contains("Verifying a patient's insurance eligibility"));
    }

    #[test]
    fn coverage_doubles_ish() {
        // The paper's §1: FM automation "could double the amount of
        // knowledge work that can be automated".
        let (rpa, eclair) = coverage(&figure2_examples());
        assert!(eclair >= 2.0 * rpa, "ECLAIR {eclair:.2} vs RPA {rpa:.2}");
    }
}

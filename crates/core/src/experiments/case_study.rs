//! Section 3 case studies, run rather than cited: an RPA deployment over
//! the case-study workflows (invoice processing + payer eligibility) with
//! quarterly UI drift and bounded maintenance, side by side with ECLAIR's
//! instant natural-language set-up — accuracy dynamics, FTE demands, and
//! dollar curves.

use eclair_fm::tokens::Pricing;
use eclair_fm::{FmModel, ModelProfile};
use eclair_rpa::drift::{DeploymentConfig, DeploymentReport, DeploymentSim};
use eclair_rpa::economics::CostModel;
use eclair_sites::tasks::{erp_invoice_task, payer_eligibility_task};
use eclair_sites::TaskSpec;
use eclair_trace::RunSummary;
use serde::{Deserialize, Serialize};

use crate::calibration;
use crate::execute::executor::{run_task, ExecConfig};

/// Configuration.
#[derive(Debug, Clone, Copy)]
pub struct CaseStudyConfig {
    /// Seed.
    pub seed: u64,
    /// Months of RPA deployment to simulate.
    pub months: usize,
    /// ECLAIR repetitions per workflow.
    pub eclair_reps: usize,
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        Self {
            seed: calibration::SEED,
            months: 12,
            eclair_reps: 3,
        }
    }
}

/// The combined result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CaseStudyResult {
    /// RPA accuracy ramp per month.
    pub rpa: DeploymentReport,
    /// ECLAIR completion rate on the same workflows, day one.
    pub eclair_completion: f64,
    /// Mean FM cost (USD) per ECLAIR workflow run.
    pub eclair_cost_per_run: f64,
    /// Cumulative-cost comparison at the simulation horizon (USD), for
    /// 1,000 items/month.
    pub rpa_cum_cost: f64,
    /// ECLAIR's cumulative cost under the same load.
    pub eclair_cum_cost: f64,
    /// Trace rollup across ECLAIR's runs (the RPA side makes no FM calls).
    pub trace: RunSummary,
}

fn case_tasks() -> Vec<TaskSpec> {
    let mut tasks: Vec<TaskSpec> = (0..eclair_sites::fixtures::CONTRACTS.len())
        .map(erp_invoice_task)
        .collect();
    tasks.extend((0..eclair_sites::fixtures::MEMBERS.len()).map(payer_eligibility_task));
    tasks
}

/// Run the study.
pub fn run(cfg: CaseStudyConfig) -> CaseStudyResult {
    let tasks = case_tasks();
    // --- RPA side: rushed deployment + quarterly drift + maintenance.
    let rpa = DeploymentSim::new(
        tasks.clone(),
        DeploymentConfig {
            months: cfg.months,
            seed: cfg.seed,
            ..Default::default()
        },
    )
    .run();

    // --- ECLAIR side: zero set-up; run each workflow from its SOP.
    let mut wins = 0usize;
    let mut total = 0usize;
    let mut cost_total = 0.0;
    let mut trace = RunSummary::default();
    for rep in 0..cfg.eclair_reps.max(1) as u64 {
        for (i, task) in tasks.iter().enumerate() {
            let mut model = FmModel::new(ModelProfile::gpt4v(), cfg.seed + rep * 97 + i as u64);
            let exec_cfg =
                ExecConfig::with_sop(task.gold_sop.clone()).budgeted(task.gold_trace.len());
            let r = run_task(&mut model, task, &exec_cfg);
            trace.merge(&model.trace().summary());
            total += 1;
            if r.success {
                wins += 1;
            }
            // Price the run: each attempted action is roughly one
            // screenshot-bearing prompt plus a short completion.
            let per_call_prompt = 1_400u64;
            let per_call_completion = 60u64;
            let calls = (r.actions_attempted as u64).max(1) * 2; // suggest + ground
            let mut meter = eclair_fm::TokenMeter::default();
            meter.record(calls * per_call_prompt, calls * per_call_completion);
            cost_total += meter.cost_usd(Pricing::gpt4_turbo());
        }
    }
    let eclair_completion = wins as f64 / total.max(1) as f64;
    let eclair_cost_per_run = cost_total / total.max(1) as f64;

    // --- Economics at 1,000 items/month.
    let rpa_model = CostModel::rpa_b2b_case_study();
    let eclair_model = CostModel::eclair_measured(eclair_cost_per_run);
    let months = cfg.months as f64;
    let rpa_cum_cost =
        rpa_model.cumulative_cost(months, 1000.0, calibration::MANUAL_COST_PER_ITEM_USD);
    let eclair_cum_cost =
        eclair_model.cumulative_cost(months, 1000.0, calibration::MANUAL_COST_PER_ITEM_USD);
    CaseStudyResult {
        rpa,
        eclair_completion,
        eclair_cost_per_run,
        rpa_cum_cost,
        eclair_cum_cost,
        trace,
    }
}

impl CaseStudyResult {
    /// The §3 claims this study must reproduce.
    pub fn shape_holds(&self) -> Result<(), String> {
        let initial = self.rpa.initial_accuracy();
        let peak = self.rpa.peak_accuracy();
        if initial > 0.85 {
            return Err(format!(
                "RPA must start unreliable (paper: ~60%): {initial:.2}"
            ));
        }
        if peak < 0.85 {
            return Err(format!(
                "RPA must ramp toward ~95% with maintenance: {peak:.2}"
            ));
        }
        if self.rpa.months_to_reach(0.9).is_none() {
            return Err("RPA should eventually cross 90%".into());
        }
        if !(0.2..=0.75).contains(&self.eclair_completion) {
            return Err(format!(
                "ECLAIR day-one completion should sit in the paper's regime (~40%): {:.2}",
                self.eclair_completion
            ));
        }
        if self.eclair_cost_per_run > 1.0 {
            return Err(format!(
                "per-run FM cost should be cents, not dollars: ${:.3}",
                self.eclair_cost_per_run
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_reproduces_section3_dynamics() {
        let r = run(CaseStudyConfig {
            months: 8,
            eclair_reps: 2,
            ..Default::default()
        });
        r.shape_holds().unwrap_or_else(|e| panic!("{e}\n{r:#?}"));
    }

    #[test]
    fn rpa_dollar_costs_are_front_loaded_vs_eclair() {
        let r = run(CaseStudyConfig {
            months: 6,
            eclair_reps: 1,
            ..Default::default()
        });
        assert!(
            r.rpa_cum_cost > r.eclair_cum_cost,
            "at 1k items/month the FM agent undercuts the RPA project: {} vs {}",
            r.rpa_cum_cost,
            r.eclair_cum_cost
        );
    }
}

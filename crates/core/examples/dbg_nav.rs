use eclair_core::demonstrate::evidence::record_gold_demo;
use eclair_fm::{FmModel, ModelProfile};
use eclair_gui::VisualClass;
use eclair_sites::all_tasks;

fn main() {
    let t = all_tasks()
        .into_iter()
        .find(|t| t.id == "gitlab-01")
        .unwrap();
    let rec = record_gold_demo(&t);
    // find frame index of issues -> issues/new transition
    for (i, f) in rec.frames.iter().enumerate() {
        println!("frame {i}: {}", f.shot.url);
    }
    let mut model = FmModel::new(ModelProfile::gpt4v(), 7);
    let a = &rec.frames[2].shot;
    let b = &rec.frames[3].shot;
    let pa = model.perceive(a);
    let pb = model.perceive(b);
    let heading = pb
        .elements
        .iter()
        .find(|e| e.visual == VisualClass::Text && e.emphasis && !e.text.is_empty())
        .map(|e| e.text.clone())
        .unwrap_or_default();
    println!("heading: {heading:?}");
    for e in pa.elements.iter().filter(|e| {
        e.looks_interactive() && e.visual != VisualClass::InputBox && !e.text.is_empty()
    }) {
        println!(
            "cand '{}' fuzzy={:.2}",
            e.text,
            eclair_fm::text::fuzzy_similarity(&e.text, &heading)
        );
    }
}

use eclair_core::experiments::{table1, table2, table3, table4};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    if which.contains('3') {
        let r = table3::run(table3::Table3Config {
            pages: Some(120),
            ..Default::default()
        });
        for row in &r.rows {
            println!(
                "{:10} {:5} {:9} S={:.2} M={:.2} L={:.2} overall={:.2}",
                row.model,
                row.source,
                row.corpus,
                row.by_bucket[0],
                row.by_bucket[1],
                row.by_bucket[2],
                row.overall
            );
        }
    }
    if which.contains('2') {
        let r = table2::run(table2::Table2Config {
            reps: 3,
            ..Default::default()
        });
        for row in &r.rows {
            println!(
                "sop={} sugg={:.2} completion={:.2}",
                row.with_sop, row.suggestion_acc, row.completion
            );
        }
    }
    if which.contains('1') {
        let r = table1::run(table1::Table1Config::default());
        for row in &r.rows {
            println!(
                "{:12} miss={:.2} inc={:.2} tot={:.2} P={:.2} R={:.2} corr={:.2}",
                row.method,
                row.missing,
                row.incorrect,
                row.total,
                row.precision,
                row.recall,
                row.correctness
            );
        }
    }
    if which.contains('4') {
        let r = table4::run(table4::Table4Config::default());
        for row in &r.rows {
            println!(
                "{:22} P={:.2} R={:.2} F1={:.2} ({:?})",
                row.eval_type,
                row.precision(),
                row.recall(),
                row.f1(),
                row.confusion
            );
        }
    }
}

use eclair_sites::Site;
use eclair_workflow::replay::execute_trace;
use eclair_workflow::{Action, TargetRef};

fn main() {
    let mut s = Site::Gitlab.launch();
    execute_trace(
        &mut s,
        &[
            Action::Click(TargetRef::Name("open-project-webapp".into())),
            Action::Click(TargetRef::Name("tab-issues".into())),
        ],
    )
    .unwrap();
    for w in s.page().visible_iter() {
        if !w.name.is_empty() || !w.label.is_empty() {
            println!(
                "{:?} name={:?} label={:?} bounds={:?}",
                w.kind, w.name, w.label, w.bounds
            );
        }
    }
}

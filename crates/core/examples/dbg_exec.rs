use eclair_core::execute::executor::{run_task, ExecConfig};
use eclair_fm::{FmModel, ModelProfile};
use eclair_sites::all_tasks;

fn main() {
    let mut with = 0;
    let mut without = 0;
    for rep in 0..3u64 {
        for (i, t) in all_tasks().iter().enumerate() {
            let cfg = ExecConfig::with_sop(t.gold_sop.clone()).budgeted(t.gold_trace.len());
            let mut m = FmModel::new(ModelProfile::gpt4v(), 100 + rep * 1000 + i as u64);
            let r = run_task(&mut m, t, &cfg);
            if r.success {
                with += 1;
            }
            if rep == 0 && !r.success {
                println!("== {} FAIL(with)", t.id);
                for l in &r.log {
                    println!("   {l}");
                }
            }
            let cfg2 = ExecConfig::without_sop().budgeted(t.gold_trace.len());
            let mut m2 = FmModel::new(ModelProfile::gpt4v(), 500 + rep * 1000 + i as u64);
            let r2 = run_task(&mut m2, t, &cfg2);
            if r2.success {
                without += 1;
            }
        }
    }
    println!("TOTAL with-SOP: {with}/90  without-SOP: {without}/90");
}

use eclair_core::demonstrate::evidence::{record_gold_demo, EvidenceLevel};
use eclair_core::demonstrate::generate_sop;
use eclair_fm::{FmModel, ModelProfile};
use eclair_sites::all_tasks;
use eclair_workflow::score::score_sop;

fn main() {
    for (ti, t) in all_tasks().into_iter().enumerate().take(30) {
        let rec = record_gold_demo(&t);
        let mut model = FmModel::new(ModelProfile::gpt4v(), 7 + ti as u64);
        let sop = generate_sop(&mut model, &t.intent, Some(&rec), EvidenceLevel::WdKf);
        let s = score_sop(&sop, &t.gold_sop);
        println!(
            "== {} P={:.2} R={:.2} miss={} inc={}",
            t.id, s.precision, s.recall, s.missing, s.incorrect
        );
        if s.precision < 0.6 || s.recall < 0.6 {
            println!("GOLD:\n{}GEN:\n{}", t.gold_sop.format(), sop.format());
        }
    }
}

use eclair_core::demonstrate::evidence::record_gold_demo;
use eclair_fm::{FmModel, ModelProfile};
use eclair_gui::VisualClass;
use eclair_sites::all_tasks;
use eclair_vision::diff::diff;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let id = args.get(1).map(|s| s.as_str()).unwrap_or("magento-06");
    let fi: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(7);
    let t = all_tasks().into_iter().find(|t| t.id == id).unwrap();
    let rec = record_gold_demo(&t);
    let mut model = FmModel::new(ModelProfile::gpt4v(), seed);
    let a = &rec.frames[fi].shot;
    let b = &rec.frames[fi + 1].shot;
    let pa = model.perceive(a);
    let pb = model.perceive(b);
    let d = diff(a, b);
    println!("modal pa={} pb={}", pa.modal_seen, pb.modal_seen);
    let panel = pb
        .elements
        .iter()
        .find(|e| e.visual == VisualClass::PanelEdge && e.rect.w >= 300 && e.rect.h >= 100)
        .map(|e| e.rect);
    println!("panel {panel:?} regions {:?}", d.regions);
    let new_texts: Vec<&str> = pb
        .elements
        .iter()
        .filter(|e| !e.text.is_empty() && e.visual != VisualClass::IconGlyph)
        .filter(|e| {
            !pa.elements
                .iter()
                .any(|o| eclair_fm::text::fuzzy_similarity(&o.text, &e.text) > 0.85)
        })
        .filter(|e| {
            panel
                .map(|p| p.inflate(24).intersects(&e.rect))
                .unwrap_or(true)
        })
        .map(|e| e.text.as_str())
        .collect();
    println!("new_texts {new_texts:?}");
    for e in pa.elements.iter().filter(|e| {
        matches!(
            e.visual,
            VisualClass::BoxButton
                | VisualClass::TextLink
                | VisualClass::IconGlyph
                | VisualClass::CheckGlyph
                | VisualClass::RadioGlyph
        ) && !e.text.is_empty()
    }) {
        let eff = new_texts
            .iter()
            .map(|t2| {
                eclair_fm::text::fuzzy_similarity(&e.text, t2)
                    .max(eclair_fm::text::stem_overlap(&e.text, t2))
            })
            .fold(0.0f64, f64::max);
        let wd = 0.8 * eclair_fm::text::stem_overlap(&e.text, &t.intent);
        let prox = if d.regions.iter().any(|r| r.inflate(16).intersects(&e.rect)) {
            0.15
        } else {
            0.0
        };
        let gone = if !pb
            .elements
            .iter()
            .any(|x| x.visual == e.visual && x.text == e.text)
        {
            0.3
        } else {
            0.0
        };
        println!(
            "cand '{}' eff={eff:.2} wd={wd:.2} prox={prox} gone={gone} total={:.2}",
            e.text,
            eff.max(wd) + prox + gone
        );
    }
}

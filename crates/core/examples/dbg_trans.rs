use eclair_core::demonstrate::evidence::record_gold_demo;
use eclair_sites::all_tasks;
use eclair_vision::diff::diff;
use eclair_vision::keyframes::{extract_key_frames, KeyFrameConfig};

fn main() {
    let t = all_tasks()
        .into_iter()
        .find(|t| t.id == "magento-06")
        .unwrap();
    let rec = record_gold_demo(&t);
    for (i, e) in rec.log.iter().enumerate() {
        println!(
            "log[{i}] {:?} target={:?} url={}",
            e.event, e.target_text, e.url_after
        );
    }
    let kfs = extract_key_frames(&rec, KeyFrameConfig { min_diff: 0.002 });
    println!("keyframes: {kfs:?}");
    for pair in kfs.windows(2) {
        let a = &rec.frames[pair[0].frame_index].shot;
        let b = &rec.frames[pair[1].frame_index].shot;
        let d = diff(a, b);
        println!(
            "{} -> {}: url {} -> {} frac {:.4} regions {:?}",
            pair[0].frame_index,
            pair[1].frame_index,
            a.url,
            b.url,
            d.changed_fraction,
            d.regions.len()
        );
    }
}

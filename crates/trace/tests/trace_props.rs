//! Property tests for the trace recorder: sequence monotonicity, span
//! balance under arbitrary open/close interleavings, and rollup/export
//! invariants.

use eclair_trace::{read_jsonl, EventKind, GroundingOutcome, RunSummary, SpanKind, TraceRecorder};
use proptest::prelude::*;

const KINDS: [SpanKind; 9] = [
    SpanKind::Demonstrate,
    SpanKind::Execute,
    SpanKind::Validate,
    SpanKind::Step,
    SpanKind::Observe,
    SpanKind::Suggest,
    SpanKind::Ground,
    SpanKind::Actuate,
    SpanKind::Recover,
];

/// Drive a recorder with a schedule of small opcodes: 0 = open span,
/// 1 = close most-recent open span, 2 = FM call, 3 = grounding attempt,
/// 4 = note, 5 = retry.
fn drive(ops: &[(u8, u8)]) -> TraceRecorder {
    let mut t = TraceRecorder::new();
    let mut open = Vec::new();
    for &(op, arg) in ops {
        match op % 6 {
            0 => open.push(t.open(KINDS[arg as usize % KINDS.len()], "s")),
            1 => {
                if let Some(id) = open.pop() {
                    t.close(id);
                }
            }
            2 => t.event(EventKind::FmCall {
                purpose: "p".into(),
                prompt_tokens: arg as u64 * 10,
                completion_tokens: arg as u64,
            }),
            3 => t.event(EventKind::GroundingAttempt {
                strategy: "YOLO".into(),
                outcome: if arg % 2 == 0 {
                    GroundingOutcome::Resolved
                } else {
                    GroundingOutcome::Unresolved
                },
            }),
            4 => t.note(format!("note {arg}")),
            _ => t.event(EventKind::Retry {
                what: format!("op {arg}"),
            }),
        }
    }
    t.close_all();
    t
}

proptest! {
    #[test]
    fn seq_is_strictly_increasing(ops in proptest::collection::vec((0u8..6, 0u8..16), 1..60)) {
        let t = drive(&ops);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        for w in seqs.windows(2) {
            prop_assert!(w[1] > w[0], "seq must strictly increase: {w:?}");
        }
    }

    #[test]
    fn all_spans_close(ops in proptest::collection::vec((0u8..6, 0u8..16), 1..60)) {
        let t = drive(&ops);
        prop_assert_eq!(t.depth(), 0, "close_all leaves nothing open");
        let mut starts = 0i64;
        for e in t.events() {
            match e.kind {
                EventKind::SpanStart { .. } => starts += 1,
                EventKind::SpanEnd { .. } => starts -= 1,
                _ => {}
            }
            prop_assert!(starts >= 0, "a span ended before it started");
        }
        prop_assert_eq!(starts, 0, "every SpanStart has a matching SpanEnd");
    }

    #[test]
    fn jsonl_round_trips_and_summary_is_stable(ops in proptest::collection::vec((0u8..6, 0u8..16), 1..60)) {
        let t = drive(&ops);
        let back = read_jsonl(&t.to_jsonl()).expect("export parses");
        prop_assert_eq!(back.as_slice(), t.events());
        prop_assert_eq!(RunSummary::from_events(&back), t.summary());
    }

    #[test]
    fn rollup_counts_match_raw_events(ops in proptest::collection::vec((0u8..6, 0u8..16), 1..60)) {
        let t = drive(&ops);
        let s = t.summary();
        let raw_calls = t
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FmCall { .. }))
            .count() as u64;
        let raw_grounds = t
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::GroundingAttempt { .. }))
            .count() as u64;
        prop_assert_eq!(s.fm_calls(), raw_calls);
        prop_assert_eq!(s.total().grounding_attempts, raw_grounds);
        prop_assert_eq!(s.fm_completion_hist.total(), raw_calls);
        prop_assert_eq!(s.events, t.events().len() as u64);
    }
}

//! The deterministic virtual clock: simulated time for byte-reproducible
//! latency measurement.
//!
//! The repo's wall-clock quarantine (see `eclair_fleet::FleetTiming`)
//! means real time can never appear in a serialized artifact — which
//! also means latency percentiles and fleet speedup curves computed from
//! wall time are hostage to the host's core count. This module supplies
//! the alternative the ROADMAP calls for: a **virtual clock** advanced by
//! a seeded cost model. Every [`crate::TraceEvent`] is stamped with the
//! clock's current reading (`vt`, microseconds of simulated time), so
//! span durations, p50/p95/p99 latency, and worker-overlap makespans are
//! all pure functions of the seeds and therefore byte-identical across
//! hosts, worker counts, and cache configurations.
//!
//! Draw purity: each advance adds `base + weight·per_unit + jitter`,
//! where the jitter is a SplitMix64 hash of
//! `(seed, run_id, step, cost kind, nth draw of this step)` — never a
//! stateful RNG. Two consequences the rest of the repo relies on:
//!
//! 1. **Pure in `(seed, run_id, step)`**: replaying a step replays its
//!    latency draws exactly, independent of anything earlier in the run.
//! 2. **Cache transparency**: a memoized perception or cached frame must
//!    advance the clock exactly as the recompute would. Advances happen
//!    only at code points executed identically with caches on and off,
//!    and consume no shared RNG state a skipped branch could desync.

use serde::{Deserialize, Serialize};

/// SplitMix64 finalizer-style mixer, the same construction as
/// `eclair_fleet::derive_seed`: folds a stream index into a parent seed.
fn mix(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What kind of work an advance accounts for. Each kind has its own
/// latency band (base + per-weight-unit slope + jitter spread) and its
/// own draw stream, so e.g. adding an actuation to a step never shifts
/// the jitter of the step's FM calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostKind {
    /// Fixed per-step scheduling/bookkeeping overhead.
    StepInit,
    /// A text foundation-model call; weight = `prompt + 4·completion`
    /// tokens (decode dominates).
    FmCall,
    /// A vision perception call (screenshot → scene); same weight rule,
    /// higher base than [`CostKind::FmCall`].
    Perceive,
    /// Capturing one screenshot from the GUI surface.
    Observe,
    /// Dispatching one grounded action at the GUI.
    Actuate,
    /// Error-recovery work (popup escape, re-login).
    Recover,
    /// The disruption a chaos fault inflicts on the step it lands in;
    /// weight = [`fault_cost_weight`] of the fault kind.
    FaultImpact,
    /// Lowering one validated-trace action into a compiled bot step
    /// (`eclair-hybrid`): oracle replay plus anchor scoring, no FM.
    Compile,
    /// One compiled bot step: selector resolution + blind dispatch. An
    /// order of magnitude under [`CostKind::FmCall`] — the latency side
    /// of the RPA economics the hybrid executor earns on the happy path.
    BotStep,
}

impl CostKind {
    /// Stable lower-case name (metric keys, rendered profiles).
    pub fn name(self) -> &'static str {
        match self {
            CostKind::StepInit => "step_init",
            CostKind::FmCall => "fm_call",
            CostKind::Perceive => "perceive",
            CostKind::Observe => "observe",
            CostKind::Actuate => "actuate",
            CostKind::Recover => "recover",
            CostKind::FaultImpact => "fault_impact",
            CostKind::Compile => "compile",
            CostKind::BotStep => "bot_step",
        }
    }

    /// `(base_us, per_unit_us, jitter_spread_us)` for this kind. The
    /// bands are loosely calibrated to the paper's GPT-4V latency story
    /// (vision calls in the hundreds of milliseconds, GUI dispatch in the
    /// tens) but their exact values only need to be *fixed*, not real:
    /// every consumer compares virtual readings against other virtual
    /// readings.
    pub fn band(self) -> (u64, u64, u64) {
        match self {
            CostKind::StepInit => (8_000, 0, 4_000),
            CostKind::FmCall => (120_000, 55, 80_000),
            CostKind::Perceive => (240_000, 55, 120_000),
            CostKind::Observe => (15_000, 0, 10_000),
            CostKind::Actuate => (22_000, 0, 18_000),
            CostKind::Recover => (45_000, 0, 35_000),
            CostKind::FaultImpact => (18_000, 12_000, 9_000),
            CostKind::Compile => (6_000, 0, 3_000),
            CostKind::BotStep => (9_000, 0, 5_000),
        }
    }

    /// Index used to give each kind its own jitter stream.
    fn stream(self) -> u64 {
        match self {
            CostKind::StepInit => 1,
            CostKind::FmCall => 2,
            CostKind::Perceive => 3,
            CostKind::Observe => 4,
            CostKind::Actuate => 5,
            CostKind::Recover => 6,
            CostKind::FaultImpact => 7,
            CostKind::Compile => 8,
            CostKind::BotStep => 9,
        }
    }
}

/// Relative disruption weight of a chaos fault, by stable fault name
/// (see `eclair_chaos::FaultKind::name`). A session expiry costs a full
/// interstitial round-trip; a dropped event costs almost nothing beyond
/// the retry it provokes. Unknown names get a middling default so new
/// fault kinds degrade gracefully instead of panicking.
pub fn fault_cost_weight(fault: &str) -> u64 {
    match fault {
        "promo-modal" => 3,
        "confirm-modal" => 3,
        "layout-shift" => 2,
        "stale-frame" => 1,
        "session-expiry" => 6,
        "drop-event" => 1,
        "duplicate-event" => 1,
        _ => 2,
    }
}

/// The per-run simulated clock. Owned by a [`crate::TraceRecorder`]; the
/// pipeline layers call [`crate::TraceRecorder::advance`] at the points
/// where simulated work happens, and every recorded event is stamped
/// with [`VirtualClock::now_us`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualClock {
    seed: u64,
    run_id: u64,
    step: u64,
    /// Draws taken in the current step, per the per-step purity contract.
    draws: u64,
    now_us: u64,
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl VirtualClock {
    /// A clock at virtual time zero for `(seed, run_id)`.
    pub fn new(seed: u64, run_id: u64) -> Self {
        Self {
            seed,
            run_id,
            step: 0,
            draws: 0,
            now_us: 0,
        }
    }

    /// Current simulated time, microseconds since run start.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// The seed this clock draws jitter from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The run id folded into every draw.
    pub fn run_id(&self) -> u64 {
        self.run_id
    }

    /// Enter executor step `step`: resets the per-step draw counter so
    /// subsequent draws are pure in `(seed, run_id, step)`.
    pub fn begin_step(&mut self, step: u64) {
        self.step = step;
        self.draws = 0;
    }

    /// Advance by the cost of one `kind` operation of `weight` units.
    /// Returns the microseconds added. Deterministic: the jitter is a
    /// hash of `(seed, run_id, step, kind, nth-draw-of-step)`.
    pub fn advance(&mut self, kind: CostKind, weight: u64) -> u64 {
        let (base, per_unit, spread) = kind.band();
        let key = mix(
            mix(mix(mix(self.seed, self.run_id), self.step), kind.stream()),
            self.draws,
        );
        self.draws += 1;
        let jitter = if spread == 0 { 0 } else { key % (spread + 1) };
        let delta = base + weight.saturating_mul(per_unit) + jitter;
        self.now_us += delta;
        delta
    }

    /// Advance by an exact amount (schedulers converting externally
    /// accounted waits — e.g. fleet backoff — into simulated time).
    pub fn advance_exact(&mut self, us: u64) {
        self.now_us += us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_are_pure_in_seed_run_step() {
        let run = || {
            let mut c = VirtualClock::new(42, 7);
            c.begin_step(1);
            let a = c.advance(CostKind::FmCall, 500);
            let b = c.advance(CostKind::Actuate, 1);
            c.begin_step(2);
            let d = c.advance(CostKind::FmCall, 500);
            (a, b, d, c.now_us())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn step_purity_is_independent_of_earlier_steps() {
        // The same draw in the same step yields the same delta no matter
        // how many draws earlier steps consumed.
        let mut a = VirtualClock::new(9, 3);
        a.begin_step(1);
        a.advance(CostKind::FmCall, 10);
        a.advance(CostKind::FmCall, 10);
        a.begin_step(2);
        let da = a.advance(CostKind::Observe, 0);

        let mut b = VirtualClock::new(9, 3);
        b.begin_step(1);
        b.advance(CostKind::FmCall, 10);
        b.begin_step(2);
        let db = b.advance(CostKind::Observe, 0);
        assert_eq!(da, db, "step 2's first draw must not depend on step 1");
    }

    #[test]
    fn streams_separate_by_kind_seed_and_run() {
        let mut base = VirtualClock::new(1, 1);
        base.begin_step(1);
        let mut other_seed = VirtualClock::new(2, 1);
        other_seed.begin_step(1);
        let mut other_run = VirtualClock::new(1, 2);
        other_run.begin_step(1);
        let a = base.advance(CostKind::Recover, 0);
        let b = other_seed.advance(CostKind::Recover, 0);
        let c = other_run.advance(CostKind::Recover, 0);
        // Bands share a base so equality is possible but astronomically
        // unlikely for these fixed seeds; pin the separation.
        assert!(a != b || a != c, "jitter must depend on seed and run id");
    }

    #[test]
    fn weight_increases_cost_monotonically() {
        let (base, per_unit, spread) = CostKind::FmCall.band();
        let mut c = VirtualClock::new(5, 0);
        c.begin_step(1);
        let d = c.advance(CostKind::FmCall, 1000);
        assert!(d >= base + 1000 * per_unit);
        assert!(d <= base + 1000 * per_unit + spread);
    }

    #[test]
    fn fault_weights_cover_the_known_kinds() {
        for f in [
            "promo-modal",
            "confirm-modal",
            "layout-shift",
            "stale-frame",
            "session-expiry",
            "drop-event",
            "duplicate-event",
        ] {
            assert!(fault_cost_weight(f) > 0, "{f} must have a nonzero weight");
        }
        assert_eq!(fault_cost_weight("some-future-fault"), 2);
    }

    #[test]
    fn advance_exact_adds_exactly() {
        let mut c = VirtualClock::new(0, 0);
        c.advance_exact(123);
        c.advance_exact(2);
        assert_eq!(c.now_us(), 125);
    }
}

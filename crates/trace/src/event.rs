//! The trace vocabulary: span kinds, typed events, and the sequenced
//! event record that everything downstream (rollups, JSONL, the flight
//! recorder) consumes.

use serde::{Deserialize, Serialize};

/// What a span represents in the Demonstrate → Execute → Validate
/// pipeline. The first three are *phase* spans; the rest are per-step
/// children nested under an `Execute` span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// SOP generation from a demonstration (paper §4.1).
    Demonstrate,
    /// Autonomous execution of a workflow (paper §4.2).
    Execute,
    /// Post-hoc validation of a run (paper §4.3).
    Validate,
    /// One iteration of the execution loop.
    Step,
    /// Screenshot / perception inside a step.
    Observe,
    /// Next-action proposal inside a step.
    Suggest,
    /// Coordinate grounding inside a step.
    Ground,
    /// Performing the grounded action on the GUI.
    Actuate,
    /// Error-recovery handling after a failed action.
    Recover,
}

impl SpanKind {
    /// Stable lower-case name used in rendered output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Demonstrate => "demonstrate",
            SpanKind::Execute => "execute",
            SpanKind::Validate => "validate",
            SpanKind::Step => "step",
            SpanKind::Observe => "observe",
            SpanKind::Suggest => "suggest",
            SpanKind::Ground => "ground",
            SpanKind::Actuate => "actuate",
            SpanKind::Recover => "recover",
        }
    }

    /// Whether this kind is a top-level pipeline phase.
    pub fn is_phase(self) -> bool {
        matches!(
            self,
            SpanKind::Demonstrate | SpanKind::Execute | SpanKind::Validate
        )
    }
}

/// A typed trace event. Everything the pipeline reports flows through
/// these variants; free-text narration is a `Note`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span opened. `id` is unique within the run.
    SpanStart {
        id: u64,
        kind: SpanKind,
        label: String,
    },
    /// The span with `id` closed.
    SpanEnd { id: u64, kind: SpanKind },
    /// One foundation-model invocation with its token accounting.
    FmCall {
        purpose: String,
        prompt_tokens: u64,
        completion_tokens: u64,
    },
    /// One grounding attempt and how it went.
    GroundingAttempt {
        strategy: String,
        outcome: GroundingOutcome,
    },
    /// An action was retried after a recovery step.
    Retry { what: String },
    /// An unexpected modal/popup was dismissed.
    PopupEscape { url: String },
    /// A chaos fault was injected at the GUI boundary (`eclair-chaos`).
    /// `step` is the 1-based executor step the fault was armed at; `fault`
    /// is the stable kind name (e.g. `"stale-frame"`).
    FaultInjected { step: u64, fault: String },
    /// A validator produced a verdict.
    ValidatorVerdict { validator: String, passed: bool },
    /// The hybrid compiler lowered one validated-trace action into a bot
    /// step anchored by `selector` (`eclair-hybrid`). `step` is the
    /// 0-based script position.
    CompiledStep { step: u64, selector: String },
    /// The hybrid executor detected UI drift at script step `step`:
    /// a selector miss, a displaced click, a swallowed effect, or an
    /// unexpected redirect. `reason` is a stable short name.
    DriftDetected { step: u64, reason: String },
    /// The hybrid executor fell back to the FM executor for script step
    /// `step`, grounding `query` (this is where a hybrid run spends
    /// tokens).
    FallbackStep { step: u64, query: String },
    /// The recompiler spliced the FM-repaired anchor back into the
    /// script at `step`; `selector` is the new anchor.
    Recompiled { step: u64, selector: String },
    /// Free-text narration (renders verbatim into the legacy log).
    Note { text: String },
}

/// Outcome of a single grounding attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroundingOutcome {
    /// A point was produced.
    Resolved,
    /// No candidate matched the query.
    Unresolved,
}

/// One record in the trace: a monotonically increasing sequence number
/// (no wall-clock anywhere — runs are byte-reproducible), the id of the
/// innermost enclosing span (0 = root), the virtual-clock reading at
/// emission, and the typed payload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceEvent {
    /// Strictly increasing, starting at 0, unique within a run.
    pub seq: u64,
    /// Enclosing span id at emission time; 0 when outside any span.
    pub parent: u64,
    /// Simulated time at emission, microseconds since run start (see
    /// [`crate::vclock::VirtualClock`]). Deterministic from the seeds —
    /// never wall-clock — so it is safe inside the byte-compared stream.
    /// Defaults to 0 when parsing traces that predate the field.
    pub vt: u64,
    /// The payload.
    pub kind: EventKind,
}

// Hand-written (the derive stub has no `#[serde(default)]`) so traces
// recorded before the `vt` field parse with `vt: 0` instead of erroring.
impl serde::Deserialize for TraceEvent {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            serde::Deserialize::from_value(v.field(name))
                .map_err(|e| serde::Error::custom(format!("TraceEvent.{name}: {e}")))
        };
        Ok(TraceEvent {
            seq: field("seq")?,
            parent: field("parent")?,
            vt: match v.field("vt") {
                serde::Value::Null => 0,
                _ => field("vt")?,
            },
            kind: serde::Deserialize::from_value(v.field("kind"))
                .map_err(|e| serde::Error::custom(format!("TraceEvent.kind: {e}")))?,
        })
    }
}

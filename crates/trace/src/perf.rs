//! Quarantined performance counters for the caching layer.
//!
//! PR 5's cache-transparency invariant forbids cache effectiveness from
//! ever appearing inside the byte-compared artifacts: a frame-cache hit
//! must leave the trace stream, the token meter, and every serialized
//! record byte-identical to a miss, or cache-on and `ECLAIR_NO_CACHE=1`
//! runs would diverge. So hit/miss/invalidation accounting lives *here*,
//! in thread-local counters outside the event stream — the same
//! quarantine `eclair_fleet::FleetTiming` applies to wall-clock. The
//! counters are still fully deterministic for a single-threaded driver
//! (the `perf_bench` bin), which is how `BENCH_perf.json` stays
//! byte-reproducible while the determinism artifacts stay cache-blind.
//!
//! Counters are per-thread: fleet workers each accumulate their own and
//! never contend; harnesses that want totals run sequentially (one
//! thread) and call [`snapshot`] after [`reset`]-ing up front.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};

/// The caching layer's deterministic counters. Everything in here is a
/// pure function of the seeds when collected on one thread; nothing in
/// here may ever feed back into a trace, meter, or record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Session frame-cache hits (a screenshot served without re-render).
    pub frame_cache_hits: u64,
    /// Session frame-cache misses (a full `Screenshot::render` ran).
    pub frame_cache_misses: u64,
    /// Frame-cache invalidations (page mutated / fault dirtied the layout
    /// while cached frames existed).
    pub frame_cache_invalidations: u64,
    /// `Session::rebuild` calls that skipped page reconstruction because
    /// the app's fresh build was structurally identical.
    pub relayouts_avoided: u64,
    /// Full layout walks the GUI layout engine actually ran (a cache miss
    /// or a cache-disabled pass over the whole tree). Counted at the
    /// engine, not the session, so a skipped walk can never masquerade as
    /// a saved one.
    pub relayouts_full: u64,
    /// Dirty-subtree relayouts: layout passes that re-placed only the
    /// dirty nodes (plus any ancestors whose measured box changed) instead
    /// of walking the whole tree.
    pub relayouts_partial: u64,
    /// Nodes re-placed across all dirty-subtree relayouts.
    pub dirty_nodes_visited: u64,
    /// Full layout walks answered from the global layout cache (bounds
    /// replayed from an identical earlier walk; no tree traversal ran).
    pub layout_cache_hits: u64,
    /// String-interner lookups that found an existing entry.
    pub intern_hits: u64,
    /// String-interner lookups that inserted a new entry.
    pub intern_misses: u64,
    /// High-water size of the intern table as observed by this thread.
    /// This is a gauge, not a sum: [`merge`](Self::merge) takes the max so
    /// fleet-merged snapshots still report the true table size.
    pub intern_table_size: u64,
    /// Widget-arena insertions that reused a vacated slot (generation
    /// bumped) instead of growing the backing storage.
    pub arena_slots_reused: u64,
    /// `FmModel::perceive` calls answered from the perception memo.
    pub perceive_memo_hits: u64,
    /// `FmModel::perceive` calls that ran the full perception pass.
    pub perceive_memo_misses: u64,
    /// Tokens that a provider-side cache would have served from cache
    /// (the accounted tokens of every memoized `perceive` hit). Reported
    /// here — not in the meter — because the deterministic accounting
    /// must stay identical with the cache off.
    pub cached_tokens: u64,
    /// `FmModel::perceive` calls answered by the fleet-wide shared cache
    /// (the per-instance memo missed; the global shard had the percept).
    pub shared_hits: u64,
    /// Shared-cache lookups that computed the percept (this call was the
    /// single-flight leader, or nothing was in flight for the key).
    pub shared_misses: u64,
    /// Shared-cache insertions that evicted another run's entry (FIFO
    /// per shard at capacity).
    pub shared_evictions: u64,
    /// Lookups that blocked behind another worker's in-flight perception
    /// of the same key and shared its value (single-flight coalesces).
    pub single_flight_waits: u64,
    /// Tokens the shared layer served without recomputation (accounted
    /// tokens of every shared hit + coalesce). Quarantined here for the
    /// same reason as `cached_tokens`.
    pub shared_cached_tokens: u64,
    /// Log lines produced by `render_log` since the last reset.
    pub log_events_rendered: u64,
    /// Buffer allocations `render_log` performed for those lines.
    pub log_allocations: u64,
    /// Events serialized by the JSONL exporters since the last reset.
    pub jsonl_events_rendered: u64,
    /// Output-buffer allocations those exporters performed.
    pub jsonl_allocations: u64,
}

impl PerfCounters {
    /// Frame-cache hit rate in [0, 1]; 0 when no lookups happened.
    pub fn frame_cache_hit_rate(&self) -> f64 {
        rate(self.frame_cache_hits, self.frame_cache_misses)
    }

    /// Perception memo hit rate in [0, 1]; 0 when no perceives happened.
    pub fn perceive_memo_rate(&self) -> f64 {
        rate(self.perceive_memo_hits, self.perceive_memo_misses)
    }

    /// Shared-cache hit rate in [0, 1], counting single-flight coalesces
    /// as hits (they did not recompute); 0 when the shared layer saw no
    /// lookups.
    pub fn shared_rate(&self) -> f64 {
        rate(
            self.shared_hits + self.single_flight_waits,
            self.shared_misses,
        )
    }

    /// Add another snapshot's counts into this one.
    pub fn merge(&mut self, other: &PerfCounters) {
        self.frame_cache_hits += other.frame_cache_hits;
        self.frame_cache_misses += other.frame_cache_misses;
        self.frame_cache_invalidations += other.frame_cache_invalidations;
        self.relayouts_avoided += other.relayouts_avoided;
        self.relayouts_full += other.relayouts_full;
        self.relayouts_partial += other.relayouts_partial;
        self.dirty_nodes_visited += other.dirty_nodes_visited;
        self.layout_cache_hits += other.layout_cache_hits;
        self.intern_hits += other.intern_hits;
        self.intern_misses += other.intern_misses;
        self.intern_table_size = self.intern_table_size.max(other.intern_table_size);
        self.arena_slots_reused += other.arena_slots_reused;
        self.perceive_memo_hits += other.perceive_memo_hits;
        self.perceive_memo_misses += other.perceive_memo_misses;
        self.cached_tokens += other.cached_tokens;
        self.shared_hits += other.shared_hits;
        self.shared_misses += other.shared_misses;
        self.shared_evictions += other.shared_evictions;
        self.single_flight_waits += other.single_flight_waits;
        self.shared_cached_tokens += other.shared_cached_tokens;
        self.log_events_rendered += other.log_events_rendered;
        self.log_allocations += other.log_allocations;
        self.jsonl_events_rendered += other.jsonl_events_rendered;
        self.jsonl_allocations += other.jsonl_allocations;
    }
}

fn rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

thread_local! {
    static COUNTERS: RefCell<PerfCounters> = const { RefCell::new(PerfCounters {
        frame_cache_hits: 0,
        frame_cache_misses: 0,
        frame_cache_invalidations: 0,
        relayouts_avoided: 0,
        relayouts_full: 0,
        relayouts_partial: 0,
        dirty_nodes_visited: 0,
        layout_cache_hits: 0,
        intern_hits: 0,
        intern_misses: 0,
        intern_table_size: 0,
        arena_slots_reused: 0,
        perceive_memo_hits: 0,
        perceive_memo_misses: 0,
        cached_tokens: 0,
        shared_hits: 0,
        shared_misses: 0,
        shared_evictions: 0,
        single_flight_waits: 0,
        shared_cached_tokens: 0,
        log_events_rendered: 0,
        log_allocations: 0,
        jsonl_events_rendered: 0,
        jsonl_allocations: 0,
    }) };
}

/// Apply a mutation to this thread's counters.
pub fn record(f: impl FnOnce(&mut PerfCounters)) {
    COUNTERS.with(|c| f(&mut c.borrow_mut()));
}

/// This thread's counters since the last [`reset`].
pub fn snapshot() -> PerfCounters {
    COUNTERS.with(|c| *c.borrow())
}

/// Zero this thread's counters (harnesses call this before a measured
/// section).
pub fn reset() {
    COUNTERS.with(|c| *c.borrow_mut() = PerfCounters::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_snapshot_reset_round_trip() {
        reset();
        record(|c| {
            c.frame_cache_hits += 3;
            c.frame_cache_misses += 1;
            c.perceive_memo_hits += 1;
        });
        let s = snapshot();
        assert_eq!(s.frame_cache_hits, 3);
        assert_eq!(s.frame_cache_misses, 1);
        assert!((s.frame_cache_hit_rate() - 0.75).abs() < 1e-12);
        reset();
        assert_eq!(snapshot(), PerfCounters::default());
    }

    #[test]
    fn rates_are_zero_without_lookups() {
        let c = PerfCounters::default();
        assert_eq!(c.frame_cache_hit_rate(), 0.0);
        assert_eq!(c.perceive_memo_rate(), 0.0);
        assert_eq!(c.shared_rate(), 0.0);
    }

    #[test]
    fn shared_rate_counts_coalesces_as_hits() {
        let c = PerfCounters {
            shared_hits: 2,
            single_flight_waits: 1,
            shared_misses: 1,
            ..Default::default()
        };
        assert!((c.shared_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = PerfCounters {
            frame_cache_hits: 1,
            cached_tokens: 10,
            ..Default::default()
        };
        let b = PerfCounters {
            frame_cache_hits: 2,
            relayouts_avoided: 5,
            cached_tokens: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.frame_cache_hits, 3);
        assert_eq!(a.relayouts_avoided, 5);
        assert_eq!(a.cached_tokens, 17);
    }
}

//! Stream auditing: the structural invariants a well-formed event stream
//! satisfies, plus the oracle-facing iterators `eclair-crucible` checks
//! traces with.
//!
//! A stream produced by one [`crate::TraceRecorder`] obeys three rules by
//! construction, and this module makes them checkable after the fact:
//!
//! 1. **Span ends match opens.** Every `SpanEnd` closes exactly the
//!    innermost open span (the recorder's `close` unwinds children with
//!    explicit end events, so ends are strictly LIFO).
//! 2. **No id is open twice.** A span id may be *reused* once closed
//!    (fleet workers concatenate one fresh recorder per attempt), but two
//!    simultaneously open spans never share an id.
//! 3. **Parents resolve.** Every event's `parent` is the id of the
//!    innermost open span at emission time, or 0 outside any span.
//!
//! Merged fleet streams additionally renumber `seq` from 0 with no gaps —
//! [`audit_seq_gapless`] checks that contract separately, because raw
//! per-run streams legitimately reset `seq` at attempt boundaries.

use crate::event::{EventKind, TraceEvent};

/// Why a stream failed the structural audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditError {
    /// A `SpanEnd` that does not close the innermost open span (either no
    /// span is open, a different one is, or the id was never opened).
    MismatchedSpanEnd {
        /// `seq` of the offending event.
        seq: u64,
        /// The id the event tried to close.
        id: u64,
        /// The innermost open span at that point (`None` = stack empty).
        innermost: Option<u64>,
    },
    /// A `SpanStart` reusing an id that is still open.
    DuplicateOpenSpan {
        /// `seq` of the offending event.
        seq: u64,
        /// The doubly-opened id.
        id: u64,
    },
    /// An event whose `parent` is neither 0 nor the innermost open span.
    OrphanParent {
        /// `seq` of the offending event.
        seq: u64,
        /// The parent the event claims.
        parent: u64,
        /// The innermost open span at that point (`None` = stack empty).
        innermost: Option<u64>,
    },
    /// `seq` numbering has a gap or regression (merged streams only).
    SeqGap {
        /// Position in the slice.
        index: usize,
        /// The `seq` the gapless contract requires there.
        expected: u64,
        /// The `seq` actually found.
        found: u64,
    },
    /// `seq` failed to strictly increase *inside an open span*. Raw
    /// per-run streams may reset `seq` at attempt boundaries, but an
    /// attempt boundary always has an empty span stack — a duplicate or
    /// out-of-order `seq` while any span is open means the stream was
    /// reordered or doctored.
    NonMonotoneSeq {
        /// The offending event's `seq`.
        seq: u64,
        /// The previous event's `seq` (which `seq` failed to exceed).
        prev: u64,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::MismatchedSpanEnd { seq, id, innermost } => write!(
                f,
                "event seq {seq}: SpanEnd for id {id} but innermost open span is {innermost:?}"
            ),
            AuditError::DuplicateOpenSpan { seq, id } => {
                write!(f, "event seq {seq}: SpanStart reopens still-open id {id}")
            }
            AuditError::OrphanParent {
                seq,
                parent,
                innermost,
            } => write!(
                f,
                "event seq {seq}: parent {parent} but innermost open span is {innermost:?}"
            ),
            AuditError::SeqGap {
                index,
                expected,
                found,
            } => write!(
                f,
                "event at index {index}: expected seq {expected}, found {found}"
            ),
            AuditError::NonMonotoneSeq { seq, prev } => write!(
                f,
                "event seq {seq} does not increase past {prev} inside an open span"
            ),
        }
    }
}

impl std::error::Error for AuditError {}

/// What [`audit_spans`] learned from a structurally valid stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAudit {
    /// Spans opened over the stream.
    pub opened: u64,
    /// Spans closed over the stream.
    pub closed: u64,
    /// Deepest nesting observed.
    pub max_depth: usize,
    /// Spans still open when the stream ended.
    pub unclosed: usize,
}

/// Walk the stream checking the span-tree rules (ends LIFO-match opens,
/// no id open twice, parents resolve) plus in-span `seq` monotonicity
/// (`seq` must strictly increase while any span is open; it may only
/// reset at an attempt boundary, where the stack is empty). Returns
/// counters on success.
pub fn audit_spans(events: &[TraceEvent]) -> Result<SpanAudit, AuditError> {
    let mut stack: Vec<u64> = Vec::new();
    let mut audit = SpanAudit::default();
    // `Some(prev_seq)` while inside a span run; cleared whenever the
    // stack empties so legal attempt-boundary seq resets pass.
    let mut prev_seq: Option<u64> = None;
    for e in events {
        if let Some(prev) = prev_seq {
            if !stack.is_empty() && e.seq <= prev {
                return Err(AuditError::NonMonotoneSeq { seq: e.seq, prev });
            }
        }
        match &e.kind {
            EventKind::SpanStart { id, .. } => {
                if e.parent != stack.last().copied().unwrap_or(0) {
                    return Err(AuditError::OrphanParent {
                        seq: e.seq,
                        parent: e.parent,
                        innermost: stack.last().copied(),
                    });
                }
                if stack.contains(id) {
                    return Err(AuditError::DuplicateOpenSpan {
                        seq: e.seq,
                        id: *id,
                    });
                }
                stack.push(*id);
                audit.opened += 1;
                audit.max_depth = audit.max_depth.max(stack.len());
            }
            EventKind::SpanEnd { id, .. } => {
                if stack.last() != Some(id) {
                    return Err(AuditError::MismatchedSpanEnd {
                        seq: e.seq,
                        id: *id,
                        innermost: stack.last().copied(),
                    });
                }
                stack.pop();
                audit.closed += 1;
                if e.parent != stack.last().copied().unwrap_or(0) {
                    return Err(AuditError::OrphanParent {
                        seq: e.seq,
                        parent: e.parent,
                        innermost: stack.last().copied(),
                    });
                }
            }
            _ => {
                if e.parent != stack.last().copied().unwrap_or(0) {
                    return Err(AuditError::OrphanParent {
                        seq: e.seq,
                        parent: e.parent,
                        innermost: stack.last().copied(),
                    });
                }
            }
        }
        prev_seq = if stack.is_empty() { None } else { Some(e.seq) };
    }
    audit.unclosed = stack.len();
    Ok(audit)
}

/// Check that `seq` runs 0, 1, 2, … with no gaps — the contract of a
/// merged stream (raw per-run streams reset at attempt boundaries and
/// should use [`audit_spans`] only).
pub fn audit_seq_gapless(events: &[TraceEvent]) -> Result<(), AuditError> {
    for (i, e) in events.iter().enumerate() {
        if e.seq != i as u64 {
            return Err(AuditError::SeqGap {
                index: i,
                expected: i as u64,
                found: e.seq,
            });
        }
    }
    Ok(())
}

/// Token totals recomputed from the raw `FmCall` events. Oracles compare
/// this against the `TokenMeter` the model kept — the two are accounted
/// at the same funnel and must agree. (Tokens a provider-side cache
/// would have served are *not* in here: the transparency invariant keeps
/// them in the quarantined `crate::perf::PerfCounters::cached_tokens`
/// counter, never in the event stream.)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenTotals {
    /// Prompt tokens summed over every `FmCall` event.
    pub prompt: u64,
    /// Completion tokens summed over every `FmCall` event.
    pub completion: u64,
    /// Number of `FmCall` events (one per metered model invocation).
    pub calls: u64,
}

impl TokenTotals {
    /// Prompt + completion tokens.
    pub fn total(&self) -> u64 {
        self.prompt + self.completion
    }
}

/// Recompute [`TokenTotals`] from the raw `FmCall` events of a stream.
pub fn fm_token_totals(events: &[TraceEvent]) -> TokenTotals {
    let mut totals = TokenTotals::default();
    for e in events {
        if let EventKind::FmCall {
            prompt_tokens,
            completion_tokens,
            ..
        } = &e.kind
        {
            totals.prompt += prompt_tokens;
            totals.completion += completion_tokens;
            totals.calls += 1;
        }
    }
    totals
}

/// Iterator over chaos injections in the stream: `(step, fault name)` per
/// `FaultInjected` event, in order.
pub fn fault_injections(events: &[TraceEvent]) -> impl Iterator<Item = (u64, &str)> {
    events.iter().filter_map(|e| match &e.kind {
        EventKind::FaultInjected { step, fault } => Some((*step, fault.as_str())),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;
    use crate::recorder::TraceRecorder;

    fn recorded() -> Vec<TraceEvent> {
        let mut t = TraceRecorder::new();
        let run = t.open(SpanKind::Execute, "run");
        let step = t.open(SpanKind::Step, "1");
        t.event(EventKind::FmCall {
            purpose: "suggest".into(),
            prompt_tokens: 100,
            completion_tokens: 10,
        });
        t.event(EventKind::FaultInjected {
            step: 1,
            fault: "stale-frame".into(),
        });
        t.close(step);
        t.close(run);
        t.take_events()
    }

    #[test]
    fn recorder_streams_pass_the_audit() {
        let events = recorded();
        let audit = audit_spans(&events).expect("recorder output is well-formed");
        assert_eq!(audit.opened, 2);
        assert_eq!(audit.closed, 2);
        assert_eq!(audit.max_depth, 2);
        assert_eq!(audit.unclosed, 0);
        audit_seq_gapless(&events).expect("single stream is gapless");
    }

    #[test]
    fn attempt_concatenation_with_reused_ids_passes() {
        // Fleet workers concatenate one fresh recorder per attempt: span
        // ids restart at 1 and seq restarts at 0. Reuse after close is
        // legal; the seq check is a merged-stream-only contract.
        let mut both = recorded();
        both.extend(recorded());
        let audit = audit_spans(&both).expect("reuse after close is fine");
        assert_eq!(audit.opened, 4);
        assert!(audit_seq_gapless(&both).is_err());
    }

    #[test]
    fn mismatched_end_is_rejected() {
        let mut events = recorded();
        // Swap the two SpanEnds so the outer closes before the inner.
        let n = events.len();
        events.swap(n - 1, n - 2);
        assert!(matches!(
            audit_spans(&events),
            Err(AuditError::MismatchedSpanEnd { .. })
        ));
    }

    #[test]
    fn doubly_open_id_is_rejected() {
        let mut t = TraceRecorder::new();
        let _a = t.open(SpanKind::Execute, "run");
        let mut events = t.take_events();
        let mut dup = events[0].clone();
        dup.seq = 1;
        dup.parent = 1;
        events.push(dup);
        assert!(matches!(
            audit_spans(&events),
            Err(AuditError::DuplicateOpenSpan { seq: 1, id: 1 })
        ));
    }

    #[test]
    fn orphan_parent_is_rejected() {
        let mut events = recorded();
        events[2].parent = 99;
        assert!(matches!(
            audit_spans(&events),
            Err(AuditError::OrphanParent { parent: 99, .. })
        ));
    }

    #[test]
    fn unclosed_spans_are_counted_not_rejected() {
        let mut t = TraceRecorder::new();
        let _leak = t.open(SpanKind::Execute, "run");
        let audit = audit_spans(t.events()).unwrap();
        assert_eq!(audit.unclosed, 1);
    }

    #[test]
    fn token_totals_and_fault_iterator() {
        let events = recorded();
        let totals = fm_token_totals(&events);
        assert_eq!(
            totals,
            TokenTotals {
                prompt: 100,
                completion: 10,
                calls: 1
            }
        );
        assert_eq!(totals.total(), 110);
        let faults: Vec<_> = fault_injections(&events).collect();
        assert_eq!(faults, vec![(1, "stale-frame")]);
    }

    #[test]
    fn in_span_seq_regression_is_rejected() {
        // Duplicate seq inside an open span: reordering/doctoring, not an
        // attempt boundary.
        let mut events = recorded();
        events[2].seq = events[1].seq;
        assert_eq!(
            audit_spans(&events),
            Err(AuditError::NonMonotoneSeq {
                seq: events[1].seq,
                prev: events[1].seq
            })
        );
        // Out-of-order (decreasing) seq inside a span is equally rejected.
        let mut events = recorded();
        events[3].seq = 1;
        assert!(matches!(
            audit_spans(&events),
            Err(AuditError::NonMonotoneSeq { seq: 1, .. })
        ));
    }

    #[test]
    fn seq_gap_reports_position() {
        let mut events = recorded();
        events[3].seq = 7;
        assert_eq!(
            audit_seq_gapless(&events),
            Err(AuditError::SeqGap {
                index: 3,
                expected: 3,
                found: 7
            })
        );
    }
}

//! Rolling trace events up into per-phase counters, a token histogram,
//! and a dollar cost — the `RunSummary` embedded in `WorkflowReport` and
//! aggregated across runs by the bench harnesses.

use crate::event::{EventKind, GroundingOutcome, SpanKind, TraceEvent};
use serde::{Deserialize, Serialize};

/// Counters for one pipeline phase (or for events outside any phase).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Foundation-model invocations attributed to this phase.
    pub fm_calls: u64,
    /// Prompt tokens across those calls.
    pub prompt_tokens: u64,
    /// Completion tokens across those calls.
    pub completion_tokens: u64,
    /// Execution-loop steps opened in this phase.
    pub steps: u64,
    /// Grounding attempts made.
    pub grounding_attempts: u64,
    /// Grounding attempts that resolved to a point.
    pub grounding_resolved: u64,
    /// Actions retried after recovery.
    pub retries: u64,
    /// Unexpected popups dismissed.
    pub popup_escapes: u64,
    /// Chaos faults injected at the GUI boundary.
    pub faults_injected: u64,
}

impl PhaseStats {
    /// Total tokens (prompt + completion).
    pub fn total_tokens(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }

    /// Add `other`'s counters into `self`.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.fm_calls += other.fm_calls;
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
        self.steps += other.steps;
        self.grounding_attempts += other.grounding_attempts;
        self.grounding_resolved += other.grounding_resolved;
        self.retries += other.retries;
        self.popup_escapes += other.popup_escapes;
        self.faults_injected += other.faults_injected;
    }
}

/// Bucket upper bounds for the completion-token histogram; the final
/// implicit bucket is unbounded.
pub const HIST_BOUNDS: [u64; 6] = [8, 16, 32, 64, 128, 256];

/// A fixed-bucket histogram of completion tokens per FM call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenHistogram {
    /// `counts[i]` holds calls with completion tokens <= `HIST_BOUNDS[i]`
    /// (and above the previous bound); the last entry is the overflow.
    pub counts: Vec<u64>,
}

impl Default for TokenHistogram {
    fn default() -> Self {
        TokenHistogram {
            counts: vec![0; HIST_BOUNDS.len() + 1],
        }
    }
}

impl TokenHistogram {
    /// Record one observation.
    pub fn record(&mut self, completion_tokens: u64) {
        let idx = HIST_BOUNDS
            .iter()
            .position(|&b| completion_tokens <= b)
            .unwrap_or(HIST_BOUNDS.len());
        self.counts[idx] += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Add `other`'s counts into `self`.
    pub fn merge(&mut self, other: &TokenHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// The rolled-up view of one run (or, after merging, many runs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Counters for the Demonstrate phase.
    pub demonstrate: PhaseStats,
    /// Counters for the Execute phase.
    pub execute: PhaseStats,
    /// Counters for the Validate phase.
    pub validate: PhaseStats,
    /// Counters for events outside any phase span.
    pub other: PhaseStats,
    /// Validator verdicts that passed.
    pub verdicts_pass: u64,
    /// Validator verdicts that failed.
    pub verdicts_fail: u64,
    /// Completion-token distribution across all FM calls.
    pub fm_completion_hist: TokenHistogram,
    /// Total events rolled up (for sanity checks).
    pub events: u64,
}

impl RunSummary {
    /// Roll a flat event list up into counters. Phase attribution uses
    /// the innermost enclosing phase span at each event's position.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = RunSummary::default();
        // Stack of (span id, kind) reconstructed from start/end events.
        let mut stack: Vec<(u64, SpanKind)> = Vec::new();
        for e in events {
            s.events += 1;
            match &e.kind {
                EventKind::SpanStart { id, kind, .. } => {
                    if *kind == SpanKind::Step {
                        s.phase_mut(&stack).steps += 1;
                    }
                    stack.push((*id, *kind));
                }
                EventKind::SpanEnd { id, .. } => {
                    while let Some((top, _)) = stack.pop() {
                        if top == *id {
                            break;
                        }
                    }
                }
                EventKind::FmCall {
                    prompt_tokens,
                    completion_tokens,
                    ..
                } => {
                    let p = s.phase_mut(&stack);
                    p.fm_calls += 1;
                    p.prompt_tokens += prompt_tokens;
                    p.completion_tokens += completion_tokens;
                    s.fm_completion_hist.record(*completion_tokens);
                }
                EventKind::GroundingAttempt { outcome, .. } => {
                    let p = s.phase_mut(&stack);
                    p.grounding_attempts += 1;
                    if *outcome == GroundingOutcome::Resolved {
                        p.grounding_resolved += 1;
                    }
                }
                EventKind::Retry { .. } => s.phase_mut(&stack).retries += 1,
                EventKind::PopupEscape { .. } => s.phase_mut(&stack).popup_escapes += 1,
                EventKind::FaultInjected { .. } => s.phase_mut(&stack).faults_injected += 1,
                EventKind::ValidatorVerdict { passed, .. } => {
                    if *passed {
                        s.verdicts_pass += 1;
                    } else {
                        s.verdicts_fail += 1;
                    }
                }
                // Hybrid-bot lifecycle events carry no phase counters of
                // their own; `hybrid.*` metrics are derived straight from
                // the event stream (see `eclair-bench`).
                EventKind::CompiledStep { .. }
                | EventKind::DriftDetected { .. }
                | EventKind::FallbackStep { .. }
                | EventKind::Recompiled { .. } => {}
                EventKind::Note { .. } => {}
            }
        }
        s
    }

    fn phase_mut(&mut self, stack: &[(u64, SpanKind)]) -> &mut PhaseStats {
        match stack.iter().rev().map(|(_, k)| *k).find(|k| k.is_phase()) {
            Some(SpanKind::Demonstrate) => &mut self.demonstrate,
            Some(SpanKind::Execute) => &mut self.execute,
            Some(SpanKind::Validate) => &mut self.validate,
            _ => &mut self.other,
        }
    }

    /// Counters summed across all phases.
    pub fn total(&self) -> PhaseStats {
        let mut t = self.demonstrate;
        t.merge(&self.execute);
        t.merge(&self.validate);
        t.merge(&self.other);
        t
    }

    /// Total FM invocations across all phases.
    pub fn fm_calls(&self) -> u64 {
        self.total().fm_calls
    }

    /// Dollar cost at the given per-million-token rates (the caller
    /// supplies them — typically from `eclair_fm::Pricing`).
    pub fn cost_usd(&self, prompt_per_m: f64, completion_per_m: f64) -> f64 {
        let t = self.total();
        (t.prompt_tokens as f64 * prompt_per_m + t.completion_tokens as f64 * completion_per_m)
            / 1_000_000.0
    }

    /// Add `other`'s counters into `self` (bench aggregation).
    pub fn merge(&mut self, other: &RunSummary) {
        self.demonstrate.merge(&other.demonstrate);
        self.execute.merge(&other.execute);
        self.validate.merge(&other.validate);
        self.other.merge(&other.other);
        self.verdicts_pass += other.verdicts_pass;
        self.verdicts_fail += other.verdicts_fail;
        self.fm_completion_hist.merge(&other.fm_completion_hist);
        self.events += other.events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceRecorder;

    #[test]
    fn fm_calls_attribute_to_the_enclosing_phase() {
        let mut t = TraceRecorder::new();
        let d = t.open(SpanKind::Demonstrate, "sop");
        t.event(EventKind::FmCall {
            purpose: "perceive".into(),
            prompt_tokens: 100,
            completion_tokens: 10,
        });
        t.close(d);
        let e = t.open(SpanKind::Execute, "run");
        let step = t.open(SpanKind::Step, "1");
        t.event(EventKind::FmCall {
            purpose: "suggest".into(),
            prompt_tokens: 200,
            completion_tokens: 20,
        });
        t.close(step);
        t.close(e);
        let s = t.summary();
        assert_eq!(s.demonstrate.fm_calls, 1);
        assert_eq!(s.execute.fm_calls, 1);
        assert_eq!(s.execute.steps, 1);
        assert_eq!(s.fm_calls(), 2);
        assert_eq!(s.total().prompt_tokens, 300);
        assert_eq!(s.fm_completion_hist.total(), 2);
    }

    #[test]
    fn cost_matches_hand_computation() {
        let mut s = RunSummary::default();
        s.execute.prompt_tokens = 1_000_000;
        s.execute.completion_tokens = 500_000;
        let cost = s.cost_usd(10.0, 30.0);
        assert!((cost - 25.0).abs() < 1e-9, "{cost}");
    }

    #[test]
    fn merge_is_additive() {
        let mut a = RunSummary::default();
        a.execute.fm_calls = 2;
        a.verdicts_pass = 1;
        let mut b = RunSummary::default();
        b.execute.fm_calls = 3;
        b.verdicts_fail = 1;
        a.merge(&b);
        assert_eq!(a.execute.fm_calls, 5);
        assert_eq!(a.verdicts_pass, 1);
        assert_eq!(a.verdicts_fail, 1);
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let mut h = TokenHistogram::default();
        h.record(4);
        h.record(9);
        h.record(10_000);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[1], 1);
        assert_eq!(*h.counts.last().unwrap(), 1);
        assert_eq!(h.total(), 3);
    }
}

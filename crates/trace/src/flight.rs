//! A bounded ring buffer over the most recent trace events — the "black
//! box" to read after a failed run without exporting the full trace.

use crate::event::{EventKind, TraceEvent};
use std::collections::VecDeque;

/// Default number of events the flight recorder retains.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 64;

/// Keeps the last `capacity` events pushed into it.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
        }
    }

    /// Record one event, evicting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event);
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Human-readable dump of the retained tail, one line per event —
    /// what gets printed when a run fails.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.buf {
            out.push_str(&format!(
                "#{:<5} span {:<4} {}\n",
                e.seq,
                e.parent,
                describe(&e.kind)
            ));
        }
        out
    }
}

fn describe(kind: &EventKind) -> String {
    match kind {
        EventKind::SpanStart { id, kind, label } => {
            format!("open {} [{}] {label}", kind.name(), id)
        }
        EventKind::SpanEnd { id, kind } => format!("close {} [{}]", kind.name(), id),
        EventKind::FmCall {
            purpose,
            prompt_tokens,
            completion_tokens,
        } => format!("fm-call {purpose} ({prompt_tokens}p+{completion_tokens}c tok)"),
        EventKind::GroundingAttempt { strategy, outcome } => {
            format!("ground via {strategy}: {outcome:?}")
        }
        EventKind::Retry { what } => format!("retry {what}"),
        EventKind::PopupEscape { url } => format!("popup escaped at {url}"),
        EventKind::FaultInjected { step, fault } => {
            format!("fault injected at step {step}: {fault}")
        }
        EventKind::ValidatorVerdict { validator, passed } => {
            format!(
                "verdict {validator}: {}",
                if *passed { "pass" } else { "fail" }
            )
        }
        EventKind::CompiledStep { step, selector } => {
            format!("compiled step {step} -> {selector}")
        }
        EventKind::DriftDetected { step, reason } => {
            format!("drift detected at step {step}: {reason}")
        }
        EventKind::FallbackStep { step, query } => {
            format!("fm fallback at step {step}: {query}")
        }
        EventKind::Recompiled { step, selector } => {
            format!("recompiled step {step} -> {selector}")
        }
        EventKind::Note { text } => format!("note: {text}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(seq: u64, text: &str) -> TraceEvent {
        TraceEvent {
            seq,
            parent: 0,
            vt: 0,
            kind: EventKind::Note { text: text.into() },
        }
    }

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut f = FlightRecorder::new(3);
        for i in 0..10 {
            f.push(note(i, "x"));
        }
        assert_eq!(f.len(), 3);
        let seqs: Vec<u64> = f.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn dump_mentions_every_retained_event() {
        let mut f = FlightRecorder::new(2);
        f.push(note(0, "first"));
        f.push(note(1, "second"));
        let d = f.dump();
        assert!(d.contains("first") && d.contains("second"));
        assert_eq!(d.lines().count(), 2);
    }
}

//! Merging per-run traces into one fleet-level stream.
//!
//! A fleet executes many runs concurrently, each on its own
//! [`crate::TraceRecorder`]. Concurrency must never show up in the trace:
//! the merged stream is defined as the concatenation of the per-run
//! streams *in run-id order*, with sequence numbers and span ids
//! renumbered so the result is a single well-formed trace (globally
//! monotone `seq`, globally unique span ids). Because each per-run stream
//! is deterministic from its seed and the merge order is deterministic
//! from the run ids, the merged export is byte-identical whether the runs
//! executed on one worker or eight.
//!
//! Malformed input is an error, not a panic: every input stream is run
//! through [`crate::audit_spans`] before splicing, so a recorder bug (or
//! a hand-assembled stream) surfaces as a [`MergeError`] the caller can
//! report instead of a corrupted merged trace.

use crate::audit::{audit_spans, AuditError};
use crate::event::{EventKind, TraceEvent};

/// Why a merge (or a merged-stream serialization) was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// Input stream `stream` (0-based position in the iterator) failed
    /// the structural audit.
    MalformedStream {
        /// Position of the offending stream.
        stream: usize,
        /// What the audit found.
        error: AuditError,
    },
    /// An event refused to serialize (carries `seq` and the serde
    /// message).
    Serialize {
        /// `seq` of the offending event.
        seq: u64,
        /// The serializer's error text.
        message: String,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::MalformedStream { stream, error } => {
                write!(f, "input stream {stream} is malformed: {error}")
            }
            MergeError::Serialize { seq, message } => {
                write!(f, "event seq {seq} failed to serialize: {message}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Merge event streams (already ordered by run id by the caller) into one
/// well-formed stream. Sequence numbers are renumbered from 0; span ids
/// and parent references are offset so ids stay unique across runs. An
/// empty stream list merges to an empty stream; a structurally invalid
/// input stream is refused with [`MergeError::MalformedStream`].
pub fn merge_event_streams<'a, I>(streams: I) -> Result<Vec<TraceEvent>, MergeError>
where
    I: IntoIterator<Item = &'a [TraceEvent]>,
{
    // Collect once to size the output exactly: growth-reallocation would
    // move every already-spliced event (and its heap strings) each time
    // the vector doubled.
    let streams: Vec<&'a [TraceEvent]> = streams.into_iter().collect();
    let mut out = Vec::with_capacity(streams.iter().map(|s| s.len()).sum());
    let mut next_seq = 0u64;
    let mut span_base = 0u64;
    for (stream, events) in streams.into_iter().enumerate() {
        audit_spans(events).map_err(|error| MergeError::MalformedStream { stream, error })?;
        let mut max_span = span_base;
        for e in events {
            let mut e = e.clone();
            e.seq = next_seq;
            next_seq += 1;
            if e.parent != 0 {
                e.parent += span_base;
            }
            match &mut e.kind {
                EventKind::SpanStart { id, .. } | EventKind::SpanEnd { id, .. } => {
                    *id += span_base;
                    max_span = max_span.max(*id);
                }
                _ => {}
            }
            out.push(e);
        }
        span_base = max_span;
    }
    Ok(out)
}

/// Serialize a merged stream as JSON Lines (same format as
/// [`crate::TraceRecorder::to_jsonl`]): one pre-sized output buffer, no
/// per-event `String`.
pub fn merged_jsonl(events: &[TraceEvent]) -> Result<String, MergeError> {
    crate::recorder::events_to_jsonl(events)
        .map_err(|(seq, message)| MergeError::Serialize { seq, message })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;
    use crate::recorder::TraceRecorder;
    use crate::summary::RunSummary;

    fn one_run(notes: &[&str]) -> Vec<TraceEvent> {
        let mut t = TraceRecorder::new();
        let s = t.open(SpanKind::Execute, "run");
        for n in notes {
            t.note(*n);
        }
        t.event(EventKind::FmCall {
            purpose: "suggest".into(),
            prompt_tokens: 10,
            completion_tokens: 2,
        });
        t.close(s);
        t.take_events()
    }

    #[test]
    fn merged_stream_is_monotone_with_unique_span_ids() {
        let a = one_run(&["a1", "a2"]);
        let b = one_run(&["b1"]);
        let merged = merge_event_streams([a.as_slice(), b.as_slice()]).unwrap();
        assert_eq!(merged.len(), a.len() + b.len());
        let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        let starts: Vec<u64> = merged
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SpanStart { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        let mut dedup = starts.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(starts.len(), dedup.len(), "span ids must stay unique");
    }

    #[test]
    fn rollup_of_merge_equals_sum_of_rollups() {
        let a = one_run(&["x"]);
        let b = one_run(&["y", "z"]);
        let merged = merge_event_streams([a.as_slice(), b.as_slice()]).unwrap();
        let mut summed = RunSummary::from_events(&a);
        summed.merge(&RunSummary::from_events(&b));
        assert_eq!(RunSummary::from_events(&merged), summed);
    }

    #[test]
    fn merge_order_determines_bytes() {
        let a = one_run(&["x"]);
        let b = one_run(&["y"]);
        let merge = |s: [&[TraceEvent]; 2]| merged_jsonl(&merge_event_streams(s).unwrap()).unwrap();
        let ab = merge([a.as_slice(), b.as_slice()]);
        let ab2 = merge([a.as_slice(), b.as_slice()]);
        let ba = merge([b.as_slice(), a.as_slice()]);
        assert_eq!(ab, ab2);
        assert_ne!(ab, ba, "order is part of the contract");
    }

    #[test]
    fn merged_jsonl_round_trips() {
        let a = one_run(&["only"]);
        let merged = merge_event_streams([a.as_slice()]).unwrap();
        let text = merged_jsonl(&merged).unwrap();
        assert_eq!(crate::recorder::read_jsonl(&text).unwrap(), merged);
    }

    #[test]
    fn empty_stream_list_merges_to_empty() {
        let merged = merge_event_streams(std::iter::empty::<&[TraceEvent]>()).unwrap();
        assert!(merged.is_empty());
        assert_eq!(merged_jsonl(&merged).unwrap(), "");
        // A list of present-but-empty streams is equally fine.
        let merged = merge_event_streams([[].as_slice(), [].as_slice()]).unwrap();
        assert!(merged.is_empty());
    }

    #[test]
    fn malformed_stream_is_refused_with_its_position() {
        let good = one_run(&["ok"]);
        let mut bad = one_run(&["broken"]);
        bad.remove(0); // drop the SpanStart: the SpanEnd now dangles
        let err = merge_event_streams([good.as_slice(), bad.as_slice()]).unwrap_err();
        match err {
            MergeError::MalformedStream { stream, .. } => assert_eq!(stream, 1),
            other => panic!("expected MalformedStream, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_seq_inside_a_span_is_refused() {
        let mut bad = one_run(&["a", "b"]);
        let dup = bad[1].seq;
        bad[2].seq = dup; // two events sharing a seq while Execute is open
        let err = merge_event_streams([bad.as_slice()]).unwrap_err();
        assert_eq!(
            err,
            MergeError::MalformedStream {
                stream: 0,
                error: AuditError::NonMonotoneSeq {
                    seq: dup,
                    prev: dup
                },
            }
        );
    }

    #[test]
    fn unsorted_stream_is_refused() {
        let mut bad = one_run(&["a", "b"]);
        bad[2].seq = 0; // regression: seq jumps backwards mid-span
        let err = merge_event_streams([bad.as_slice()]).unwrap_err();
        assert_eq!(
            err,
            MergeError::MalformedStream {
                stream: 0,
                error: AuditError::NonMonotoneSeq { seq: 0, prev: 1 },
            }
        );
    }

    #[test]
    fn orphan_span_close_is_refused() {
        let mut bad = one_run(&["a"]);
        let next_seq = bad.last().unwrap().seq + 1;
        bad.push(TraceEvent {
            seq: next_seq,
            parent: 0,
            vt: 0,
            kind: EventKind::SpanEnd {
                id: 999,
                kind: SpanKind::Execute,
            },
        });
        let err = merge_event_streams([bad.as_slice()]).unwrap_err();
        assert_eq!(
            err,
            MergeError::MalformedStream {
                stream: 0,
                error: AuditError::MismatchedSpanEnd {
                    seq: next_seq,
                    id: 999,
                    innermost: None,
                },
            }
        );
    }
}

//! Merging per-run traces into one fleet-level stream.
//!
//! A fleet executes many runs concurrently, each on its own
//! [`crate::TraceRecorder`]. Concurrency must never show up in the trace:
//! the merged stream is defined as the concatenation of the per-run
//! streams *in run-id order*, with sequence numbers and span ids
//! renumbered so the result is a single well-formed trace (globally
//! monotone `seq`, globally unique span ids). Because each per-run stream
//! is deterministic from its seed and the merge order is deterministic
//! from the run ids, the merged export is byte-identical whether the runs
//! executed on one worker or eight.

use crate::event::{EventKind, TraceEvent};

/// Merge event streams (already ordered by run id by the caller) into one
/// well-formed stream. Sequence numbers are renumbered from 0; span ids
/// and parent references are offset so ids stay unique across runs.
pub fn merge_event_streams<'a, I>(streams: I) -> Vec<TraceEvent>
where
    I: IntoIterator<Item = &'a [TraceEvent]>,
{
    let mut out = Vec::new();
    let mut next_seq = 0u64;
    let mut span_base = 0u64;
    for events in streams {
        let mut max_span = span_base;
        for e in events {
            let mut e = e.clone();
            e.seq = next_seq;
            next_seq += 1;
            if e.parent != 0 {
                e.parent += span_base;
            }
            match &mut e.kind {
                EventKind::SpanStart { id, .. } | EventKind::SpanEnd { id, .. } => {
                    *id += span_base;
                    max_span = max_span.max(*id);
                }
                _ => {}
            }
            out.push(e);
        }
        span_base = max_span;
    }
    out
}

/// Serialize a merged stream as JSON Lines (same format as
/// [`crate::TraceRecorder::to_jsonl`]).
pub fn merged_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("trace events serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanKind;
    use crate::recorder::TraceRecorder;
    use crate::summary::RunSummary;

    fn one_run(notes: &[&str]) -> Vec<TraceEvent> {
        let mut t = TraceRecorder::new();
        let s = t.open(SpanKind::Execute, "run");
        for n in notes {
            t.note(*n);
        }
        t.event(EventKind::FmCall {
            purpose: "suggest".into(),
            prompt_tokens: 10,
            completion_tokens: 2,
        });
        t.close(s);
        t.take_events()
    }

    #[test]
    fn merged_stream_is_monotone_with_unique_span_ids() {
        let a = one_run(&["a1", "a2"]);
        let b = one_run(&["b1"]);
        let merged = merge_event_streams([a.as_slice(), b.as_slice()]);
        assert_eq!(merged.len(), a.len() + b.len());
        let seqs: Vec<u64> = merged.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        let starts: Vec<u64> = merged
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SpanStart { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        let mut dedup = starts.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(starts.len(), dedup.len(), "span ids must stay unique");
    }

    #[test]
    fn rollup_of_merge_equals_sum_of_rollups() {
        let a = one_run(&["x"]);
        let b = one_run(&["y", "z"]);
        let merged = merge_event_streams([a.as_slice(), b.as_slice()]);
        let mut summed = RunSummary::from_events(&a);
        summed.merge(&RunSummary::from_events(&b));
        assert_eq!(RunSummary::from_events(&merged), summed);
    }

    #[test]
    fn merge_order_determines_bytes() {
        let a = one_run(&["x"]);
        let b = one_run(&["y"]);
        let ab = merged_jsonl(&merge_event_streams([a.as_slice(), b.as_slice()]));
        let ab2 = merged_jsonl(&merge_event_streams([a.as_slice(), b.as_slice()]));
        let ba = merged_jsonl(&merge_event_streams([b.as_slice(), a.as_slice()]));
        assert_eq!(ab, ab2);
        assert_ne!(ab, ba, "order is part of the contract");
    }

    #[test]
    fn merged_jsonl_round_trips() {
        let a = one_run(&["only"]);
        let merged = merge_event_streams([a.as_slice()]);
        let text = merged_jsonl(&merged);
        assert_eq!(crate::recorder::read_jsonl(&text).unwrap(), merged);
    }
}

//! The recorder: spans open/close, events append with monotonically
//! increasing sequence numbers, and the whole run exports as JSONL.

use crate::event::{EventKind, SpanKind, TraceEvent};
use crate::flight::FlightRecorder;
use crate::summary::RunSummary;
use crate::vclock::{CostKind, VirtualClock};

/// Handle returned by [`TraceRecorder::open`]; pass it back to
/// [`TraceRecorder::close`]. Deliberately not `Copy` so a span is hard
/// to close twice by accident.
#[derive(Debug, PartialEq, Eq)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The raw span id (matches `SpanStart { id }` in the event stream).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Collects the trace of one run. No wall-clock is read anywhere:
/// ordering comes from sequence numbers, so the same seed produces a
/// byte-identical export.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    next_seq: u64,
    next_span: u64,
    stack: Vec<(u64, SpanKind)>,
    flight: FlightRecorder,
    /// Simulated time for this run; every pushed event is stamped with
    /// its current reading.
    clock: VirtualClock,
}

impl TraceRecorder {
    /// A fresh recorder with the default flight-recorder capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh recorder whose flight recorder keeps `capacity` events.
    pub fn with_flight_capacity(capacity: usize) -> Self {
        TraceRecorder {
            flight: FlightRecorder::new(capacity),
            ..Self::default()
        }
    }

    /// Open a span; events emitted until the matching [`close`] are
    /// attributed to it.
    ///
    /// [`close`]: TraceRecorder::close
    pub fn open(&mut self, kind: SpanKind, label: &str) -> SpanId {
        self.next_span += 1;
        let id = self.next_span;
        self.push(EventKind::SpanStart {
            id,
            kind,
            label: label.to_string(),
        });
        self.stack.push((id, kind));
        SpanId(id)
    }

    /// Close a span. Any spans opened inside it and not yet closed are
    /// closed too (exception-safety for early returns).
    pub fn close(&mut self, id: SpanId) {
        while let Some(&(top, kind)) = self.stack.last() {
            self.stack.pop();
            self.push(EventKind::SpanEnd { id: top, kind });
            if top == id.0 {
                break;
            }
        }
    }

    /// Close every span still open (end-of-run cleanup).
    pub fn close_all(&mut self) {
        while let Some(&(top, kind)) = self.stack.last() {
            self.stack.pop();
            self.push(EventKind::SpanEnd { id: top, kind });
        }
    }

    /// Emit one typed event inside the current span.
    pub fn event(&mut self, kind: EventKind) {
        self.push(kind);
    }

    /// Emit free-text narration (renders verbatim into [`log`]).
    ///
    /// [`log`]: TraceRecorder::log
    pub fn note(&mut self, text: impl Into<String>) {
        self.push(EventKind::Note { text: text.into() });
    }

    fn push(&mut self, kind: EventKind) {
        let ev = TraceEvent {
            seq: self.next_seq,
            parent: self.stack.last().map_or(0, |&(id, _)| id),
            vt: self.clock.now_us(),
            kind,
        };
        self.next_seq += 1;
        self.flight.push(ev.clone());
        self.events.push(ev);
    }

    /// Every event recorded so far, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The virtual clock stamping this recorder's events.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Replace the clock (fleet workers install one seeded from
    /// `(run seed, run_id)` before an attempt records anything).
    pub fn set_clock(&mut self, clock: VirtualClock) {
        self.clock = clock;
    }

    /// Advance simulated time by one `kind` operation of `weight` units;
    /// returns the microseconds added. See [`CostKind`] for the bands.
    pub fn advance(&mut self, kind: CostKind, weight: u64) -> u64 {
        self.clock.advance(kind, weight)
    }

    /// Enter executor step `step` on the clock (resets the per-step draw
    /// counter — see the purity contract on [`VirtualClock::begin_step`]).
    pub fn clock_begin_step(&mut self, step: u64) {
        self.clock.begin_step(step);
    }

    /// How many spans are currently open.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Roll the trace up into counters.
    pub fn summary(&self) -> RunSummary {
        RunSummary::from_events(&self.events)
    }

    /// The legacy narration log: every `Note` event's text, in order.
    pub fn log(&self) -> Vec<String> {
        render_log(&self.events)
    }

    /// The bounded tail of recent events (read after failures).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Serialize the whole trace as JSON Lines (one event per line).
    /// Events serialize straight into one pre-sized output buffer — no
    /// per-event `String` on this hot path (see `perf` counters).
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.events).expect("trace events serialize")
    }

    /// Move the events out, resetting the recorder for the next run.
    /// Sequence numbers and span ids keep counting up so merged streams
    /// stay globally ordered.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        self.stack.clear();
        std::mem::take(&mut self.events)
    }

    /// Drop everything and start the numbering over. The clock restarts
    /// at virtual time zero but keeps its `(seed, run_id)` identity.
    pub fn reset(&mut self) {
        let clock = VirtualClock::new(self.clock.seed(), self.clock.run_id());
        *self = TraceRecorder::with_flight_capacity(self.flight.capacity());
        self.clock = clock;
    }
}

/// Render the narration log from an event stream: each `Note` verbatim.
/// A counting pass sizes the output vector exactly, so the only
/// allocations are the returned lines themselves (no growth-reallocation
/// shuffling every `String` already pushed).
pub fn render_log(events: &[TraceEvent]) -> Vec<String> {
    let notes = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Note { .. }))
        .count();
    let mut out = Vec::with_capacity(notes);
    for e in events {
        if let EventKind::Note { text } = &e.kind {
            out.push(text.clone());
        }
    }
    crate::perf::record(|c| {
        c.log_events_rendered += notes as u64;
        c.log_allocations += 1 + notes as u64; // the vec + one String per line
    });
    out
}

/// Serialize an event stream as JSON Lines into one pre-sized buffer —
/// events append through `serde_json::to_string_into`, so no per-event
/// output `String` is allocated. Errors carry the failing event's `seq`.
pub(crate) fn events_to_jsonl(events: &[TraceEvent]) -> Result<String, (u64, String)> {
    let mut buf = String::with_capacity(events.len() * 96);
    for e in events {
        serde_json::to_string_into(e, &mut buf).map_err(|err| (e.seq, err.to_string()))?;
        buf.push('\n');
    }
    crate::perf::record(|c| {
        c.jsonl_events_rendered += events.len() as u64;
        c.jsonl_allocations += 1; // the single output buffer
    });
    Ok(buf)
}

/// Longest offending-payload excerpt quoted in a parse error. Enough to
/// identify the line, short enough that a megabyte of binary garbage on
/// one line cannot balloon the error message.
const READ_ERR_PAYLOAD_MAX: usize = 120;

/// Parse a JSONL trace back into events (inverse of
/// [`TraceRecorder::to_jsonl`]). A malformed line fails with its 1-based
/// line number and the offending payload, so a truncated download or a
/// log line interleaved into the file is diagnosable from the error
/// alone.
pub fn read_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str(line) {
            Ok(ev) => out.push(ev),
            Err(e) => {
                let mut payload = line;
                if payload.len() > READ_ERR_PAYLOAD_MAX {
                    // Cut on a char boundary so the excerpt stays valid UTF-8.
                    let mut end = READ_ERR_PAYLOAD_MAX;
                    while !payload.is_char_boundary(end) {
                        end -= 1;
                    }
                    payload = &payload[..end];
                }
                return Err(format!("bad trace line {}: {e}: {payload}", i + 1));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_is_strictly_increasing_and_spans_nest() {
        let mut t = TraceRecorder::new();
        let outer = t.open(SpanKind::Execute, "run");
        t.note("hello");
        let inner = t.open(SpanKind::Step, "1");
        t.note("inside");
        t.close(inner);
        t.close(outer);
        assert_eq!(t.depth(), 0);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
        // "inside" is attributed to the step span, "hello" to the run.
        let parents: Vec<u64> = t
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Note { .. }))
            .map(|e| e.parent)
            .collect();
        assert_eq!(parents, vec![1, 2]);
    }

    #[test]
    fn close_unwinds_forgotten_children() {
        let mut t = TraceRecorder::new();
        let outer = t.open(SpanKind::Execute, "run");
        let _leaked = t.open(SpanKind::Step, "1");
        t.close(outer);
        assert_eq!(t.depth(), 0);
        let ends = t
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanEnd { .. }))
            .count();
        assert_eq!(
            ends, 2,
            "closing the outer span also closed the leaked child"
        );
    }

    #[test]
    fn jsonl_round_trips() {
        let mut t = TraceRecorder::new();
        let s = t.open(SpanKind::Validate, "completion");
        t.event(EventKind::ValidatorVerdict {
            validator: "completion".into(),
            passed: true,
        });
        t.event(EventKind::FmCall {
            purpose: "judge".into(),
            prompt_tokens: 42,
            completion_tokens: 7,
        });
        t.close(s);
        let text = t.to_jsonl();
        let back = read_jsonl(&text).expect("parses");
        assert_eq!(back, t.events());
    }

    #[test]
    fn log_renders_notes_in_order() {
        let mut t = TraceRecorder::new();
        t.note("one");
        t.event(EventKind::Retry {
            what: "click".into(),
        });
        t.note("two");
        assert_eq!(t.log(), vec!["one".to_string(), "two".to_string()]);
    }

    #[test]
    fn read_jsonl_reports_line_number_of_truncated_input() {
        let mut t = TraceRecorder::new();
        t.note("one");
        t.note("two");
        t.note("three");
        let text = t.to_jsonl();
        // Chop the export mid-way through the last line, as a torn
        // download or a crashed writer would.
        let truncated = &text[..text.len() - 8];
        let err = read_jsonl(truncated).unwrap_err();
        assert!(err.starts_with("bad trace line 3:"), "{err}");
        assert!(err.contains("three") || err.contains("{"), "{err}");
    }

    #[test]
    fn read_jsonl_reports_interleaved_garbage_with_payload() {
        let mut t = TraceRecorder::new();
        t.note("ok");
        t.note("also ok");
        let mut lines: Vec<&str> = Vec::new();
        let text = t.to_jsonl();
        let mut it = text.lines();
        lines.push(it.next().unwrap());
        lines.push("WARN renderer: frame dropped"); // a stray log line
        lines.push(it.next().unwrap());
        let err = read_jsonl(&lines.join("\n")).unwrap_err();
        assert!(err.starts_with("bad trace line 2:"), "{err}");
        assert!(err.contains("WARN renderer: frame dropped"), "{err}");
        // Blank lines are skipped but still counted for line numbers.
        let err = read_jsonl("\n\nnot-json\n").unwrap_err();
        assert!(err.starts_with("bad trace line 3:"), "{err}");
    }

    #[test]
    fn read_jsonl_truncates_huge_offending_payloads() {
        let garbage = format!("x{}", "y".repeat(4096));
        let err = read_jsonl(&garbage).unwrap_err();
        assert!(err.len() < 400, "payload must be excerpted: {}", err.len());
        assert!(err.starts_with("bad trace line 1:"), "{err}");
    }

    #[test]
    fn events_are_stamped_with_virtual_time() {
        use crate::vclock::CostKind;
        let mut t = TraceRecorder::new();
        t.note("at zero");
        let d = t.advance(CostKind::Actuate, 1);
        t.note("after work");
        assert_eq!(t.events()[0].vt, 0);
        assert_eq!(t.events()[1].vt, d);
        assert_eq!(t.clock().now_us(), d);
        // vt round-trips through JSONL, and pre-vt traces parse as vt=0.
        let back = read_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(back, t.events());
        let legacy = r#"{"seq":0,"parent":0,"kind":{"Note":{"text":"old"}}}"#;
        assert_eq!(read_jsonl(legacy).unwrap()[0].vt, 0);
    }

    #[test]
    fn take_events_keeps_numbering_monotone() {
        let mut t = TraceRecorder::new();
        t.note("a");
        let first = t.take_events();
        t.note("b");
        assert_eq!(first[0].seq, 0);
        assert_eq!(t.events()[0].seq, 1, "seq continues across takes");
    }
}

//! Deterministic structured tracing for the ECLAIR pipeline.
//!
//! Every run of Demonstrate → Execute → Validate emits a stream of typed
//! [`TraceEvent`]s — nested spans, FM-call token accounting, grounding
//! attempts, retries, popup escapes, validator verdicts, and free-text
//! notes. The stream carries only monotonic sequence numbers (never
//! wall-clock), so the same seed yields a byte-identical JSONL export.
//!
//! Three consumers sit on top of the stream:
//!
//! * [`RunSummary::from_events`] rolls it up into per-phase counters, a
//!   completion-token histogram, and a dollar cost;
//! * [`render_log`] recovers the legacy human-readable narration (every
//!   `Note` event, verbatim);
//! * [`FlightRecorder`] keeps a bounded ring of the most recent events
//!   for post-mortem dumps after a failed run;
//! * [`merge_event_streams`] splices many per-run streams into one
//!   fleet-level trace in run-id order (see `eclair-fleet`), refusing
//!   structurally invalid input with a [`MergeError`];
//! * [`audit_spans`] / [`audit_seq_gapless`] check the structural
//!   invariants oracles rely on (see `eclair-crucible`).
//!
//! The [`perf`] module holds the caching layer's hit/miss/invalidation
//! counters. They are deliberately *not* events: cache effectiveness must
//! never appear in the byte-compared stream, or cache-on and cache-off
//! runs could not be byte-identical (the PR 5 transparency invariant).

mod audit;
mod event;
mod flight;
mod merge;
pub mod perf;
mod recorder;
mod summary;
pub mod vclock;

pub use audit::{
    audit_seq_gapless, audit_spans, fault_injections, fm_token_totals, AuditError, SpanAudit,
    TokenTotals,
};
pub use event::{EventKind, GroundingOutcome, SpanKind, TraceEvent};
pub use flight::{FlightRecorder, DEFAULT_FLIGHT_CAPACITY};
pub use merge::{merge_event_streams, merged_jsonl, MergeError};
pub use recorder::{read_jsonl, render_log, SpanId, TraceRecorder};
pub use summary::{PhaseStats, RunSummary, TokenHistogram, HIST_BOUNDS};
pub use vclock::{fault_cost_weight, CostKind, VirtualClock};

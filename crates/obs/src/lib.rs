//! # eclair-obs
//!
//! Virtual-clock telemetry for the ECLAIR reproduction (Wornow et al.,
//! *Automating the Enterprise with Foundation Models*, VLDB 2024).
//!
//! The repo's determinism contract quarantines wall-clock time from
//! every serialized artifact — which historically meant latency could
//! only be reported in abstract "steps". This crate closes the loop on
//! the virtual clock introduced in `eclair_trace::vclock`: every trace
//! event now carries a simulated-time stamp, and this crate turns those
//! stamps into reviewable telemetry:
//!
//! * [`MetricsRegistry`] — counters, gauges, and fixed-boundary
//!   histograms with a byte-stable JSON snapshot (`eclair-obs/v1`) that
//!   CI byte-diffs between runs and gates against committed baselines
//!   via [`baseline_check`];
//! * [`profile_spans`] — rebuilds the span tree from a flight record and
//!   attributes inclusive/exclusive virtual time per span kind and call
//!   path, rendered by [`render_flamegraph`] as a deterministic text
//!   flamegraph (the additivity invariant `Σ exclusive == Σ root
//!   inclusive` is what `eclair-crucible`'s `vt-additive` oracle pins);
//! * [`TraceQuery`] / [`aggregate`] / [`diff_traces`] — the query layer
//!   behind the `eclair-analyze` binary: filter JSONL flight records by
//!   span kind, event kind, run, or virtual-time range; roll up tokens,
//!   faults, and retries; and locate the first divergence between two
//!   traces.

mod analyze;
mod metrics;
mod profile;

pub use analyze::{
    aggregate, diff_traces, event_kind_name, render_aggregate, render_diff, render_event,
    render_view, Aggregate, TraceDiff, TraceQuery,
};
pub use metrics::{
    baseline_check, parse_snapshot, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot,
    SNAPSHOT_SCHEMA, VT_LATENCY_BOUNDS_US,
};
pub use profile::{
    profile_spans, render_flamegraph, span_inclusive_durations, SpanProfile, SpanStat,
};
